"""Two-process regression test for the GC / journal-pin race.

The historical bug: GC scanned journal pins *once* up front, then evicted.
A run that read an artifact and journalled its pin after that scan -- but
before the unlink -- lost the artifact even though its journal referenced
it.  The fix makes eviction re-read the pins *inside the shard lock*, and
makes ``get``/``put`` record the pin inside the same lock, so the pin
either lands before the in-lock re-read (honoured) or after the unlink (a
plain miss, recompute).

This test reproduces the dangerous interleaving deterministically with a
real second process: the parent holds the artifact's shard lock, starts a
GC subprocess that must block on that lock, writes the journal pin while
the GC is in flight, then releases.  A pre-fix GC (pins scanned before the
lock) would evict; the fixed GC must not.
"""

import json
import os
import subprocess
import sys
import time

from repro.store.core import ArtifactStore
from repro.store.journal import RunJournal
from repro.store.locks import shard_lock, shard_of

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

_GC_SCRIPT = """
import json, sys
sys.path.insert(0, sys.argv[1])
from repro.store.core import ArtifactStore
store = ArtifactStore(root=sys.argv[2])
report = store.gc(max_bytes=0)
print(json.dumps(report))
"""


def _run_gc_subprocess(root):
    return subprocess.Popen(
        [sys.executable, "-c", _GC_SCRIPT, os.path.abspath(SRC), root],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def test_pin_landing_during_gc_is_honoured(tmp_path):
    """A pin journalled while GC is blocked on the shard lock must win."""
    root = str(tmp_path / "store")
    store = ArtifactStore(root=root)
    key = store.key("race", "artifact")
    rel = store.put("race", key, {"value": 42})
    shard = shard_of(key)

    lock = shard_lock(root, shard)
    lock.acquire()
    try:
        gc_process = _run_gc_subprocess(root)
        # Give the GC real time to scan the tree and block on our lock.
        time.sleep(0.5)
        assert gc_process.poll() is None, "GC finished without taking the lock"
        # The race window: the artifact is on the GC's eviction list, the
        # pin does not exist yet.  Journal it now, mid-GC.
        journal = RunJournal.create(store.journal_dir, "race")
        journal.artifact_ref(rel)
        journal.close(ok=True)
    finally:
        lock.release()

    stdout, stderr = gc_process.communicate(timeout=60)
    assert gc_process.returncode == 0, stderr
    report = json.loads(stdout)
    assert report["evicted"] == 0
    assert report["skipped_pinned"] >= 1
    # The artifact survived and still reads back intact.
    assert store.get("race", key) == {"value": 42}


def test_unpinned_artifact_is_evicted_under_same_interleaving(tmp_path):
    """Sanity for the test above: without the pin, eviction proceeds."""
    root = str(tmp_path / "store")
    store = ArtifactStore(root=root)
    key = store.key("race", "victim")
    store.put("race", key, {"value": 0})

    lock = shard_lock(root, shard_of(key))
    lock.acquire()
    try:
        gc_process = _run_gc_subprocess(root)
        time.sleep(0.5)
        assert gc_process.poll() is None
    finally:
        lock.release()

    stdout, stderr = gc_process.communicate(timeout=60)
    assert gc_process.returncode == 0, stderr
    report = json.loads(stdout)
    assert report["evicted"] == 1
    assert store.get("race", key) is None


def test_fresh_write_is_pinned_atomically(tmp_path):
    """``put(pin=...)`` records the journal pin inside the shard lock, so a
    GC that runs immediately afterwards can never treat the write as
    garbage."""
    root = str(tmp_path / "store")
    store = ArtifactStore(root=root)
    journal = RunJournal.create(store.journal_dir, "writer")
    key = store.key("race", "fresh")
    store.put("race", key, {"fresh": True}, pin=journal.artifact_ref)
    journal.close(ok=True)

    report = store.gc(max_bytes=0)
    assert report["evicted"] == 0
    assert report["skipped_pinned"] >= 1
    assert store.get("race", key) == {"fresh": True}
