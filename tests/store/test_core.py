"""Correctness tests for the content-addressed artifact store."""

import json
import multiprocessing
import os
import time

import pytest

from repro.store import ArtifactStore, schema_version
from repro.store.core import default_store, set_default_store, store_enabled


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(root=str(tmp_path / "store"))


class TestKeying:
    def test_key_is_stable_and_order_sensitive(self):
        assert ArtifactStore.key("a", 1) == ArtifactStore.key("a", 1)
        assert ArtifactStore.key("a", 1) != ArtifactStore.key(1, "a")
        assert len(ArtifactStore.key("x")) == 64

    def test_paths_live_under_versioned_tree(self, store):
        path = store.path_for("netlist", "ab" + "0" * 62)
        assert f"v{schema_version()}" in path
        assert f"{os.sep}netlist{os.sep}ab{os.sep}" in path


class TestRoundTrip:
    def test_put_then_get(self, store):
        key = store.key("demo")
        payload = {"numbers": [1, 2, 3], "name": "demo"}
        store.put("testset", key, payload)
        assert store.get("testset", key) == payload
        assert store.stats.writes == 1
        assert store.stats.hits == 1

    def test_absent_key_is_a_miss(self, store):
        assert store.get("testset", store.key("nothing")) is None
        assert store.stats.misses == 1

    def test_kind_mismatch_is_a_miss(self, store):
        key = store.key("demo")
        store.put("testset", key, {"v": 1})
        assert store.get("faults", key) is None

    def test_last_writer_wins(self, store):
        key = store.key("demo")
        store.put("testset", key, {"v": 1})
        store.put("testset", key, {"v": 2})
        assert store.get("testset", key) == {"v": 2}


class TestCorruptionRecovery:
    def _put_one(self, store):
        key = store.key("victim")
        store.put("testset", key, {"v": 1})
        return key, store.path_for("testset", key)

    def test_truncated_record_is_discarded(self, store):
        key, path = self._put_one(store)
        with open(path, "r+", encoding="utf-8") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        assert store.get("testset", key) is None
        assert store.stats.errors == 1
        assert not os.path.exists(path)
        # Recompute-and-put makes the slot healthy again.
        store.put("testset", key, {"v": 1})
        assert store.get("testset", key) == {"v": 1}

    def test_bitflip_in_payload_is_discarded(self, store):
        key, path = self._put_one(store)
        record = json.load(open(path))
        record["payload"]["v"] = 999  # sha256 no longer matches
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        assert store.get("testset", key) is None
        assert not os.path.exists(path)

    def test_garbage_bytes_are_discarded(self, store):
        key, path = self._put_one(store)
        with open(path, "wb") as handle:
            handle.write(b"\x00\xff not json")
        assert store.get("testset", key) is None

    def test_schema_mismatch_is_discarded(self, store):
        key, path = self._put_one(store)
        record = json.load(open(path))
        record["schema"] = "0.0.0.0"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        assert store.get("testset", key) is None


class TestGc:
    def test_gc_evicts_lru_first(self, store):
        old_key = store.key("old")
        new_key = store.key("new")
        store.put("testset", old_key, {"v": "old"})
        store.put("testset", new_key, {"v": "new"})
        past = 1_000_000_000.0
        os.utime(store.path_for("testset", old_key), (past, past))
        size = os.path.getsize(store.path_for("testset", new_key))
        report = store.gc(max_bytes=size)
        assert report["evicted"] == 1
        assert store.get("testset", old_key) is None
        assert store.get("testset", new_key) == {"v": "new"}

    def test_gc_never_evicts_pinned(self, store):
        key = store.key("pinned")
        rel_path = store.put("testset", key, {"v": 1})
        report = store.gc(max_bytes=0, pinned=[rel_path])
        assert report["evicted"] == 0
        assert report["skipped_pinned"] == 1
        assert store.get("testset", key) == {"v": 1}

    def test_gc_removes_stale_tmp_files(self, store):
        from repro.store.core import TMP_STALE_SECONDS

        key = store.key("demo")
        store.put("testset", key, {"v": 1})
        droppings = os.path.join(os.path.dirname(store.path_for("testset", key)))
        dead = os.path.join(droppings, "dead-writer.tmp")
        with open(dead, "w") as handle:
            handle.write("partial")
        # A fresh tempfile belongs to a live writer mid-replace: kept.
        report = store.gc(max_bytes=10**9)
        assert report["removed_tmp"] == 0
        # Old droppings from a crashed writer: swept.
        stale = time.time() - TMP_STALE_SECONDS - 60
        os.utime(dead, (stale, stale))
        report = store.gc(max_bytes=10**9)
        assert report["removed_tmp"] == 1

    def test_clear_removes_artifacts_not_journals(self, store, tmp_path):
        store.put("testset", store.key("a"), {"v": 1})
        journal = os.path.join(store.journal_dir, "run.jsonl")
        os.makedirs(store.journal_dir, exist_ok=True)
        with open(journal, "w") as handle:
            handle.write("{}\n")
        assert store.clear() == 1
        assert store.artifact_files() == []
        assert os.path.exists(journal)


class TestSummary:
    def test_summary_counts_by_kind(self, store):
        store.put("testset", store.key("a"), {"v": 1})
        store.put("faults", store.key("b"), {"v": 2})
        store.put("faults", store.key("c"), {"v": 3})
        summary = store.summary()
        assert summary["artifacts"] == 3
        assert summary["by_kind"] == {"faults": 2, "testset": 1}
        assert summary["schema"] == schema_version()


def _hammer(root, key, value, iterations):
    store = ArtifactStore(root=root)
    for _ in range(iterations):
        store.put("testset", key, {"v": value})


class TestConcurrency:
    def test_concurrent_writers_same_key(self, tmp_path):
        """Two processes racing on one key: readers never see a torn file."""
        root = str(tmp_path / "store")
        key = ArtifactStore.key("contended")
        ctx = multiprocessing.get_context("spawn")
        workers = [
            ctx.Process(target=_hammer, args=(root, key, value, 25))
            for value in ("alpha", "beta")
        ]
        for worker in workers:
            worker.start()
        reader = ArtifactStore(root=root)
        observed = set()
        while any(worker.is_alive() for worker in workers):
            payload = reader.get("testset", key)
            if payload is not None:
                observed.add(payload["v"])
        for worker in workers:
            worker.join()
            assert worker.exitcode == 0
        # Whatever was observed must be a complete record from one writer.
        assert observed <= {"alpha", "beta"}
        final = reader.get("testset", key)
        assert final is not None and final["v"] in ("alpha", "beta")
        assert reader.stats.errors == 0


class TestDefaultStore:
    def test_env_disable_turns_store_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DISABLE", "1")
        set_default_store(None)
        assert not store_enabled()
        assert default_store() is None

    def test_default_store_honours_env_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "custom"))
        set_default_store(None)
        store = default_store()
        assert store is not None
        assert store.root == str(tmp_path / "custom")
