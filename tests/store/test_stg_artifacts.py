"""Store memoization of explicit STG tables (artifact kind ``stg``)."""

import pytest

from repro.equivalence import extract_stg
from repro.faults.collapse import collapse_faults
from repro.store.artifacts import stg_arrays_from_payload, stg_payload
from repro.store.core import default_store, set_default_store
from tests.helpers import random_circuit, toggle_counter


def stg_records(store):
    """Number of persisted ``stg`` artifacts (other kinds -- e.g. the
    stepper source cache -- share the store, so raw counters don't do)."""
    return store.summary()["by_kind"].get("stg", 0)


class TestStgMemoization:
    def test_second_extraction_hits_the_store(self):
        circuit = random_circuit(7)
        store = default_store()
        first = extract_stg(circuit)
        assert stg_records(store) == 1
        hits_before = store.stats.hits
        second = extract_stg(circuit)
        assert store.stats.hits == hits_before + 1
        assert first == second
        assert first.next_index == second.next_index
        assert first.output_index == second.output_index

    def test_hit_serves_both_engines(self):
        circuit = random_circuit(7)
        extract_stg(circuit, engine="bitset")
        store = default_store()
        hits_before = store.stats.hits
        from_store = extract_stg(circuit, engine="reference")
        assert store.stats.hits == hits_before + 1
        assert from_store == extract_stg(circuit, use_store=False)

    def test_faulty_machines_get_distinct_records(self):
        circuit = toggle_counter()
        fault = collapse_faults(circuit).representatives[0]
        good = extract_stg(circuit)
        bad = extract_stg(circuit, fault=fault)
        store = default_store()
        assert stg_records(store) == 2
        assert good.next_index != bad.next_index or good.output_index != bad.output_index
        # both replayable
        hits_before = store.stats.hits
        assert extract_stg(circuit) == good
        assert extract_stg(circuit, fault=fault) == bad
        assert store.stats.hits == hits_before + 2

    def test_use_store_false_bypasses_the_store(self):
        circuit = random_circuit(7)
        extract_stg(circuit, use_store=False)
        # The stepper source cache may still write, but no stg record lands.
        assert stg_records(default_store()) == 0

    def test_store_disable_env_bypasses_the_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DISABLE", "1")
        set_default_store(None)
        circuit = random_circuit(7)
        stg = extract_stg(circuit)  # must not blow up without a store
        assert len(stg.states) == 1 << circuit.num_registers()


class TestStgPayloadGuards:
    def payload_for(self, circuit):
        stg = extract_stg(circuit, use_store=False)
        return (
            stg,
            stg_payload(
                circuit,
                (),
                stg.alphabet,
                stg.num_outputs,
                stg.next_index,
                stg.output_index,
            ),
        )

    def test_roundtrip(self):
        circuit = random_circuit(7)
        stg, payload = self.payload_for(circuit)
        tables = stg_arrays_from_payload(payload, circuit, (), stg.alphabet)
        assert tables == (stg.num_outputs, stg.next_index, stg.output_index)

    def test_structure_mismatch_is_a_miss(self):
        circuit = random_circuit(7)
        other = random_circuit(8)
        stg, payload = self.payload_for(circuit)
        assert stg_arrays_from_payload(payload, other, (), stg.alphabet) is None

    def test_fault_mismatch_is_a_miss(self):
        circuit = random_circuit(7)
        fault = collapse_faults(circuit).representatives[0]
        stg, payload = self.payload_for(circuit)
        assert (
            stg_arrays_from_payload(payload, circuit, (fault,), stg.alphabet) is None
        )

    def test_alphabet_mismatch_is_a_miss(self):
        circuit = random_circuit(7)
        stg, payload = self.payload_for(circuit)
        truncated = stg.alphabet[:-1]
        assert stg_arrays_from_payload(payload, circuit, (), truncated) is None

    def test_corrupt_tables_are_a_miss(self):
        circuit = random_circuit(7)
        stg, payload = self.payload_for(circuit)
        broken = dict(payload)
        broken["next_index"] = [
            [len(stg.states)] * len(stg.states)  # out-of-range state index
        ] * len(stg.alphabet)
        assert stg_arrays_from_payload(broken, circuit, (), stg.alphabet) is None

    def test_oversized_machines_are_not_persisted(self, monkeypatch):
        from repro.equivalence import explicit

        monkeypatch.setattr(explicit, "_STORE_MAX_ENTRIES", 4)
        circuit = random_circuit(7)
        extract_stg(circuit)
        assert stg_records(default_store()) == 0
