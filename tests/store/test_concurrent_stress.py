"""Multiprocess stress test: N writers + a GC loop on one store root.

The store's whole concurrency story in one pot: several real OS processes
hammer one root with writes, reads and journal pins while another process
runs size-bounded GC in a loop.  Afterwards the survivors must be exactly
right:

* **no corrupted records** -- every surviving artifact reads back as the
  precise payload a serial run would have written (dict equality), never a
  torn or mixed record;
* **no lost pinned artifacts** -- every journal-pinned key is still
  present and intact, no matter how aggressively the GC ran;
* **exact counters** -- the persistent ``counters.json`` merge is
  delta-exact under concurrent flushes: lifetime writes equal the total
  number of puts performed across all writers.
"""

import json
import os
import subprocess
import sys

from repro.store.core import ArtifactStore

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

WRITERS = 4
ITEMS = 30
GC_ROUNDS = 10
GC_MAX_BYTES = 4096  # small enough that the GC loop really evicts

_WRITER_SCRIPT = """
import sys
sys.path.insert(0, sys.argv[1])
from repro.store.core import ArtifactStore
from repro.store.journal import RunJournal

root, index, items = sys.argv[2], int(sys.argv[3]), int(sys.argv[4])
store = ArtifactStore(root=root)
journal = RunJournal.create(store.journal_dir, f"stress-{index}")
for item in range(items):
    payload = {"worker": index, "item": item, "data": [index, item] * 8}
    key = store.key("stress", index, item)
    if item % 3 == 0:
        store.put("stress", key, payload, pin=journal.artifact_ref)
    else:
        store.put("stress", key, payload)
    if item:
        store.get("stress", store.key("stress", index, item - 1))
journal.close(ok=True)
store.flush_counters()
"""

_GC_SCRIPT = """
import sys, time
sys.path.insert(0, sys.argv[1])
from repro.store.core import ArtifactStore

root, rounds, max_bytes = sys.argv[2], int(sys.argv[3]), int(sys.argv[4])
store = ArtifactStore(root=root)
for _ in range(rounds):
    store.gc(max_bytes=max_bytes)
    time.sleep(0.02)
store.flush_counters()
"""


def _expected_payload(index: int, item: int) -> dict:
    return {"worker": index, "item": item, "data": [index, item] * 8}


def test_writers_and_gc_share_one_root(tmp_path):
    root = str(tmp_path / "store")
    src = os.path.abspath(SRC)
    processes = [
        subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT, src, root, str(i), str(ITEMS)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for i in range(WRITERS)
    ]
    processes.append(
        subprocess.Popen(
            [
                sys.executable,
                "-c",
                _GC_SCRIPT,
                src,
                root,
                str(GC_ROUNDS),
                str(GC_MAX_BYTES),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
    )
    for process in processes:
        _stdout, stderr = process.communicate(timeout=180)
        assert process.returncode == 0, stderr

    store = ArtifactStore(root=root)

    # Every pinned artifact survived the GC storm, byte-exact.
    for index in range(WRITERS):
        for item in range(0, ITEMS, 3):
            key = store.key("stress", index, item)
            payload = store.get("stress", key)
            assert payload == _expected_payload(index, item), (
                f"pinned artifact worker={index} item={item} lost or corrupted"
            )

    # Every *surviving* artifact -- pinned or not -- equals the serial
    # run's payload: concurrent writers + GC never tore a record.
    survivors = 0
    for index in range(WRITERS):
        for item in range(ITEMS):
            key = store.key("stress", index, item)
            path = store.path_for("stress", key)
            if not os.path.exists(path):
                assert item % 3 != 0, "a pinned artifact went missing"
                continue
            survivors += 1
            assert store.get("stress", key) == _expected_payload(index, item)
    assert survivors >= WRITERS * ITEMS // 3  # at minimum the pinned third

    # The store read back zero corrupted records in the sweeps above.
    assert store.stats.errors == 0

    # Counter merge is delta-exact under concurrent flushers.
    with open(os.path.join(root, "counters.json"), "r", encoding="utf-8") as handle:
        counters = json.load(handle)
    assert counters["writes"] == WRITERS * ITEMS
    assert counters["errors"] == 0
    assert counters["hits"] + counters["misses"] >= WRITERS * (ITEMS - 1)


def test_serial_reference_produces_identical_payloads(tmp_path):
    """The serial baseline the stress test compares against: one process,
    same keys, same payloads, and GC with generous budget keeps all."""
    root = str(tmp_path / "store")
    store = ArtifactStore(root=root)
    for index in range(2):
        for item in range(5):
            key = store.key("stress", index, item)
            store.put("stress", key, _expected_payload(index, item))
    report = store.gc(max_bytes=10 * 1024 * 1024)
    assert report["evicted"] == 0
    for index in range(2):
        for item in range(5):
            key = store.key("stress", index, item)
            assert store.get("stress", key) == _expected_payload(index, item)
