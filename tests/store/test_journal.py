"""Run journal writing, torn-line tolerance, and GC pinning inputs."""

import os

from repro.store.journal import (
    RunJournal,
    journal_pinned_paths,
    journal_stage_summaries,
    read_journal,
)


class TestRunJournal:
    def test_events_round_trip_in_order(self, tmp_path):
        journal = RunJournal.create(str(tmp_path), "unit")
        journal.event("run_start", label="unit")
        journal.event("stage_end", stage="synth", cache="miss", seconds=0.5)
        journal.close(ok=True)
        events = [r["event"] for r in read_journal(journal.path)]
        assert events == ["run_start", "stage_end", "run_end"]

    def test_create_names_are_unique_per_label(self, tmp_path):
        a = RunJournal.create(str(tmp_path), "flow dk16.ji.sd")
        b = RunJournal.create(str(tmp_path), "other")
        assert a.path != b.path
        assert os.path.basename(a.path).endswith(".jsonl")
        assert " " not in os.path.basename(a.path)
        a.close()
        b.close()

    def test_context_manager_records_failure(self, tmp_path):
        try:
            with RunJournal.create(str(tmp_path), "boom") as journal:
                journal.event("run_start")
                raise RuntimeError("mid-run death")
        except RuntimeError:
            pass
        end = [r for r in read_journal(journal.path) if r["event"] == "run_end"]
        assert end and end[0]["ok"] is False

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        journal = RunJournal.create(str(tmp_path), "torn")
        journal.event("run_start")
        journal.event("artifact_ref", path="v1/testset/ab/abc.json")
        journal._handle.write('{"t": 1, "event": "artifact_ref", "path": "v1/')
        journal._handle.flush()
        journal._handle.close()
        records = list(read_journal(journal.path))
        assert [r["event"] for r in records] == ["run_start", "artifact_ref"]

    def test_stage_summaries_filter(self, tmp_path):
        journal = RunJournal.create(str(tmp_path), "stages")
        journal.event("stage_start", stage="atpg")
        journal.event("stage_end", stage="atpg", cache="miss")
        journal.event("stage_end", stage="faultsim", cache="hit")
        journal.close()
        stages = journal_stage_summaries(journal.path)
        assert [s["stage"] for s in stages] == ["atpg", "faultsim"]


class TestPinnedPaths:
    def test_pins_aggregate_across_journals(self, tmp_path):
        first = RunJournal.create(str(tmp_path), "one")
        first.artifact_ref("v1/testset/aa/a.json")
        first.close()
        second = RunJournal.create(str(tmp_path), "two")
        second.artifact_ref("v1/faults/bb/b.json")
        second.artifact_ref(None)  # no-op, not an event
        second.close()
        assert journal_pinned_paths(str(tmp_path)) == {
            "v1/testset/aa/a.json",
            "v1/faults/bb/b.json",
        }

    def test_missing_directory_pins_nothing(self, tmp_path):
        assert journal_pinned_paths(str(tmp_path / "absent")) == set()
