"""Warm-store behaviour of the stage pipeline (Fig. 6 flow memoization)."""

import pytest

from repro.atpg import AtpgBudget
from repro.pipeline import FlowPipeline
from repro.store import ArtifactStore, RunJournal
from repro.store.journal import journal_stage_summaries

from tests.helpers import resettable_counter

BUDGET = AtpgBudget(
    total_seconds=60.0,
    seconds_per_fault=2.0,
    backtracks_per_fault=300,
    max_frames=8,
    random_sequences=16,
    random_length=16,
)

STORE_BACKED = ("retime", "collapse", "atpg", "faultsim")


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(root=str(tmp_path / "store"))


class TestWarmFlow:
    def test_second_run_hits_every_store_backed_stage(self, store):
        hard = resettable_counter()

        cold_pipe = FlowPipeline(store=store)
        cold = cold_pipe.run(hard, budget=BUDGET)
        # The first time each store-backed stage runs it must compute.  (A
        # repeat of the same stage inside one run may already hit: the easy
        # retiming of an already-minimal circuit is the identity, so both
        # collapse stages share one store key.)
        first_seen = {}
        for record in cold_pipe.stages:
            first_seen.setdefault(record.name, record.cache)
        assert all(first_seen[name] == "miss" for name in STORE_BACKED)

        warm_pipe = FlowPipeline(store=store)
        warm = warm_pipe.run(hard, budget=BUDGET)
        assert all(
            s.cache == "hit" for s in warm_pipe.stages if s.name in STORE_BACKED
        )
        assert [s.cache for s in warm_pipe.stages if s.name == "derive"] == ["off"]

        # The memoized flow is indistinguishable from the recomputed one.
        assert (
            warm.derived_test_set.to_text() == cold.derived_test_set.to_text()
        )
        assert warm.prefix_length == cold.prefix_length
        assert warm.hard_coverage == cold.hard_coverage
        assert sorted(warm.atpg_result.detected) == sorted(
            cold.atpg_result.detected
        )

    def test_no_store_means_every_stage_computes(self):
        pipe = FlowPipeline(store=None)
        pipe.run(resettable_counter(), budget=BUDGET)
        assert all(s.cache == "off" for s in pipe.stages)

    def test_budget_change_misses_atpg_but_hits_collapse(self, store):
        hard = resettable_counter()
        FlowPipeline(store=store).run(hard, budget=BUDGET)

        other_budget = AtpgBudget(
            total_seconds=BUDGET.total_seconds + 1.0,
            seconds_per_fault=BUDGET.seconds_per_fault,
            backtracks_per_fault=BUDGET.backtracks_per_fault,
            max_frames=BUDGET.max_frames,
            random_sequences=BUDGET.random_sequences,
            random_length=BUDGET.random_length,
        )
        pipe = FlowPipeline(store=store)
        pipe.run(hard, budget=other_budget)
        dispositions = {s.name: s.cache for s in pipe.stages if s.name != "derive"}
        assert dispositions["collapse"] == "hit"
        assert dispositions["atpg"] == "miss"

    def test_journal_records_stage_ends_and_pins(self, store, tmp_path):
        journal = RunJournal.create(store.journal_dir, "flow-test")
        pipe = FlowPipeline(store=store, journal=journal)
        pipe.run(resettable_counter(), budget=BUDGET)
        journal.close(ok=True)
        stages = journal_stage_summaries(journal.path)
        assert [s["stage"] for s in stages] == [
            "retime",
            "collapse",
            "atpg",
            "derive",
            "collapse",
            "faultsim",
        ]
        assert all("seconds" in s and "cache" in s for s in stages)
