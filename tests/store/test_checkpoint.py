"""ATPG checkpoint write/load and kill-resume bit-identity."""

import json

import pytest

from repro.atpg import AtpgBudget, run_atpg
from repro.faults import collapse_faults
from repro.store import AtpgCheckpoint

from tests.helpers import resettable_counter, toggle_counter

# Generous enough that wall clock never binds: resume determinism is only
# guaranteed when outcomes are decided by search limits, not the clock.
BUDGET = AtpgBudget(
    total_seconds=120.0,
    seconds_per_fault=5.0,
    backtracks_per_fault=300,
    max_frames=8,
    random_sequences=16,
    random_length=16,
)


@pytest.fixture
def checkpoint(tmp_path):
    return AtpgCheckpoint(str(tmp_path / "run.ckpt.jsonl"))


class TestLoadValidation:
    def test_absent_file_loads_none(self, checkpoint):
        circuit = toggle_counter()
        faults = collapse_faults(circuit).representatives
        assert checkpoint.load(circuit, faults, BUDGET) is None

    def test_header_binds_circuit_faults_and_budget(self, checkpoint):
        circuit = toggle_counter()
        faults = collapse_faults(circuit).representatives
        run_atpg(circuit, faults, BUDGET, checkpoint=checkpoint)

        # Completed run: loads for the matching triple...
        assert checkpoint.load(circuit, faults, BUDGET) is not None
        # ...but not for a different circuit, fault list or budget.
        other = resettable_counter()
        other_faults = collapse_faults(other).representatives
        assert checkpoint.load(other, other_faults, BUDGET) is None
        assert checkpoint.load(circuit, faults[:-1], BUDGET) is None
        bigger = AtpgBudget(total_seconds=BUDGET.total_seconds + 1)
        assert checkpoint.load(circuit, faults, bigger) is None

    def test_header_only_checkpoint_loads_none(self, checkpoint):
        """A run killed before the random phase completed restores nothing."""
        circuit = toggle_counter()
        faults = collapse_faults(circuit).representatives
        checkpoint.start(circuit, faults, BUDGET)
        checkpoint.close()
        assert checkpoint.load(circuit, faults, BUDGET) is None

    def test_torn_trailing_line_is_dropped(self, checkpoint):
        circuit = toggle_counter()
        faults = collapse_faults(circuit).representatives
        run_atpg(circuit, faults, BUDGET, checkpoint=checkpoint)
        with open(checkpoint.path, "a", encoding="utf-8") as handle:
            handle.write('{"e": "fault", "f": [0, 0')  # the kill point
        state = checkpoint.load(circuit, faults, BUDGET)
        assert state is not None

    def test_malformed_middle_line_invalidates_only_the_tail(self, checkpoint):
        # resettable_counter keeps a few undetectable faults out of the
        # random phase's reach, so the deterministic phase always writes
        # per-fault records for this corruption test to target.
        circuit = resettable_counter()
        faults = collapse_faults(circuit).representatives
        run_atpg(circuit, faults, BUDGET, checkpoint=checkpoint)
        lines = open(checkpoint.path).read().splitlines()
        # Corrupt the first per-fault record; the random phase must survive.
        target = next(
            i for i, line in enumerate(lines) if json.loads(line).get("e") == "fault"
        )
        lines[target] = '{"e": "fault", "f": "not-a-fault", "s": "det"}'
        with open(checkpoint.path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        state = checkpoint.load(circuit, faults, BUDGET)
        assert state is not None
        assert state.outcomes == {}  # tail dropped, random phase kept


class TestResumeBitIdentity:
    def _truncated_copy(self, checkpoint, keep_fault_lines):
        """Rewrite the checkpoint as if the run died mid-deterministic-phase."""
        lines = open(checkpoint.path).read().splitlines()
        kept, fault_seen = [], 0
        for line in lines:
            if json.loads(line).get("e") == "fault":
                fault_seen += 1
                if fault_seen > keep_fault_lines:
                    break
            kept.append(line)
        # A torn half-line at the kill point, as a real SIGKILL leaves.
        with open(checkpoint.path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(kept) + "\n" + '{"e": "fault", "f": [1')
        return fault_seen > keep_fault_lines

    @pytest.mark.parametrize("engine", ["serial", "process"])
    def test_killed_run_resumes_bit_identical(self, tmp_path, engine):
        circuit = resettable_counter()
        faults = collapse_faults(circuit).representatives

        reference = run_atpg(circuit, faults, BUDGET)

        checkpoint = AtpgCheckpoint(str(tmp_path / f"{engine}.ckpt"))
        run_atpg(circuit, faults, BUDGET, checkpoint=checkpoint)
        truncated = self._truncated_copy(checkpoint, keep_fault_lines=2)
        assert truncated, "workload too small to simulate a mid-run kill"

        resumed = run_atpg(
            circuit,
            faults,
            BUDGET,
            checkpoint=checkpoint,
            resume=True,
            engine=engine,
            workers=2 if engine == "process" else None,
        )
        assert resumed.test_set.to_text() == reference.test_set.to_text()
        assert sorted(resumed.detected) == sorted(reference.detected)
        assert sorted(resumed.aborted) == sorted(reference.aborted)

    def test_resume_without_surviving_checkpoint_restarts(self, tmp_path):
        circuit = toggle_counter()
        faults = collapse_faults(circuit).representatives
        checkpoint = AtpgCheckpoint(str(tmp_path / "fresh.ckpt"))
        reference = run_atpg(circuit, faults, BUDGET)
        resumed = run_atpg(
            circuit, faults, BUDGET, checkpoint=checkpoint, resume=True
        )
        assert resumed.test_set.to_text() == reference.test_set.to_text()
