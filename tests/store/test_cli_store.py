"""CLI coverage for the ``store`` subcommand and the shared run flags."""

import json

import pytest

from repro.__main__ import _pop_flags, _spec, main
from repro.store.core import default_store


class TestStoreSubcommand:
    def test_stats_reports_empty_store(self, capsys):
        assert main(["store", "stats", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["artifacts"] == 0
        assert summary["root"] == default_store().root

    def test_stats_counts_after_a_run(self, capsys):
        assert main(["atpg", "dk16", "ji", "sd", "3"]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["artifacts"] > 0
        assert "faults" in summary["by_kind"]

    def test_gc_respects_journal_pins(self, capsys):
        assert main(["atpg", "dk16", "ji", "sd", "3"]) == 0
        capsys.readouterr()
        assert main(["store", "gc", "0"]) == 0
        report = json.loads(capsys.readouterr().out)
        # Everything the journalled run touched stays; nothing else exists.
        assert report["skipped_pinned"] > 0
        assert report["evicted"] == 0

    def test_clear_empties_the_store(self, capsys):
        assert main(["atpg", "dk16", "ji", "sd", "3"]) == 0
        capsys.readouterr()
        assert main(["store", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["store", "stats", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["artifacts"] == 0

    def test_disabled_store_reports_failure(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DISABLE", "1")
        assert main(["store", "stats"]) == 1
        assert "disabled" in capsys.readouterr().err

    def test_unknown_action_is_a_usage_error(self, capsys):
        assert main(["store", "frobnicate"]) == 2


class TestRunFlags:
    def test_pop_flags_defaults(self):
        positional, options = _pop_flags(["dk16", "ji", "sd"])
        assert positional == ["dk16", "ji", "sd"]
        assert options == {
            "store": True,
            "resume": False,
            "workers": None,
            "kernel": "dual",
            "backend": "auto",
            "guidance": "off",
            "engine": None,
            "initial": None,
            "retimed": False,
            "max_length": None,
            "verify": False,
            "stg_engine": None,
        }

    def test_pop_flags_parses_everything(self):
        positional, options = _pop_flags(
            [
                "--no-store",
                "dk16",
                "--resume",
                "ji",
                "--workers",
                "3",
                "sd",
                "--kernel",
                "scalar",
                "--backend",
                "bigint",
                "--guidance",
                "scoap",
                "--engine",
                "reference",
                "--initial",
                "all",
                "--retimed",
                "--max-length",
                "5",
                "--verify",
                "--stg-engine",
                "reach",
            ]
        )
        assert positional == ["dk16", "ji", "sd"]
        assert options == {
            "store": False,
            "resume": True,
            "workers": 3,
            "kernel": "scalar",
            "backend": "bigint",
            "guidance": "scoap",
            "engine": "reference",
            "initial": "all",
            "retimed": True,
            "max_length": 5,
            "verify": True,
            "stg_engine": "reach",
        }

    def test_workers_without_count_is_an_error(self):
        with pytest.raises(ValueError):
            _pop_flags(["--workers"])

    def test_kernel_without_name_is_an_error(self):
        with pytest.raises(ValueError):
            _pop_flags(["--kernel"])

    def test_backend_without_name_is_an_error(self):
        with pytest.raises(ValueError):
            _pop_flags(["--backend"])

    def test_guidance_rejects_unknown_modes(self):
        with pytest.raises(ValueError):
            _pop_flags(["--guidance"])
        with pytest.raises(ValueError):
            _pop_flags(["--guidance", "psychic"])

    def test_no_store_atpg_writes_nothing(self, capsys):
        assert main(["atpg", "--no-store", "dk16", "ji", "sd", "3"]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["artifacts"] == 0

    def test_warm_atpg_reprints_identical_testset(self, capsys):
        assert main(["atpg", "dk16", "ji", "sd", "3"]) == 0
        cold = capsys.readouterr()
        assert main(["atpg", "dk16", "ji", "sd", "3"]) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "stage atpg: hit" in warm.err


class TestSpecLookup:
    def test_table2_spec_carries_paper_forward_moves(self, capsys):
        spec = _spec("pma", "jo", "sd")  # Table II lists one forward move
        assert spec.forward_stem_moves == 1
        assert capsys.readouterr().err == ""

    def test_unknown_spec_warns_and_names_known_ones(self, capsys):
        spec = _spec("nosuch", "ji", "sd")
        assert spec.forward_stem_moves == 0
        err = capsys.readouterr().err
        assert "not a Table II circuit" in err
        assert "dk16.ji.sd" in err


class TestStatsTableAndServeUsage:
    def test_stats_renders_table_by_default(self, capsys):
        assert main(["store", "stats"]) == 0
        out = capsys.readouterr().out
        assert "store root:" in out
        assert "session" in out and "lifetime" in out
        assert "evictions" in out

    def test_stats_table_shows_shards_and_tenants(self, capsys):
        store = default_store()
        store.put("demo", store.key("x"), {"v": 1})
        assert main(["store", "stats"]) == 0
        out = capsys.readouterr().out
        assert "shard" in out and "tenant" in out
        assert "shared" in out  # the no-namespace tenant row

    def test_gc_accepts_tenant_max_bytes(self, capsys):
        assert main(["store", "gc", "--tenant-max-bytes", "1024"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["tenant_max_bytes"] == 1024

    def test_serve_rejects_unknown_option(self, capsys):
        assert main(["serve", "--frobnicate"]) == 2
        assert "unknown serve option" in capsys.readouterr().err

    def test_serve_rejects_dangling_value_option(self, capsys):
        assert main(["serve", "--port"]) == 2
        assert "needs a valid value" in capsys.readouterr().err
