"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_no_args_prints_usage(self, capsys):
        assert main([]) == 2
        assert "Commands" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "dk16" in out and "121" in out

    def test_synth_emits_bench(self, capsys):
        assert main(["synth", "s820", "jc", "rugged"]) == 0
        out = capsys.readouterr().out
        assert "INPUT(" in out and "= DFF(" in out

    def test_synth_accepts_script_codes(self, capsys):
        assert main(["synth", "s820", "jc", "sr"]) == 0
        assert "OUTPUT(" in capsys.readouterr().out

    def test_retime_reports_prefix(self, capsys):
        assert main(["retime", "pma", "jo", "delay"]) == 0
        out = capsys.readouterr().out
        assert "prefix |P| = 1" in out

    def test_missing_args(self, capsys):
        assert main(["synth"]) == 2

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2

    def test_atpg_emits_testset(self, capsys):
        assert main(["atpg", "dk16", "ji", "sd", "3"]) == 0
        captured = capsys.readouterr()
        assert "# testset" in captured.out
        assert "FC" in captured.err

    def test_equiv_reports_classes_and_sequence(self, capsys):
        assert main(["equiv", "dk16", "ji", "sd"]) == 0
        captured = capsys.readouterr()
        assert "32 states x 16 vectors" in captured.out
        assert "equivalence classes" in captured.out
        assert "functional sync sequence" in captured.out
        assert "store:" in captured.err

    def test_equiv_reference_engine_matches(self, capsys):
        assert main(["equiv", "dk16", "ji", "sd", "--engine", "reference"]) == 0
        out = capsys.readouterr().out
        assert "engine reference" in out
        assert "28 equivalence classes" in out

    def test_equiv_rejects_oversized_circuit(self, capsys):
        # s820 has 18 primary inputs -- beyond every engine's vector limit.
        assert main(["equiv", "s820", "jc", "rugged"]) == 1
        assert "state space too large" in capsys.readouterr().err

    def test_equiv_reach_engine_reports_visited_states(self, capsys):
        assert main(["equiv", "dk16", "ji", "sd", "--engine", "reach"]) == 0
        out = capsys.readouterr().out
        assert "engine reach: visited 27 of 32 states" in out
        assert "peak frontier" in out

    def test_equiv_reach_initial_all_matches_bitset_counts(self, capsys):
        assert (
            main(
                [
                    "equiv", "dk16", "ji", "sd",
                    "--engine", "reach", "--initial", "all",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "visited 32 of 32 states" in out
        assert "28 equivalence classes" in out  # same as the bitset engine

    def test_equiv_initial_requires_reach_engine(self, capsys):
        assert main(["equiv", "dk16", "ji", "sd", "--initial", "all"]) == 2
        assert "--initial requires --engine reach" in capsys.readouterr().err

    def test_equiv_help_prints_engine_limits_table(self, capsys):
        assert main(["equiv", "--help"]) == 0
        out = capsys.readouterr().out
        assert "engine limits:" in out
        for engine in ("reference", "bitset", "reach"):
            assert engine in out

    def test_flow_verify_stage_runs(self, capsys):
        assert main(["flow", "dk16", "ji", "sd", "2", "--verify"]) == 0
        captured = capsys.readouterr()
        assert "stage verify:" in captured.err
