"""Unit tests for the scalar three-valued algebra."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.three_valued import (
    ONE,
    X,
    ZERO,
    covers,
    is_known,
    merge,
    t_and,
    t_buf,
    t_nand,
    t_nor,
    t_not,
    t_or,
    t_xnor,
    t_xor,
    trit_from_char,
    trit_to_char,
    trits_from_string,
    trits_to_string,
)

TRITS = (ZERO, ONE, X)
trit_st = st.sampled_from(TRITS)


class TestTruthTables:
    def test_and_binary(self):
        assert t_and(ONE, ONE) == ONE
        assert t_and(ONE, ZERO) == ZERO
        assert t_and(ZERO, ZERO) == ZERO

    def test_and_dominant_zero(self):
        assert t_and(ZERO, X) == ZERO
        assert t_and(X, ZERO) == ZERO

    def test_and_unknown(self):
        assert t_and(ONE, X) == X
        assert t_and(X, X) == X

    def test_or_binary(self):
        assert t_or(ZERO, ZERO) == ZERO
        assert t_or(ZERO, ONE) == ONE

    def test_or_dominant_one(self):
        assert t_or(ONE, X) == ONE
        assert t_or(X, ONE) == ONE

    def test_or_unknown(self):
        assert t_or(ZERO, X) == X
        assert t_or(X, X) == X

    def test_not(self):
        assert t_not(ZERO) == ONE
        assert t_not(ONE) == ZERO
        assert t_not(X) == X

    def test_xor_with_x_is_x(self):
        assert t_xor(X, ZERO) == X
        assert t_xor(X, ONE) == X
        assert t_xor(X, X) == X

    def test_xor_binary(self):
        assert t_xor(ZERO, ONE) == ONE
        assert t_xor(ONE, ONE) == ZERO

    def test_multi_input(self):
        assert t_and(ONE, ONE, ONE, ZERO) == ZERO
        assert t_or(ZERO, ZERO, ONE) == ONE
        assert t_xor(ONE, ONE, ONE) == ONE

    def test_buf_identity(self):
        for value in TRITS:
            assert t_buf(value) == value

    def test_buf_rejects_garbage(self):
        with pytest.raises(ValueError):
            t_buf(7)


class TestDerivedGates:
    @given(st.lists(trit_st, min_size=1, max_size=4))
    def test_nand_is_not_and(self, values):
        assert t_nand(*values) == t_not(t_and(*values))

    @given(st.lists(trit_st, min_size=1, max_size=4))
    def test_nor_is_not_or(self, values):
        assert t_nor(*values) == t_not(t_or(*values))

    @given(st.lists(trit_st, min_size=1, max_size=4))
    def test_xnor_is_not_xor(self, values):
        assert t_xnor(*values) == t_not(t_xor(*values))


class TestAlgebraicLaws:
    @given(trit_st, trit_st)
    def test_and_commutative(self, a, b):
        assert t_and(a, b) == t_and(b, a)

    @given(trit_st, trit_st)
    def test_or_commutative(self, a, b):
        assert t_or(a, b) == t_or(b, a)

    @given(trit_st, trit_st, trit_st)
    def test_and_associative(self, a, b, c):
        assert t_and(t_and(a, b), c) == t_and(a, t_and(b, c))

    @given(trit_st, trit_st, trit_st)
    def test_or_associative(self, a, b, c):
        assert t_or(t_or(a, b), c) == t_or(a, t_or(b, c))

    @given(trit_st, trit_st)
    def test_de_morgan(self, a, b):
        assert t_not(t_and(a, b)) == t_or(t_not(a), t_not(b))

    @given(trit_st)
    def test_double_negation(self, a):
        assert t_not(t_not(a)) == a

    @given(trit_st, trit_st)
    def test_monotone_in_information(self, a, b):
        """Replacing an X input by a binary value never flips a known output.

        This is the conservativeness property that makes structural-based
        sequences a sound under-approximation in the paper.
        """
        result_with_x = t_and(a, X)
        refined = t_and(a, b)
        if result_with_x != X:
            assert refined == result_with_x


class TestConversions:
    def test_char_round_trip(self):
        for char in "01x":
            assert trit_to_char(trit_from_char(char)) == char

    def test_aliases(self):
        assert trit_from_char("X") == X
        assert trit_from_char("u") == X
        assert trit_from_char("-") == X

    def test_bad_char(self):
        with pytest.raises(ValueError):
            trit_from_char("2")

    def test_bad_trit(self):
        with pytest.raises(ValueError):
            trit_to_char(9)

    def test_string_round_trip(self):
        assert trits_to_string(trits_from_string("01x10")) == "01x10"


class TestHelpers:
    def test_is_known(self):
        assert is_known(ZERO)
        assert is_known(ONE)
        assert not is_known(X)

    def test_merge(self):
        assert merge(ONE, ONE) == ONE
        assert merge(ZERO, ZERO) == ZERO
        assert merge(ZERO, ONE) == X
        assert merge(ONE, X) == X

    def test_covers(self):
        assert covers(X, ZERO)
        assert covers(X, ONE)
        assert covers(ONE, ONE)
        assert not covers(ONE, ZERO)
        assert not covers(ZERO, X)
