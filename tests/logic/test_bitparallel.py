"""Unit tests for the dual-rail bit-parallel logic, cross-checked against the scalar algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.bitparallel import BitVec
from repro.logic.three_valued import ONE, X, ZERO, t_and, t_not, t_or, t_xor

trit_st = st.sampled_from((ZERO, ONE, X))
trits_st = st.lists(trit_st, min_size=1, max_size=80)


class TestConstruction:
    def test_filled(self):
        ones = BitVec.filled(ONE, 5)
        assert list(ones.trits()) == [ONE] * 5
        zeros = BitVec.filled(ZERO, 5)
        assert list(zeros.trits()) == [ZERO] * 5
        unknown = BitVec.filled(X, 5)
        assert list(unknown.trits()) == [X] * 5

    def test_from_trits_round_trip(self):
        values = [ZERO, ONE, X, ONE, ZERO]
        vec = BitVec.from_trits(values)
        assert list(vec.trits()) == values

    def test_overlapping_rails_rejected(self):
        with pytest.raises(ValueError):
            BitVec(1, 1, 1)

    def test_rails_outside_width_rejected(self):
        with pytest.raises(ValueError):
            BitVec(4, 0, 2)

    def test_str(self):
        assert str(BitVec.from_trits([ZERO, ONE, X])) == "01x"


class TestAccess:
    def test_get_and_with_bit(self):
        vec = BitVec.filled(X, 4)
        vec = vec.with_bit(2, ONE).with_bit(0, ZERO)
        assert vec.get(0) == ZERO
        assert vec.get(1) == X
        assert vec.get(2) == ONE

    def test_with_bit_clears(self):
        vec = BitVec.filled(ONE, 3).with_bit(1, X)
        assert vec.get(1) == X

    def test_index_errors(self):
        vec = BitVec.filled(X, 3)
        with pytest.raises(IndexError):
            vec.get(3)
        with pytest.raises(IndexError):
            vec.with_bit(-1, ONE)


class TestGateSemantics:
    """Every vector op must agree with the scalar algebra position-wise."""

    @given(trits_st, trits_st)
    def test_and(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        va = BitVec.from_trits(a + [X] * (n - len(a)))
        va = BitVec(va.ones, va.zeros, n) if va.width != n else va
        vb = BitVec.from_trits(b)
        vb = BitVec(vb.ones, vb.zeros, n) if vb.width != n else vb
        result = va & vb
        for i in range(n):
            assert result.get(i) == t_and(a[i], b[i])

    @given(trits_st, trits_st)
    def test_or(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        va = BitVec(BitVec.from_trits(a).ones, BitVec.from_trits(a).zeros, n)
        vb = BitVec(BitVec.from_trits(b).ones, BitVec.from_trits(b).zeros, n)
        result = va | vb
        for i in range(n):
            assert result.get(i) == t_or(a[i], b[i])

    @given(trits_st, trits_st)
    def test_xor(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        va = BitVec(BitVec.from_trits(a).ones, BitVec.from_trits(a).zeros, n)
        vb = BitVec(BitVec.from_trits(b).ones, BitVec.from_trits(b).zeros, n)
        result = va ^ vb
        for i in range(n):
            assert result.get(i) == t_xor(a[i], b[i])

    @given(trits_st)
    def test_not(self, a):
        vec = BitVec.from_trits(a)
        result = ~vec
        for i in range(vec.width):
            assert result.get(i) == t_not(vec.get(i))

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            BitVec.filled(ONE, 3) & BitVec.filled(ONE, 4)


class TestMasks:
    def test_known_mask(self):
        vec = BitVec.from_trits([ZERO, X, ONE, X])
        assert vec.known_mask() == 0b0101

    def test_diff_mask_detection_semantics(self):
        good = BitVec.from_trits([ZERO, ONE, X, ONE, ZERO])
        bad = BitVec.from_trits([ONE, ONE, ONE, X, ZERO])
        # Positions 0 differs (0 vs 1); 2 and 3 involve X -> no detection;
        # 1 and 4 agree.
        assert good.diff_mask(bad) == 0b00001

    @given(trits_st)
    def test_diff_mask_self_is_zero(self, values):
        vec = BitVec.from_trits(values)
        assert vec.diff_mask(vec) == 0


class TestFromTritsWidth:
    def test_explicit_width_pads_with_x(self):
        vec = BitVec.from_trits([ONE, ZERO], width=5)
        assert vec.width == 5
        assert list(vec.trits()) == [ONE, ZERO, X, X, X]

    def test_explicit_width_exact(self):
        vec = BitVec.from_trits([ONE, ZERO, X], width=3)
        assert (vec.ones, vec.zeros) == (0b001, 0b010)

    def test_explicit_width_too_small_rejected(self):
        with pytest.raises(ValueError):
            BitVec.from_trits([ONE, ZERO, ONE], width=2)

    def test_default_width_unchanged(self):
        assert BitVec.from_trits([X, ONE]).width == 2
