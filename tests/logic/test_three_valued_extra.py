"""Soundness of three-valued simulation as an abstraction (property tests).

The conservativeness of ternary simulation underpins the paper's
structural/functional distinction: whenever 3-valued simulation produces a
binary value, every completion of the X inputs produces that same value.
These properties are exercised through whole circuits here, not just single
gates.
"""

import itertools
import random

import pytest

from repro.logic.three_valued import X
from repro.simulation import SequentialSimulator

from tests.helpers import random_circuit, resettable_counter


def _completions(vector):
    choices = [(0, 1) if v == X else (v,) for v in vector]
    return itertools.product(*choices)


class TestAbstractionSoundness:
    @pytest.mark.parametrize("seed", range(5))
    def test_binary_outputs_agree_with_all_completions(self, seed):
        circuit = random_circuit(seed + 8000, num_inputs=3, num_gates=10, num_dffs=2)
        rng = random.Random(seed)
        sim = SequentialSimulator(circuit)
        for _ in range(10):
            state = tuple(rng.choice((0, 1, X)) for _ in range(circuit.num_registers()))
            vector = tuple(rng.choice((0, 1, X)) for _ in circuit.input_names)
            abstract = sim.step(state, vector)
            for concrete_state in _completions(state):
                for concrete_vector in _completions(vector):
                    concrete = sim.step(concrete_state, concrete_vector)
                    for a, c in zip(abstract.outputs, concrete.outputs):
                        if a != X:
                            assert a == c
                    for a, c in zip(abstract.next_state, concrete.next_state):
                        if a != X:
                            assert a == c

    def test_monotone_refinement(self):
        """Refining an X input never changes an already-binary output."""
        circuit = resettable_counter()
        sim = SequentialSimulator(circuit)
        state = (X, X)
        coarse = sim.step(state, (X, 1))  # rst asserted, en unknown
        for en in (0, 1):
            fine = sim.step(state, (en, 1))
            for a, b in zip(coarse.next_state, fine.next_state):
                if a != X:
                    assert a == b
