"""Tests for Fig. 3 (Observations 1/3, Theorem 2) and Fig. 5 (Observations 2/4)."""

import itertools

import pytest

from repro.circuit import validate
from repro.equivalence import (
    classify,
    extract_stg,
    functional_final_states,
    is_functional_sync_sequence,
    is_structural_sync_sequence,
    space_contains,
    states_equivalent,
)
from repro.faults import StuckAtFault
from repro.circuit import LineRef
from repro.logic.three_valued import X, ZERO
from repro.papercircuits import (
    EXAMPLE2_SEQUENCE,
    EXAMPLE4_TEST,
    fig3_pair,
    fig5_pair,
    n1_g1_g2_fault,
    n2_g1_q12_fault,
    n2_q12_g2_fault,
)
from repro.simulation import SequentialSimulator


class TestFig3Observation1:
    """Example 1: <11> functionally synchronizes L1 but not L2."""

    def test_sequence_is_functional_not_structural_for_l1(self):
        l1, _, _ = fig3_pair()
        stg = extract_stg(l1)
        assert is_functional_sync_sequence(stg, [(1, 1)])
        assert not is_structural_sync_sequence(l1, [(1, 1)])

    def test_l1_synchronized_to_state_1(self):
        l1, _, _ = fig3_pair()
        stg = extract_stg(l1)
        final = functional_final_states(stg, [(1, 1)])
        assert final == frozenset({(1,)})

    def test_sequence_fails_on_l2(self):
        _, l2, _ = fig3_pair()
        stg = extract_stg(l2)
        assert not is_functional_sync_sequence(stg, [(1, 1)])

    def test_forward_stem_move_breaks_containment(self):
        """K not superset_s K' after a forward stem move (inconsistent states)."""
        l1, l2, retiming = fig3_pair()
        stg1, stg2 = extract_stg(l1), extract_stg(l2)
        assert retiming.max_forward_moves_across_stems() == 1
        assert space_contains(stg2, stg1)
        assert not space_contains(stg1, stg2)


class TestFig3Theorem2:
    """Any one-vector prefix restores the synchronizing sequence on L2."""

    @pytest.mark.parametrize("prefix", list(itertools.product((0, 1), repeat=2)))
    def test_all_prefixes_work(self, prefix):
        l1, l2, _ = fig3_pair()
        stg2 = extract_stg(l2)
        sequence = [prefix, (1, 1)]
        assert is_functional_sync_sequence(stg2, sequence)
        final = functional_final_states(stg2, sequence)
        assert final == frozenset({(1, 1)})

    def test_synchronized_states_equivalent_across_machines(self):
        """P + I drives L2 to a state equivalent to L1's {1}."""
        l1, l2, _ = fig3_pair()
        stg1, stg2 = extract_stg(l1), extract_stg(l2)
        assert states_equivalent(stg1, (1,), stg2, (1, 1))


class TestFig3Observation3:
    """Example 3: a functional test for L1's output s-a-0 fails on L2."""

    @staticmethod
    def _output_branch_fault(circuit):
        po_edge = circuit.in_edges("Z")[0]
        return StuckAtFault(LineRef(po_edge.index, 1), ZERO)

    def test_functionally_detected_on_l1(self):
        l1, _, _ = fig3_pair()
        fault = self._output_branch_fault(l1)
        good = extract_stg(l1)
        bad = extract_stg(l1, fault=fault)
        # Under <11> every good state outputs 1, every faulty state 0.
        for state in good.states:
            _, outputs = good.run(state, [(1, 1)])
            assert outputs[0] == (1,)
        for state in bad.states:
            _, outputs = bad.run(state, [(1, 1)])
            assert outputs[0] == (0,)

    def test_not_detected_on_l2(self):
        _, l2, _ = fig3_pair()
        fault = self._output_branch_fault(l2)
        good = extract_stg(l2)
        bad = extract_stg(l2, fault=fault)
        # The inconsistent good state (0, 1) also outputs 0 under <11>:
        # the fault is not detected for that initial state.
        _, good_out = good.run((0, 1), [(1, 1)])
        assert good_out[0] == (0,)
        _, bad_out = bad.run((0, 1), [(1, 1)])
        assert bad_out[0] == (0,)

    def test_prefixed_test_detects_on_l2(self):
        """Theorem 4 on this example: P + T distinguishes good from faulty."""
        _, l2, _ = fig3_pair()
        fault = self._output_branch_fault(l2)
        good = extract_stg(l2)
        bad = extract_stg(l2, fault=fault)
        sequence = [(0, 0), (1, 1)]
        for good_state in good.states:
            for bad_state in bad.states:
                _, good_out = good.run(good_state, sequence)
                _, bad_out = bad.run(bad_state, sequence)
                # Detection at the final vector: good 1, faulty 0.
                assert good_out[-1] == (1,)
                assert bad_out[-1] == (0,)


class TestFig5Observation2:
    """Example 2: faulty-circuit sync sequences need the prefix."""

    def test_n1_faulty_synchronized_to_001(self):
        n1, _, _ = fig5_pair()
        sim = SequentialSimulator(n1, fault=n1_g1_g2_fault(n1))
        final = sim.run(EXAMPLE2_SEQUENCE).final_state
        assert final == (0, 0, 1)

    def test_sequence_is_structural_for_faulty_n1(self):
        n1, _, _ = fig5_pair()
        sim = SequentialSimulator(n1, fault=n1_g1_g2_fault(n1))
        assert sim.is_synchronizing(EXAMPLE2_SEQUENCE)

    def test_same_sequence_fails_on_faulty_n2(self):
        _, n2, _ = fig5_pair()
        sim = SequentialSimulator(n2, fault=n2_g1_q12_fault(n2))
        final = sim.run(EXAMPLE2_SEQUENCE).final_state
        assert final == (1, X)  # the paper's {1x}
        assert not sim.is_synchronizing(EXAMPLE2_SEQUENCE)

    @pytest.mark.parametrize(
        "prefix", list(itertools.product((0, 1), repeat=3))
    )
    def test_any_prefix_restores_sync(self, prefix):
        """Lemma 4 / Theorem 3: one arbitrary vector suffices."""
        _, n2, retiming = fig5_pair()
        assert retiming.max_forward_moves() == 1
        sim = SequentialSimulator(n2, fault=n2_g1_q12_fault(n2))
        assert sim.is_synchronizing([prefix] + EXAMPLE2_SEQUENCE)

    @pytest.mark.parametrize("engine", ["bitset", "reference"])
    def test_corresponding_fault_is_multiple_fault_equivalent(self, engine):
        """The G1-Q12 fault in N2 is space-equivalent to the *multiple*
        s-a-1 fault on I1-Q1 and I2-Q2 in N1 (checked behaviourally via
        parallel injection)."""
        n1, n2, _ = fig5_pair()
        from repro.equivalence import space_equivalent

        multi_faults = _n1_multi_fault(n1)
        stg_multi = extract_stg(n1, fault=multi_faults, engine=engine)
        stg_single = extract_stg(n2, fault=n2_g1_q12_fault(n2), engine=engine)
        assert space_equivalent(stg_multi, stg_single)

    def test_multi_fault_extraction_matches_dict_construction(self):
        """The dict-style ExplicitSTG constructor (historical API) builds
        the same machine as multi-fault extract_stg."""
        n1, _, _ = fig5_pair()
        multi_faults = _n1_multi_fault(n1)
        stg_dicts = _extract_multi_fault_stg_via_dicts(n1, multi_faults)
        stg = extract_stg(n1, fault=multi_faults)
        assert stg_dicts.next_index == stg.next_index
        assert stg_dicts.output_index == stg.output_index
        assert stg_dicts.states == stg.states
        assert stg_dicts.alphabet == stg.alphabet


def _n1_multi_fault(n1):
    from repro.logic.three_valued import ONE

    multi_faults = []
    for edge in n1.edges:
        if edge.sink == "G1" and edge.weight == 1:
            multi_faults.append(StuckAtFault(LineRef(edge.index, 1), ONE))
    assert len(multi_faults) == 2
    return multi_faults


def _extract_multi_fault_stg_via_dicts(circuit, faults):
    """STG of a circuit under a multiple stuck-at fault, built through the
    historical dict-of-tuples ExplicitSTG constructor."""
    from repro.equivalence.explicit import ExplicitSTG, all_vectors
    from repro.simulation.sequential import SequentialSimulator

    simulator = SequentialSimulator(circuit, fault=list(faults))
    states = tuple(all_vectors(circuit.num_registers()))
    alphabet = tuple(all_vectors(len(circuit.input_names)))
    next_state, output = {}, {}
    for state in states:
        for vector in alphabet:
            result = simulator.step(state, vector)
            next_state[(state, vector)] = result.next_state
            output[(state, vector)] = result.outputs
    return ExplicitSTG(
        name=circuit.name + "^multi",
        num_inputs=len(circuit.input_names),
        num_registers=circuit.num_registers(),
        alphabet=alphabet,
        states=states,
        next_state=next_state,
        output=output,
    )


class TestFig5Observation4:
    """Example 4: structural tests are not preserved without the prefix."""

    def test_detects_g1_g2_fault_in_n1(self):
        n1, _, _ = fig5_pair()
        from repro.faultsim import fault_simulate

        result = fault_simulate(n1, [EXAMPLE4_TEST], [n1_g1_g2_fault(n1)])
        assert result.num_detected == 1

    def test_does_not_detect_corresponding_fault_in_n2(self):
        _, n2, _ = fig5_pair()
        from repro.faultsim import fault_simulate

        result = fault_simulate(n2, [EXAMPLE4_TEST], [n2_g1_q12_fault(n2)])
        assert result.num_detected == 0

    def test_detects_other_segment_in_n2(self):
        """The paper: T *does* detect the Q12-G2 s-a-1 fault in N2."""
        _, n2, _ = fig5_pair()
        from repro.faultsim import fault_simulate

        result = fault_simulate(n2, [EXAMPLE4_TEST], [n2_q12_g2_fault(n2)])
        assert result.num_detected == 1

    @pytest.mark.parametrize(
        "prefix", list(itertools.product((0, 1), repeat=3))
    )
    def test_prefixed_test_detects_in_n2(self, prefix):
        """Theorem 4: P + T detects the corresponding fault, any prefix."""
        _, n2, _ = fig5_pair()
        from repro.faultsim import fault_simulate

        sequence = [prefix] + EXAMPLE4_TEST
        result = fault_simulate(n2, [sequence], [n2_g1_q12_fault(n2)])
        assert result.num_detected == 1
