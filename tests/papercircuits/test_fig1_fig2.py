"""Tests for Fig. 1 (atomic moves) and Fig. 2 (Lemma 1, Theorem 1)."""

import pytest

from repro.circuit import validate
from repro.equivalence import (
    classify,
    extract_stg,
    space_equivalent,
    states_equivalent,
)
from repro.papercircuits import (
    fig1_gate_pair,
    fig1_stem_pair,
    fig2_c1,
    fig2_pair,
)
from repro.retiming.moves import can_move
from repro.simulation import SequentialSimulator


class TestFig1AtomicMoves:
    def test_gate_move_register_counts(self):
        k1, k2, retiming = fig1_gate_pair()
        validate(k1)
        validate(k2)
        assert k1.num_registers() == 2
        assert k2.num_registers() == 1  # two input registers merge into one
        assert retiming.max_forward_moves() == 1

    def test_gate_move_reversible(self):
        k1, k2, retiming = fig1_gate_pair()
        back = retiming.inverse(k2)
        assert back.apply().weights() == k1.weights()

    def test_gate_move_legality_conditions(self):
        k1, _, _ = fig1_gate_pair()
        assert can_move(k1, "G", "forward")
        assert not can_move(k1, "G", "backward")  # no register on the output

    def test_stem_move_register_counts(self):
        k1, k2, retiming = fig1_stem_pair()
        validate(k2)
        assert k1.num_registers() == 1
        assert k2.num_registers() == 2  # the shared register splits per branch
        assert retiming.max_forward_moves_across_stems() == 1

    def test_gate_move_space_equivalent(self):
        """Lemma 1 on the atomic gate move: K1 ==s K2."""
        k1, k2, _ = fig1_gate_pair()
        assert space_equivalent(extract_stg(k1), extract_stg(k2))

    def test_stem_move_not_space_equivalent(self):
        """Forward stem moves create inconsistent states: K2 !=s K1."""
        k1, k2, _ = fig1_stem_pair()
        stg1, stg2 = extract_stg(k1), extract_stg(k2)
        from repro.equivalence import space_contains

        assert space_contains(stg2, stg1)       # K' superset_s K (B = 0)
        assert not space_contains(stg1, stg2)   # inconsistent states in K'


class TestFig2Lemma1:
    def test_characteristics_match_paper(self):
        c1, c2, _ = fig2_pair()
        assert c1.num_registers() == 1
        assert c2.num_registers() == 2
        assert c1.clock_period() == 4
        assert c2.clock_period() == 3

    def test_space_equivalence(self):
        """Lemma 1: retiming across single-output gates only => C1 ==s C2."""
        c1, c2, retiming = fig2_pair()
        # The move touches only gate g2 (no stem label).
        assert retiming.max_forward_moves_across_stems() == 0
        assert retiming.max_backward_moves_across_stems() == 0
        assert space_equivalent(extract_stg(c1), extract_stg(c2))

    def test_retiming_creates_equivalent_states(self):
        _, c2, _ = fig2_pair()
        stg = extract_stg(c2)
        classes = classify([stg]).equivalence_classes(0)
        sizes = sorted(len(states) for states in classes.values())
        assert sizes == [1, 3]
        big_class = next(s for s in classes.values() if len(s) == 3)
        assert sorted(big_class) == [(0, 1), (1, 0), (1, 1)]

    def test_c1_has_no_equivalent_states(self):
        stg = extract_stg(fig2_c1())
        classes = classify([stg]).equivalence_classes(0)
        assert all(len(states) == 1 for states in classes.values())

    def test_cross_machine_state_equivalence(self):
        """{00} in C2 is equivalent to {0} in C1; {01,10,11} to {1}."""
        c1, c2, _ = fig2_pair()
        stg1, stg2 = extract_stg(c1), extract_stg(c2)
        assert states_equivalent(stg1, (0,), stg2, (0, 0))
        for state in [(0, 1), (1, 0), (1, 1)]:
            assert states_equivalent(stg1, (1,), stg2, state)
        assert not states_equivalent(stg1, (0,), stg2, (1, 1))

    def test_theorem1_structural_sync_preserved(self):
        """<11> synchronizes C1 and C2 to equivalent states."""
        c1, c2, _ = fig2_pair()
        sim1, sim2 = SequentialSimulator(c1), SequentialSimulator(c2)
        final1 = sim1.run([(1, 1)]).final_state
        final2 = sim2.run([(1, 1)]).final_state
        assert 2 not in final1  # fully known: structural sync
        assert 2 not in final2  # preserved on the retimed circuit
        stg1, stg2 = extract_stg(c1), extract_stg(c2)
        assert states_equivalent(stg1, final1, stg2, final2)
