"""Tests for structural equivalence fault collapsing."""

import random

import pytest

from repro.circuit import CircuitBuilder, GateType, LineRef
from repro.faults import StuckAtFault, collapse_faults, full_fault_universe
from repro.faultsim import serial_fault_simulate
from repro.logic.three_valued import ONE, ZERO

from tests.helpers import random_circuit


def _single_gate_circuit(gate_type, arity=2):
    builder = CircuitBuilder(f"single_{gate_type.value}")
    names = [builder.input(f"i{k}") for k in range(arity)]
    builder.gate("g", gate_type, names)
    builder.output("z", "g")
    return builder.build()


class TestGateLocalRules:
    def test_and_gate_classes(self):
        circuit = _single_gate_circuit(GateType.AND)
        collapsed = collapse_faults(circuit)
        # 3 lines (2 inputs, gate->z), 6 faults total; the three s-a-0
        # (in0, in1, out) merge into one class: 6 - 2 = 4.
        assert collapsed.num_total == 6
        assert collapsed.num_collapsed == 4

    def test_or_gate_classes(self):
        circuit = _single_gate_circuit(GateType.OR)
        assert collapse_faults(circuit).num_collapsed == 4

    def test_nand_gate_classes(self):
        circuit = _single_gate_circuit(GateType.NAND)
        assert collapse_faults(circuit).num_collapsed == 4

    def test_xor_no_collapsing(self):
        circuit = _single_gate_circuit(GateType.XOR)
        assert collapse_faults(circuit).num_collapsed == 6

    def test_inverter_chain_collapses_fully(self):
        builder = CircuitBuilder("chain")
        builder.input("a")
        builder.not_("g1", "a")
        builder.not_("g2", "g1")
        builder.output("z", "g2")
        circuit = builder.build()
        collapsed = collapse_faults(circuit)
        # 3 lines, 6 faults, all collapse into 2 classes through the chain.
        assert collapsed.num_total == 6
        assert collapsed.num_collapsed == 2

    def test_no_collapsing_across_register(self):
        builder = CircuitBuilder("reg")
        builder.input("a")
        builder.buf("g1", "a")
        builder.dff("q", "g1")
        builder.buf("g2", "q")
        builder.output("z", "g2")
        circuit = builder.build()
        collapsed = collapse_faults(circuit)
        # Lines: a->g1 (1), g1->(reg)->g2 (2), g2->z (1) = 4 lines, 8 faults.
        # BUF collapses a->g1 with g1-side line and register-side line with
        # g2->z, but never across the register: 2 classes on each side => 4.
        assert collapsed.num_total == 8
        assert collapsed.num_collapsed == 4

    def test_class_members(self):
        circuit = _single_gate_circuit(GateType.AND)
        collapsed = collapse_faults(circuit)
        sa0_class = [
            rep
            for rep in collapsed.representatives
            if len(collapsed.class_members(rep)) == 3
        ]
        assert len(sa0_class) == 1
        assert all(f.value == ZERO for f in collapsed.class_members(sa0_class[0]))


class TestCollapsingSoundness:
    """Every fault must be detected by exactly the tests detecting its representative."""

    @pytest.mark.parametrize("seed", range(3))
    def test_equivalent_faults_have_identical_detection(self, seed):
        circuit = random_circuit(seed, num_inputs=3, num_gates=8, num_dffs=2)
        collapsed = collapse_faults(circuit)
        rng = random.Random(seed)
        sequences = [
            [tuple(rng.randint(0, 1) for _ in circuit.input_names) for _ in range(6)]
            for _ in range(3)
        ]
        universe = full_fault_universe(circuit)
        result = serial_fault_simulate(circuit, sequences, universe, drop=False)
        for fault in universe:
            rep = collapsed.class_of[fault]
            assert (fault in result.detections) == (rep in result.detections), (
                f"{fault} vs representative {rep}"
            )

    def test_restricted_fault_list(self):
        circuit = _single_gate_circuit(GateType.AND)
        some = full_fault_universe(circuit)[:3]
        collapsed = collapse_faults(circuit, some)
        assert collapsed.num_total == 3
        assert set(collapsed.class_of) == set(some)
