"""Tests for the stuck-at fault universe over lines."""

import pytest

from repro.circuit import LineRef
from repro.faults import StuckAtFault, check_fault, faults_on_edge, full_fault_universe
from repro.logic.three_valued import ONE, X, ZERO

from tests.helpers import feedback_and, shift_register, toggle_counter


class TestFaultUniverse:
    def test_universe_size_is_two_per_line(self):
        circuit = toggle_counter()
        assert len(full_fault_universe(circuit)) == 2 * circuit.num_lines()

    def test_universe_grows_with_registers(self):
        """More flip-flops on an edge = more lines = more faults (Fig. 4)."""
        shallow = shift_register(depth=1)
        deep = shift_register(depth=4)
        assert len(full_fault_universe(deep)) == len(full_fault_universe(shallow)) + 6

    def test_faults_on_edge(self):
        circuit = shift_register(depth=2)
        chain_edge = circuit.in_edges("zbuf")[0]
        faults = faults_on_edge(circuit, chain_edge.index)
        assert len(faults) == 2 * (chain_edge.weight + 1)
        segments = sorted({f.line.segment for f in faults})
        assert segments == [1, 2, 3]

    def test_canonical_order(self):
        circuit = feedback_and()
        universe = full_fault_universe(circuit)
        assert universe == sorted(universe)


class TestValidation:
    def test_bad_stuck_value(self):
        with pytest.raises(ValueError):
            StuckAtFault(LineRef(0, 1), X)

    def test_check_fault_bad_edge(self):
        circuit = feedback_and()
        with pytest.raises(ValueError):
            check_fault(circuit, StuckAtFault(LineRef(99, 1), ZERO))

    def test_check_fault_bad_segment(self):
        circuit = feedback_and()
        with pytest.raises(ValueError):
            check_fault(circuit, StuckAtFault(LineRef(0, 9), ONE))

    def test_describe(self):
        circuit = feedback_and()
        fault = full_fault_universe(circuit)[0]
        text = fault.describe(circuit)
        assert "s-a-" in text
        assert "seg" in text
