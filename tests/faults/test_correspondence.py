"""Tests for the corresponding-fault relation (paper Section IV-B)."""

import pytest

from repro.circuit import LineRef
from repro.faults import (
    CorrespondenceError,
    FaultCorrespondence,
    StuckAtFault,
    check_same_structure,
    full_fault_universe,
)
from repro.papercircuits import fig1_gate_pair, fig5_pair, g1_g2_edge
from repro.retiming import Retiming, min_register_retiming

from tests.helpers import pipelined_logic, random_circuit, resettable_counter


class TestStructureCheck:
    def test_retimed_pairs_pass(self):
        k1, k2, _ = fig1_gate_pair()
        check_same_structure(k1, k2)

    def test_unrelated_circuits_rejected(self):
        with pytest.raises(CorrespondenceError):
            check_same_structure(resettable_counter(), pipelined_logic())

    def test_correspondence_requires_same_structure(self):
        with pytest.raises(CorrespondenceError):
            FaultCorrespondence(resettable_counter(), pipelined_logic())


class TestFig1Correspondence:
    """The paper's worked list of corresponding faults for Fig. 1(a)."""

    @pytest.fixture()
    def pair(self):
        k1, k2, _ = fig1_gate_pair()
        return k1, k2, FaultCorrespondence(k1, k2)

    def test_input_edge_faults_merge(self, pair):
        k1, k2, correspondence = pair
        # In K1 the I1 edge has weight 1 (lines I1-Q0 and Q0-G); in K2 it
        # has weight 0 (single line I1-G).  Both K1 faults correspond to
        # the one K2 fault and vice versa.
        i1_edge = next(e for e in k1.edges if e.source == "I1")
        fault_k2 = StuckAtFault(LineRef(i1_edge.index, 1), 0)
        originals = correspondence.originals_of(fault_k2)
        assert len(originals) == 2
        assert {f.line.segment for f in originals} == {1, 2}

    def test_output_edge_faults_split(self, pair):
        k1, k2, correspondence = pair
        g_edge = next(e for e in k2.edges if e.source == "G")
        assert g_edge.weight == 1  # the register moved here
        fault_k1 = StuckAtFault(LineRef(g_edge.index, 1), 1)
        retimed = correspondence.retimed_of(fault_k1)
        assert len(retimed) == 2

    def test_canonical_maps_round_trip_on_unchanged_edges(self, pair):
        k1, k2, correspondence = pair
        for fault in full_fault_universe(k2):
            if correspondence.is_one_to_one(fault):
                back = correspondence.to_original(fault)
                assert correspondence.to_retimed(back) == fault

    def test_every_retimed_fault_has_a_correspondent(self, pair):
        """Section IV-B: at least one corresponding original fault."""
        k1, k2, correspondence = pair
        for fault in full_fault_universe(k2):
            assert correspondence.originals_of(fault)

    def test_bad_fault_rejected(self, pair):
        _, k2, correspondence = pair
        with pytest.raises(ValueError):
            correspondence.to_original(StuckAtFault(LineRef(99, 1), 0))


class TestFig5Correspondence:
    def test_g1_q12_fault_class(self):
        n1, n2, _ = fig5_pair()
        correspondence = FaultCorrespondence(n1, n2)
        edge = g1_g2_edge(n2)
        # N2's G1->G2 edge has two lines; both correspond to N1's single
        # G1-G2 line (same value).
        for segment in (1, 2):
            fault = StuckAtFault(LineRef(edge, segment), 1)
            originals = correspondence.originals_of(fault)
            assert originals == [StuckAtFault(LineRef(edge, 1), 1)]

    def test_modified_edges_are_exactly_the_moved_ones(self):
        n1, n2, retiming = fig5_pair()
        correspondence = FaultCorrespondence(n1, n2)
        modified = set(correspondence.modified_edges())
        expected = {
            e.index
            for e, w in zip(n1.edges, retiming.retimed_weights())
            if e.weight != w
        }
        assert modified == expected


class TestRandomRetimings:
    @pytest.mark.parametrize("seed", range(4))
    def test_universe_preserved_outside_modified_region(self, seed):
        circuit = random_circuit(seed + 4000, num_gates=9, num_dffs=3)
        retiming = min_register_retiming(circuit).retiming
        retimed = retiming.apply()
        correspondence = FaultCorrespondence(circuit, retimed)
        modified = set(correspondence.modified_edges())
        for fault in full_fault_universe(retimed):
            if fault.line.edge_index not in modified:
                assert correspondence.originals_of(fault) == [fault]
