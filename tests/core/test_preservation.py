"""Tests for the preservation API: Theorem 4 verified empirically."""

import random

import pytest

from repro.atpg import AtpgBudget, run_atpg
from repro.core import (
    derive_test_set,
    preservation_plan,
    verify_preservation,
)
from repro.papercircuits import fig3_pair, fig5_pair
from repro.retiming import Retiming, min_register_retiming, performance_retiming
from repro.testset import TestSet

from tests.helpers import random_circuit, resettable_counter


def _atpg_test_set(circuit, seconds=8.0):
    result = run_atpg(
        circuit,
        budget=AtpgBudget(
            total_seconds=seconds, random_sequences=24, random_length=24
        ),
    )
    return result.test_set


class TestPreservationPlan:
    def test_fig5_plan(self):
        n1, n2, retiming = fig5_pair()
        plan = preservation_plan(retiming, n2)
        assert plan.prefix_length_tests == 1  # one forward gate move
        assert plan.prefix_length_sync == 0  # no stem moves
        assert plan.forward_moves == 1
        assert "prefix |P| = 1" in plan.describe()

    def test_fig3_plan(self):
        l1, l2, retiming = fig3_pair()
        plan = preservation_plan(retiming, l2)
        assert plan.prefix_length_tests == 1
        assert plan.prefix_length_sync == 1  # the move is across a stem
        assert plan.time_equivalence_bound == 1

    def test_identity_plan(self):
        circuit = resettable_counter()
        plan = preservation_plan(Retiming(circuit, {}))
        assert plan.prefix_length_tests == 0
        assert plan.time_equivalence_bound == 0


class TestDeriveTestSet:
    def test_no_forward_moves_no_prefix(self):
        circuit = resettable_counter()
        test_set = TestSet.from_lists(circuit.name, 2, [[(1, 0), (0, 1)]])
        derived = derive_test_set(test_set, Retiming(circuit, {}))
        assert derived is test_set

    def test_prefix_added_per_sequence(self):
        n1, _, retiming = fig5_pair()
        test_set = TestSet.from_lists(n1.name, 3, [[(0, 0, 1)], [(1, 1, 1)] * 2])
        derived = derive_test_set(test_set, retiming)
        assert derived.num_sequences == 2
        assert all(
            len(d) == len(o) + 1
            for d, o in zip(derived.sequences, test_set.sequences)
        )

    def test_random_prefix_allowed(self):
        n1, _, retiming = fig5_pair()
        test_set = TestSet.from_lists(n1.name, 3, [[(0, 0, 1)]])
        derived = derive_test_set(test_set, retiming, rng=random.Random(7))
        assert derived.num_vectors == 2


class TestVerifyPreservation:
    def test_fig5_holds(self):
        """Theorem 4 on the Fig. 5 pair with a real ATPG test set."""
        n1, n2, retiming = fig5_pair()
        test_set = _atpg_test_set(n1)
        report = verify_preservation(n1, retiming, test_set, retimed=n2)
        assert report.holds, [f.describe(n2) for f in report.missed]

    def test_fig3_holds(self):
        l1, l2, retiming = fig3_pair()
        test_set = _atpg_test_set(l1)
        report = verify_preservation(l1, retiming, test_set, retimed=l2)
        assert report.holds, [f.describe(l2) for f in report.missed]

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits_minregister(self, seed):
        """Theorem 4 across min-register retimings of random circuits."""
        circuit = random_circuit(
            seed + 300, num_inputs=3, num_gates=9, num_dffs=3
        )
        retiming = min_register_retiming(circuit).retiming
        test_set = _atpg_test_set(circuit, seconds=5.0)
        report = verify_preservation(circuit, retiming, test_set)
        assert report.holds, [
            f.describe(retiming.apply()) for f in report.missed
        ]

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits_performance_retiming(self, seed):
        circuit = random_circuit(
            seed + 400, num_inputs=3, num_gates=9, num_dffs=3
        )
        result = performance_retiming(circuit, backward_passes=1)
        test_set = _atpg_test_set(circuit, seconds=5.0)
        report = verify_preservation(
            circuit, result.retiming, test_set, retimed=result.retimed_circuit
        )
        assert report.holds, [
            f.describe(result.retimed_circuit) for f in report.missed
        ]

    def test_counterexample_without_prefix(self):
        """Dropping the prefix breaks preservation on the Fig. 5 pair."""
        from repro.faults import collapse_faults
        from repro.faultsim import fault_simulate
        from repro.papercircuits import EXAMPLE4_TEST, n2_g1_q12_fault

        n1, n2, retiming = fig5_pair()
        test_set = TestSet.from_lists(n1.name, 3, [EXAMPLE4_TEST])
        # Without the prefix, the corresponding fault escapes.
        bare = fault_simulate(n2, test_set.as_lists(), [n2_g1_q12_fault(n2)])
        assert bare.num_detected == 0
        derived = derive_test_set(test_set, retiming)
        fixed = fault_simulate(n2, derived.as_lists(), [n2_g1_q12_fault(n2)])
        assert fixed.num_detected == 1
