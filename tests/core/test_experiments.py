"""Tests for the experiment drivers (Tables II/III plumbing) and the flow."""

import pytest

from repro.atpg import AtpgBudget
from repro.core import (
    TABLE2_CIRCUITS,
    build_pair,
    format_table,
    retime_for_testability_flow,
    table2_row,
    table3_row,
)
from repro.core.experiments import CircuitSpec

TINY = AtpgBudget(
    total_seconds=20.0,
    seconds_per_fault=0.2,
    backtracks_per_fault=30,
    max_frames=6,
    random_sequences=24,
    random_length=48,
    random_stale_limit=8,
)


class TestCircuitSpecs:
    def test_sixteen_paper_variants(self):
        assert len(TABLE2_CIRCUITS) == 16
        names = {spec.name for spec in TABLE2_CIRCUITS}
        # The three forward-move circuits the paper names in Section V.C.
        forward = {s.name for s in TABLE2_CIRCUITS if s.forward_stem_moves}
        assert forward == {"pma.jo.sd", "s510.jc.sd", "scf.jo.sd"}
        assert "s510.jo.sr" in names

    def test_build_pair_shapes(self):
        spec = CircuitSpec("s820", "jc", "rugged", 0)
        pair = build_pair(spec)
        assert pair.original.num_registers() == 5
        assert pair.retimed.num_registers() >= 10
        assert pair.prefix_length == 0
        assert pair.retiming.is_legal()

    def test_build_pair_forward_move(self):
        spec = CircuitSpec("pma", "jo", "delay", 1)
        pair = build_pair(spec)
        assert pair.prefix_length == 1
        assert pair.retiming.max_forward_moves_across_stems() == 1

    def test_pair_cache(self):
        spec = CircuitSpec("s820", "jc", "rugged", 0)
        assert build_pair(spec) is build_pair(spec)


class TestRows:
    @pytest.fixture(scope="class")
    def pair(self):
        return build_pair(CircuitSpec("s820", "jc", "rugged", 0))

    def test_table2_row_structure(self, pair):
        row, original_result, retimed_result = table2_row(pair, TINY)
        assert row["Circuit"] == "s820.jc.sr"
        assert row["#DFF"] == 5
        assert row["#DFF.re"] == pair.retimed.num_registers()
        assert 0 <= row["%FC"] <= row["%FE"] <= 100
        assert row["CPU"] > 0 and row["CPU.re"] > 0
        assert original_result.test_set.num_sequences >= 1

    def test_table3_row_structure(self, pair):
        from repro.atpg import run_atpg

        atpg = run_atpg(pair.original, budget=TINY)
        row = table3_row(pair, atpg.test_set)
        assert row["#Faults.re"] > row["#Faults"]
        assert row["#UnDet"] >= 0
        assert row["prefix"] == 0


class TestFlow:
    def test_flow_on_small_retimed_circuit(self):
        from repro.retiming import performance_retiming
        from tests.helpers import resettable_counter

        hard = performance_retiming(
            resettable_counter(), backward_passes=1
        ).retimed_circuit
        flow = retime_for_testability_flow(hard, budget=TINY)
        assert flow.easy_circuit.num_registers() <= hard.num_registers()
        # Coverage transfers (both sides may leave the 3 undetectable
        # reset-path faults).
        assert flow.hard_coverage >= flow.easy_coverage - 15.0
        assert "flow" in flow.summary()


class TestFormatting:
    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        text = format_table(rows, ["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]
        assert "2.5" in text and "0.2" in text

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}], ["a", "b"])
        assert text
