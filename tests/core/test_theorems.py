"""Randomized verification of Theorems 1-3 on synthesized retimings.

These tests exercise the theorem statements end to end: find synchronizing
sequences on random small circuits, retime with random legal labels, and
check the paper's preservation claims on the actual state spaces.
"""

import itertools
import random

import pytest

from repro.equivalence import (
    extract_stg,
    functional_final_states,
    is_functional_sync_sequence,
    classify,
    find_structural_sync_sequence,
    states_equivalent,
)
from repro.retiming import Retiming, movable_nodes
from repro.retiming.prefix import prefix_length_for_sync, prefix_length_for_tests
from repro.simulation import SequentialSimulator

from tests.helpers import (
    random_circuit,
    resettable_counter,
    resettable_random_circuit,
)


def _random_legal_retiming(circuit, rng, attempts=400):
    """A non-trivial legal retiming: random sampling with a fallback to
    the engines' retimings (always legal)."""
    nodes = movable_nodes(circuit)
    for _ in range(attempts):
        labels = {
            name: rng.choice((-1, 0, 1)) for name in nodes if rng.random() < 0.4
        }
        retiming = Retiming(circuit, labels)
        if retiming.is_legal() and not retiming.is_identity():
            return retiming
    from repro.retiming import backward_cut_retiming, min_register_retiming

    for candidate in (
        backward_cut_retiming(circuit),
        min_register_retiming(circuit).retiming,
    ):
        if candidate.is_legal() and not candidate.is_identity():
            return candidate
    return None


class TestTheorem1:
    """Structural sync sequences are preserved on retimed circuits."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_retimings(self, seed):
        circuit = resettable_random_circuit(
            seed + 3000, num_inputs=2, num_gates=8, num_dffs=3
        )
        sequence = find_structural_sync_sequence(circuit, max_length=6)
        if sequence is None or not sequence:
            pytest.skip("circuit not structurally synchronizable")
        rng = random.Random(seed)
        retiming = _random_legal_retiming(circuit, rng)
        if retiming is None:
            pytest.skip("no non-trivial legal retiming found")
        retimed = retiming.apply()
        if retimed.num_registers() > 10:
            pytest.skip("retimed state space too large for the check")
        sim = SequentialSimulator(retimed)
        # The theorem's notion of synchronization: leftover X bits are
        # allowed when the covered states are all equivalent (retiming
        # can park registers behind blocking logic).
        from repro.equivalence import covered_states, synchronizes_up_to_equivalence

        assert synchronizes_up_to_equivalence(retimed, sequence), retiming.labels
        # ... and to a state equivalent to the original's (pick any
        # covered representative).
        if retimed.num_registers() <= 8:
            final_original = SequentialSimulator(circuit).run(sequence).final_state
            final_retimed = sim.run(sequence).final_state
            representative = covered_states(final_retimed)[0]
            assert states_equivalent(
                extract_stg(circuit),
                final_original,
                extract_stg(retimed),
                representative,
            )


class TestTheorem2:
    """Functional sync sequences survive with an F_stem-vector prefix."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_retimings(self, seed):
        circuit = resettable_random_circuit(
            seed + 3100, num_inputs=1, num_gates=6, num_dffs=2
        )
        stg = extract_stg(circuit)
        classification = classify([stg])
        from repro.equivalence import find_functional_sync_sequence

        sequence = find_functional_sync_sequence(
            stg, max_length=6, classification=classification
        )
        if not sequence:
            pytest.skip("circuit not functionally synchronizable")
        rng = random.Random(seed)
        retiming = _random_legal_retiming(circuit, rng)
        if retiming is None or retiming.apply().num_registers() > 8:
            pytest.skip("no usable retiming")
        retimed = retiming.apply()
        stg_retimed = extract_stg(retimed)
        prefix_length = prefix_length_for_sync(retiming)
        # Theorem 2: EVERY prefix of the prescribed length works.
        width = len(circuit.input_names)
        prefixes = (
            [[]]
            if prefix_length == 0
            else [
                list(p)
                for p in itertools.product(
                    list(itertools.product((0, 1), repeat=width)),
                    repeat=prefix_length,
                )
            ]
        )
        for prefix in prefixes:
            full = list(prefix) + list(sequence)
            assert is_functional_sync_sequence(stg_retimed, full), (
                retiming.labels,
                prefix,
            )


class TestTheorem3:
    """Faulty-machine sync survives with an F-vector prefix.

    Theorem 3 guarantees, for every retimed fault, *some* corresponding
    original fault whose synchronizing sequences lift; and the lifted
    guarantee is functional (the paper synchronizes "to an equivalent
    state" on the state graph -- three-valued simulation may be too weak
    to see it).  We test the one-to-one region, where the correspondent is
    unique: any sync sequence of the faulty original, prefixed with F
    arbitrary vectors, must functionally synchronize the faulty retimed
    machine.
    """

    @pytest.mark.parametrize("seed", range(6))
    def test_one_to_one_faults(self, seed):
        from repro.faults import FaultCorrespondence, full_fault_universe

        circuit = resettable_random_circuit(
            seed + 3200, num_inputs=1, num_gates=6, num_dffs=2
        )
        rng = random.Random(seed)
        retiming = _random_legal_retiming(circuit, rng)
        if retiming is None or retiming.apply().num_registers() > 8:
            pytest.skip("no usable retiming")
        retimed = retiming.apply()
        prefix_length = prefix_length_for_tests(retiming)
        prefix = [(0,) * len(circuit.input_names)] * prefix_length
        correspondence = FaultCorrespondence(circuit, retimed)

        checked = 0
        candidates = [
            f
            for f in full_fault_universe(retimed)
            if correspondence.is_one_to_one(f)
        ]
        for fault in rng.sample(candidates, min(8, len(candidates))):
            sequence = _faulty_sync_sequence(circuit, fault, max_length=6)
            if sequence is None:
                continue
            checked += 1
            from repro.equivalence import (
                extract_stg,
                is_functional_sync_sequence,
            )

            stg_faulty_retimed = extract_stg(retimed, fault=fault)
            assert is_functional_sync_sequence(
                stg_faulty_retimed, prefix + sequence
            ), (fault, retiming.labels)
        if checked == 0:
            pytest.skip("no synchronizable faulty machines sampled")


def _faulty_sync_sequence(circuit, fault, max_length=5):
    """A short structural sync sequence for the faulty machine, if any."""
    from collections import deque

    from repro.equivalence.explicit import all_vectors
    from repro.logic.three_valued import X

    sim = SequentialSimulator(circuit, fault=fault)
    start = sim.unknown_state()
    if X not in start:
        return []
    seen = {start}
    queue = deque([(start, [])])
    alphabet = all_vectors(len(circuit.input_names))
    while queue:
        state, path = queue.popleft()
        if len(path) >= max_length:
            continue
        for vector in alphabet:
            nxt = sim.step(state, vector).next_state
            if X not in nxt:
                return path + [vector]
            if nxt not in seen and len(seen) < 20000:
                seen.add(nxt)
                queue.append((nxt, path + [vector]))
    return None
