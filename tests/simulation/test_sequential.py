"""Tests for the scalar three-valued sequential simulator."""

import pytest

from repro.circuit import CircuitBuilder, LineRef
from repro.logic.three_valued import ONE, X, ZERO
from repro.simulation import SequentialSimulator, simulate

from tests.helpers import feedback_and, shift_register, toggle_counter


class TestCombinationalBehaviour:
    def test_and_gate(self):
        builder = CircuitBuilder("c")
        builder.input("a")
        builder.input("b")
        builder.and_("g", "a", "b")
        builder.output("z", "g")
        circuit = builder.build()
        sim = SequentialSimulator(circuit)
        state = sim.unknown_state()
        for a, b, expect in [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)]:
            assert sim.step(state, (a, b)).outputs == (expect,)

    def test_unknown_propagation(self):
        builder = CircuitBuilder("c")
        builder.input("a")
        builder.input("b")
        builder.or_("g", "a", "b")
        builder.output("z", "g")
        circuit = builder.build()
        sim = SequentialSimulator(circuit)
        state = sim.unknown_state()
        assert sim.step(state, (X, ZERO)).outputs == (X,)
        assert sim.step(state, (X, ONE)).outputs == (ONE,)


class TestSequentialBehaviour:
    def test_shift_register_delays(self):
        circuit = shift_register(depth=3)
        trace = simulate(circuit, [(1,), (0,), (1,), (1,), (0,), (0,)])
        # Output is the input delayed by 3; first 3 cycles observe X.
        assert [o[0] for o in trace.outputs] == [X, X, X, 1, 0, 1]

    def test_toggle_counter_counts(self):
        circuit = toggle_counter()
        sim = SequentialSimulator(circuit)
        state = sim.state_from_string("00")
        seen = []
        for _ in range(5):
            result = sim.step(state, (1,))
            seen.append(result.outputs)
            state = result.next_state
        # Outputs observe the *current* state (q0, q1) each cycle.
        assert seen == [(0, 0), (1, 0), (0, 1), (1, 1), (0, 0)]

    def test_counter_hold(self):
        circuit = toggle_counter()
        sim = SequentialSimulator(circuit)
        state = sim.state_from_string("10")
        result = sim.step(state, (0,))
        assert result.next_state == state

    def test_feedback_and_synchronizes_with_zero(self):
        circuit = feedback_and()
        sim = SequentialSimulator(circuit)
        # a=0 forces g1=0 regardless of q: structural synchronization.
        assert sim.is_synchronizing([(0,)])
        # a=1 leaves g1 = X AND 1 = X: not synchronizing.
        assert not sim.is_synchronizing([(1,)])

    def test_trace_shapes(self):
        circuit = toggle_counter()
        trace = simulate(circuit, [(1,), (1,)])
        assert len(trace.states) == 3
        assert len(trace.outputs) == 2
        assert trace.final_state == trace.states[-1]


class TestFaultInjection:
    def test_output_line_stuck(self):
        builder = CircuitBuilder("c")
        builder.input("a")
        builder.buf("g", "a")
        builder.output("z", "g")
        circuit = builder.build()
        # Edge g -> z is the last edge; find it.
        po_edge = circuit.in_edges("z")[0]
        sim = SequentialSimulator(circuit, fault=(LineRef(po_edge.index, 1), ZERO))
        assert sim.step(sim.unknown_state(), (1,)).outputs == (ZERO,)

    def test_branch_fault_is_local(self):
        builder = CircuitBuilder("c")
        builder.input("a")
        builder.buf("g", "a")
        builder.output("z1", "g")
        builder.output("z2", "g")
        circuit = builder.build()
        stem = circuit.fanout_stems()[0]
        branch_to_z1 = next(
            e for e in circuit.out_edges(stem.name) if e.sink == "z1"
        )
        sim = SequentialSimulator(circuit, fault=(LineRef(branch_to_z1.index, 1), ZERO))
        outputs = sim.step(sim.unknown_state(), (1,)).outputs
        z1_pos = circuit.output_names.index("z1")
        z2_pos = circuit.output_names.index("z2")
        assert outputs[z1_pos] == ZERO
        assert outputs[z2_pos] == ONE

    def test_stem_fault_is_global(self):
        builder = CircuitBuilder("c")
        builder.input("a")
        builder.buf("g", "a")
        builder.output("z1", "g")
        builder.output("z2", "g")
        circuit = builder.build()
        stem = circuit.fanout_stems()[0]
        stem_in = circuit.in_edges(stem.name)[0]
        sim = SequentialSimulator(circuit, fault=(LineRef(stem_in.index, 1), ZERO))
        outputs = sim.step(sim.unknown_state(), (1,)).outputs
        assert outputs == (ZERO, ZERO)

    def test_fault_before_vs_after_register(self):
        circuit = shift_register(depth=1)
        chain_edge = circuit.in_edges("zbuf")[0]
        assert chain_edge.weight == 1
        # Segment 1: between input and register -- effect appears one cycle later.
        sim_before = SequentialSimulator(
            circuit, fault=(LineRef(chain_edge.index, 1), ONE)
        )
        trace = sim_before.run([(0,), (0,)], state=(0,))
        assert [o[0] for o in trace.outputs] == [0, 1]
        # Segment 2: between register and buffer -- effect is immediate.
        sim_after = SequentialSimulator(
            circuit, fault=(LineRef(chain_edge.index, 2), ONE)
        )
        trace = sim_after.run([(0,), (0,)], state=(0,))
        assert [o[0] for o in trace.outputs] == [1, 1]

    def test_fault_on_missing_line_rejected(self):
        circuit = shift_register(depth=1)
        chain_edge = circuit.in_edges("zbuf")[0]
        with pytest.raises(ValueError):
            SequentialSimulator(circuit, fault=(LineRef(chain_edge.index, 5), ONE))

    def test_stuck_value_must_be_binary(self):
        circuit = feedback_and()
        with pytest.raises(ValueError):
            SequentialSimulator(circuit, fault=(LineRef(0, 1), X))


class TestValidation:
    def test_vector_length_checked(self):
        circuit = toggle_counter()
        sim = SequentialSimulator(circuit)
        with pytest.raises(ValueError):
            sim.step(sim.unknown_state(), (1, 0))

    def test_state_length_checked(self):
        circuit = toggle_counter()
        sim = SequentialSimulator(circuit)
        with pytest.raises(ValueError):
            sim.step((X,), (1,))

    def test_state_from_string_length(self):
        circuit = toggle_counter()
        sim = SequentialSimulator(circuit)
        with pytest.raises(ValueError):
            sim.state_from_string("0")
