"""Tests for the compiled-circuit lowering shared by all simulators."""

from repro.circuit import LineRef, NodeKind
from repro.simulation import CompiledCircuit

from tests.helpers import pipelined_logic, shift_register


class TestCompiledCircuit:
    def test_slots_cover_all_nodes(self):
        circuit = pipelined_logic()
        compiled = CompiledCircuit(circuit)
        assert compiled.num_slots == len(circuit.nodes)
        assert len(compiled.ops) == len(circuit.nodes)

    def test_register_layout_matches_circuit(self):
        circuit = pipelined_logic()
        compiled = CompiledCircuit(circuit)
        assert compiled.register_refs == circuit.registers()
        assert len(compiled.register_loads) == circuit.num_registers()

    def test_reads_are_line_tagged(self):
        circuit = shift_register(depth=2)
        compiled = CompiledCircuit(circuit)
        chain_edge = circuit.in_edges("zbuf")[0]
        # The buffer reads the sink-side line of the weight-2 edge.
        buf_op = next(
            op for op in compiled.ops if op.kind is NodeKind.GATE
        )
        assert buf_op.reads[0].line == LineRef(chain_edge.index, 3)
        assert buf_op.reads[0].from_register

    def test_register_loads_read_upstream_lines(self):
        circuit = shift_register(depth=2)
        compiled = CompiledCircuit(circuit)
        chain_edge = circuit.in_edges("zbuf")[0]
        loads = {
            ref: read
            for ref, read in zip(compiled.register_refs, compiled.register_loads)
        }
        from repro.circuit import RegisterRef

        first = loads[RegisterRef(chain_edge.index, 1)]
        second = loads[RegisterRef(chain_edge.index, 2)]
        assert first.line == LineRef(chain_edge.index, 1)
        assert not first.from_register
        assert second.line == LineRef(chain_edge.index, 2)
        assert second.from_register

    def test_line_consumer_reads_total(self):
        circuit = pipelined_logic()
        compiled = CompiledCircuit(circuit)
        consumers = compiled.line_consumer_reads()
        # Every consumed line has at least one consumer entry; the PO line
        # appears both as the OUTPUT op read and as the output observation.
        assert consumers
        for line, entries in consumers.items():
            assert entries
            edge = circuit.edge(line.edge_index)
            assert 1 <= line.segment <= edge.num_lines
