"""Cross-checks of the code-generated stepper against the reference simulator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import full_fault_universe
from repro.simulation import SequentialSimulator
from repro.simulation.codegen import FastStepper

from tests.helpers import (
    feedback_and,
    pipelined_logic,
    random_circuit,
    resettable_counter,
    toggle_counter,
)


def _agree(circuit, fault, seed, cycles=8):
    rng = random.Random(seed)
    reference = SequentialSimulator(circuit, fault=fault)
    fast = FastStepper(circuit, fault=fault)
    state = reference.unknown_state()
    for _ in range(cycles):
        vector = tuple(rng.choice((0, 1, 2)) for _ in circuit.input_names)
        ref = reference.step(state, vector)
        outputs, next_state, values = fast.step(state, vector)
        assert outputs == ref.outputs
        assert next_state == ref.next_state
        assert values == tuple(ref.node_values)
        state = ref.next_state


class TestFaultFree:
    @pytest.mark.parametrize(
        "factory",
        [feedback_and, toggle_counter, resettable_counter, pipelined_logic],
    )
    def test_fixed_circuits(self, factory):
        _agree(factory(), None, seed=3)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_circuits(self, seed):
        circuit = random_circuit(seed + 700, num_inputs=3, num_gates=14, num_dffs=4)
        _agree(circuit, None, seed=seed)


class TestWithFaults:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_faults(self, seed):
        circuit = random_circuit(seed + 800, num_inputs=3, num_gates=12, num_dffs=3)
        rng = random.Random(seed)
        faults = full_fault_universe(circuit)
        for fault in rng.sample(faults, min(8, len(faults))):
            _agree(circuit, fault, seed=seed + 1)

    def test_every_fault_site_on_small_circuit(self):
        circuit = resettable_counter()
        for fault in full_fault_universe(circuit):
            _agree(circuit, fault, seed=11, cycles=4)


class TestConvenience:
    def test_run_matches_reference(self):
        circuit = resettable_counter()
        fast = FastStepper(circuit)
        reference = SequentialSimulator(circuit)
        vectors = [(1, 0), (0, 1), (1, 1), (0, 0)]
        outputs, final = fast.run(vectors)
        trace = reference.run(vectors)
        assert tuple(outputs) == trace.outputs
        assert final == trace.final_state

    def test_unknown_state(self):
        fast = FastStepper(resettable_counter())
        assert fast.unknown_state() == (2, 2)

    def test_source_is_valid_python(self):
        fast = FastStepper(resettable_counter())
        assert "def step(state, vector):" in fast._source
