"""Cross-checks of the code-generated dual-machine PODEM kernel.

The compiled ``step_dual`` must be bit-for-bit identical, lane by lane, to
a pair of scalar steppers: the fault-free :class:`FastStepper` for the good
plane and a per-fault :class:`FastStepper` for the faulty plane.  The
derived verdict masks (``det``/``vdiff``/``sdiff``/``same``) must equal the
scans the scalar PODEM engine performs over those tuples.
"""

import random

import pytest

from repro.faults import collapse_faults
from repro.logic.three_valued import ONE, X, ZERO
from repro.simulation.codegen import FastStepper
from repro.simulation.dual_codegen import DualFastStepper, plane_pair_trit

from tests.helpers import pipelined_logic, random_circuit, toggle_counter


def _random_trit(rng, x_bias=0.4):
    roll = rng.random()
    if roll < x_bias:
        return X
    return ONE if roll < x_bias + (1.0 - x_bias) / 2 else ZERO


def _lane_tuple(values, cares, lane):
    bit = 1 << lane
    return tuple(
        ((ONE if value & bit else ZERO) if care & bit else X)
        for value, care in zip(values, cares)
    )


def _state_lane(pairs, lane):
    return tuple(plane_pair_trit(pair, lane) for pair in pairs)


def _pack_states(states):
    """Pack one scalar register state per lane into plane pairs."""
    packed = []
    for regs in zip(*states):
        value = 0
        care = 0
        for lane, trit in enumerate(regs):
            if trit == ONE:
                value |= 1 << lane
                care |= 1 << lane
            elif trit == ZERO:
                care |= 1 << lane
        packed.append((value, care))
    return tuple(packed)


def _scalar_verdicts(circuit, good, bad):
    """(det, vdiff, sdiff, same) recomputed from the scalar step results."""
    good_out, good_next, good_vals = good
    bad_out, bad_next, bad_vals = bad
    det = any(
        g != X and b != X and g != b for g, b in zip(good_out, bad_out)
    )
    vdiff = any(
        g != X and b != X and g != b for g, b in zip(good_vals, bad_vals)
    )
    sdiff = any(
        g != X and b != X and g != b for g, b in zip(good_next, bad_next)
    )
    same = all(
        g != X and b != X and g == b for g, b in zip(good_next, bad_next)
    )
    return det, vdiff, sdiff, same


class TestSingleLaneAgainstScalar:
    @pytest.mark.parametrize("seed", range(8))
    def test_trajectories_and_verdicts(self, seed):
        circuit = random_circuit(seed, num_inputs=3, num_gates=16, num_dffs=3)
        faults = collapse_faults(circuit).representatives
        rng = random.Random(seed * 7 + 1)
        dual = DualFastStepper(circuit)
        good_step = FastStepper(circuit, compiled=dual.compiled).step
        for fault in faults[:10]:
            faulty_step = FastStepper(
                circuit, fault=fault, compiled=dual.compiled
            ).step
            sa1, sa0 = dual.injection_masks(fault, width=1)
            good_state = (X,) * circuit.num_registers()
            bad_state = good_state
            dual_good = dual.unknown_state()
            dual_bad = dual.unknown_state()
            for _ in range(6):
                vector = tuple(
                    _random_trit(rng) for _ in circuit.input_names
                )
                good = good_step(good_state, vector)
                bad = faulty_step(bad_state, vector)
                record = dual.step_dual(
                    dual_good,
                    dual_bad,
                    dual.broadcast_vector(vector, width=1),
                    1,
                    sa1,
                    sa0,
                )
                gv, gc, bv, bc, gn, bn, det, vdiff, sdiff, same = record
                assert _lane_tuple(gv, gc, 0) == tuple(good[2])
                assert _lane_tuple(bv, bc, 0) == tuple(bad[2])
                assert _state_lane(gn, 0) == tuple(good[1])
                assert _state_lane(bn, 0) == tuple(bad[1])
                ref = _scalar_verdicts(circuit, good, bad)
                assert (
                    bool(det & 1),
                    bool(vdiff & 1),
                    bool(sdiff & 1),
                    bool(same & 1),
                ) == ref
                good_state = tuple(good[1])
                bad_state = tuple(bad[1])
                dual_good = gn
                dual_bad = bn

    def test_plane_invariant_holds(self):
        circuit = toggle_counter()
        fault = collapse_faults(circuit).representatives[0]
        dual = DualFastStepper(circuit)
        sa1, sa0 = dual.injection_masks(fault, width=2)
        rng = random.Random(3)
        state_good = dual.unknown_state()
        state_bad = dual.unknown_state()
        for _ in range(8):
            vectors = [
                [_random_trit(rng) for _ in circuit.input_names]
                for _ in range(2)
            ]
            record = dual.step_dual(
                state_good, state_bad, dual.pack_vectors(vectors), 3, sa1, sa0
            )
            gv, gc, bv, bc, gn, bn = record[:6]
            for values, cares in ((gv, gc), (bv, bc)):
                for value, care in zip(values, cares):
                    assert value & ~care == 0
            for pairs in (gn, bn):
                for value, care in pairs:
                    assert value & ~care == 0
            state_good, state_bad = gn, bn


class TestMultiLane:
    @pytest.mark.parametrize("seed", range(4))
    def test_lanes_are_independent_scalar_runs(self, seed):
        """Each packed lane must reproduce its own scalar trajectory."""
        circuit = random_circuit(
            seed + 50, num_inputs=3, num_gates=14, num_dffs=3
        )
        fault = collapse_faults(circuit).representatives[seed % 4]
        width = 4
        rng = random.Random(seed)
        dual = DualFastStepper(circuit)
        good_step = FastStepper(circuit, compiled=dual.compiled).step
        faulty_step = FastStepper(
            circuit, fault=fault, compiled=dual.compiled
        ).step
        sa1, sa0 = dual.injection_masks(fault, width=width)
        scalar_good = [(X,) * circuit.num_registers() for _ in range(width)]
        scalar_bad = list(scalar_good)
        for _ in range(5):
            vectors = [
                [_random_trit(rng) for _ in circuit.input_names]
                for _ in range(width)
            ]
            record = dual.step_dual(
                _pack_states(scalar_good),
                _pack_states(scalar_bad),
                dual.pack_vectors(vectors),
                (1 << width) - 1,
                sa1,
                sa0,
            )
            for lane in range(width):
                good = good_step(scalar_good[lane], tuple(vectors[lane]))
                bad = faulty_step(scalar_bad[lane], tuple(vectors[lane]))
                assert _lane_tuple(record[0], record[1], lane) == tuple(good[2])
                assert _lane_tuple(record[2], record[3], lane) == tuple(bad[2])
                det, vdiff, sdiff, same = _scalar_verdicts(circuit, good, bad)
                assert bool((record[6] >> lane) & 1) == det
                assert bool((record[7] >> lane) & 1) == vdiff
                assert bool((record[8] >> lane) & 1) == sdiff
                assert bool((record[9] >> lane) & 1) == same
                scalar_good[lane] = tuple(good[1])
                scalar_bad[lane] = tuple(bad[1])


class TestInjectionMasks:
    def test_none_fault_is_all_clear(self):
        dual = DualFastStepper(pipelined_logic())
        sa1, sa0 = dual.injection_masks(None, width=2)
        assert not any(sa1) and not any(sa0)

    def test_single_slot_forced(self):
        circuit = toggle_counter()
        dual = DualFastStepper(circuit)
        fault = collapse_faults(circuit).representatives[0]
        sa1, sa0 = dual.injection_masks(fault, width=2)
        forced = [i for i, v in enumerate(sa1) if v] + [
            i for i, v in enumerate(sa0) if v
        ]
        assert len(forced) == 1
        assert (sa1 + sa0).count(3) == 1  # both lanes forced on that slot
