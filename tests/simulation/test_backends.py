"""Cross-backend parity: the numpy word-plane vs the bigint reference.

Every compiled kernel (fault-simulation vector stepper, PODEM's dual
stepper, the bitset STG extractor) must produce **bit-identical** packed
words on both backends -- the numpy lowering is a speed knob, never a
behaviour knob.  These tests mirror the kernel-parity suite in
``tests/atpg/test_kernel_parity.py``, one backend axis instead of one
kernel axis.
"""

from __future__ import annotations

import random

import pytest

from repro.simulation import backends
from repro.simulation.backends import BACKENDS, resolve_backend
from repro.simulation.cache import dual_fast_stepper, vector_fast_stepper

from tests.helpers import random_circuit, requires_numpy, toggle_counter


@pytest.fixture
def no_numpy(monkeypatch):
    """Make the backend layer behave as if numpy were not installed."""
    monkeypatch.setattr(backends, "_NUMPY", None)
    monkeypatch.setattr(backends, "_NUMPY_CHECKED", True)


class TestBackendPolicy:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("cupy")

    def test_bigint_always_resolves(self, no_numpy):
        assert resolve_backend("bigint") == "bigint"

    def test_auto_falls_back_without_numpy(self, no_numpy):
        assert resolve_backend("auto") == "bigint"

    def test_explicit_numpy_raises_without_numpy(self, no_numpy):
        with pytest.raises(RuntimeError, match=r"\[perf\]"):
            resolve_backend("numpy")

    @requires_numpy
    def test_auto_prefers_numpy_when_available(self):
        assert resolve_backend("auto") == "numpy"

    def test_knob_values_are_closed(self):
        assert set(BACKENDS) == {"auto", "bigint", "numpy"}


@requires_numpy
class TestWordPacking:
    """words_from_int / int_from_words round-trip and mask helpers."""

    @pytest.mark.parametrize("width", [1, 2, 63, 64, 65, 130, 1024])
    def test_round_trip(self, width):
        from repro.simulation.wordplane import (
            int_from_words,
            word_count,
            words_from_int,
        )

        rng = random.Random(width)
        words = word_count(width)
        for _ in range(16):
            value = rng.getrandbits(width)
            assert int_from_words(words_from_int(value, words)) == value

    @pytest.mark.parametrize("width", [1, 64, 65, 192, 1000])
    def test_width_mask(self, width):
        from repro.simulation.wordplane import int_from_words, width_mask_words

        assert int_from_words(width_mask_words(width)) == (1 << width) - 1


def _random_rails(rng, count, width):
    """Random dual-rail (ones, zeros) pairs with disjoint rails."""
    rails = []
    for _ in range(count):
        ones = rng.getrandbits(width)
        zeros = rng.getrandbits(width) & ~ones
        rails.append((ones, zeros))
    return tuple(rails)


def _random_injection(rng, stepper, width):
    """Random per-slot stuck-at masks over a handful of slots."""
    sa1, sa0 = stepper.blank_injection_masks()
    for _ in range(4):
        slot = rng.randrange(stepper.num_injection_slots)
        lanes = rng.getrandbits(width)
        if rng.random() < 0.5:
            sa1[slot] = lanes & ~sa0[slot]
        else:
            sa0[slot] = lanes & ~sa1[slot]
    return sa1, sa0


@requires_numpy
class TestVectorKernelParity:
    """The word-plane runner vs the bigint ``step_clean``/``step_inject``."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("width", [2, 64, 130])
    def test_injected_step_matches_bigint(self, seed, width):
        rng = random.Random(1000 * width + seed)
        circuit = random_circuit(seed + 300, num_inputs=3, num_gates=20, num_dffs=3)
        stepper = vector_fast_stepper(circuit)
        runner = stepper.word_runner(width)
        mask = (1 << width) - 1
        sa1, sa0 = _random_injection(rng, stepper, width)
        runner.set_group(sa1, sa0)
        for _ in range(4):
            state = _random_rails(rng, stepper.compiled.num_registers, width)
            vector = _random_rails(rng, stepper.compiled.num_inputs, width)
            outputs, next_state = stepper.step_inject(state, vector, mask, sa1, sa0)
            runner.load_state_ints(state)
            runner.load_vector_ints(vector)
            runner.step()
            assert tuple(runner.output_ints()) == outputs
            assert tuple(runner.state_ints()) == next_state

    @pytest.mark.parametrize("seed", range(4))
    def test_clean_step_matches_bigint(self, seed):
        width = 96
        rng = random.Random(seed)
        circuit = random_circuit(seed + 330, num_inputs=3, num_gates=18, num_dffs=3)
        stepper = vector_fast_stepper(circuit)
        runner = stepper.word_runner(width)
        runner.clear_group()
        mask = (1 << width) - 1
        state = _random_rails(rng, stepper.compiled.num_registers, width)
        vector = _random_rails(rng, stepper.compiled.num_inputs, width)
        outputs, next_state = stepper.step_clean(state, vector, mask)
        runner.load_state_ints(state)
        runner.load_vector_ints(vector)
        runner.step()
        assert tuple(runner.output_ints()) == outputs
        assert tuple(runner.state_ints()) == next_state

    @pytest.mark.parametrize("seed", range(4))
    def test_set_group_forms_agree(self, seed):
        """Per-lane fault descriptors build the same masks as bigint rails."""
        from repro.faults.collapse import collapse_faults

        width = 64
        circuit = random_circuit(seed + 360, num_inputs=3, num_gates=20, num_dffs=3)
        stepper = vector_fast_stepper(circuit)
        faults = collapse_faults(circuit).representatives[: width - 1]
        sa1, sa0 = stepper.blank_injection_masks()
        slots, values = [], []
        for lane, fault in enumerate(faults, start=1):
            slot = stepper.line_slot[fault.line]
            slots.append(slot)
            values.append(fault.value)
            (sa1 if fault.value else sa0)[slot] |= 1 << lane
        via_ints = stepper.word_runner(width)
        via_ints.set_group(sa1, sa0)
        via_faults = stepper.word_runner(width)
        via_faults.set_group_faults(slots, values)
        assert (via_ints._table == via_faults._table).all()
        assert (via_ints._orm == via_faults._orm).all()
        assert (via_ints._andm == via_faults._andm).all()


@requires_numpy
class TestDualKernelParity:
    """``word_step`` vs the bigint ``step_dual`` of the PODEM kernel."""

    @pytest.mark.parametrize("seed", range(4))
    def test_word_step_matches_bigint(self, seed):
        from repro.faults.collapse import collapse_faults

        rng = random.Random(seed)
        circuit = random_circuit(seed + 400, num_inputs=3, num_gates=16, num_dffs=3)
        stepper = dual_fast_stepper(circuit)
        word_step = stepper.word_step()
        faults = collapse_faults(circuit).representatives
        for width in (1, 2, 7, 64, 130):
            mask = (1 << width) - 1
            fault = faults[rng.randrange(len(faults))]
            sa1, sa0 = stepper.injection_masks(fault, width=width)
            good = _random_rails(rng, stepper.compiled.num_registers, width)
            bad = _random_rails(rng, stepper.compiled.num_registers, width)
            vector = _random_rails(rng, stepper.compiled.num_inputs, width)
            reference = stepper.step_dual(good, bad, vector, mask, sa1, sa0)
            assert word_step(good, bad, vector, mask, sa1, sa0) == reference


@requires_numpy
class TestEngineBackendParity:
    """End-to-end engines: identical results on both backends."""

    @pytest.mark.parametrize("seed", range(3))
    def test_fault_simulation_detections_and_potential(self, seed):
        from repro.faults.collapse import collapse_faults
        from repro.faultsim import fault_simulate

        rng = random.Random(seed)
        circuit = random_circuit(seed + 430, num_inputs=4, num_gates=35, num_dffs=4)
        faults = collapse_faults(circuit).representatives
        sequences = [
            [tuple(rng.getrandbits(1) for _ in range(4)) for _ in range(16)]
            for _ in range(3)
        ]
        reference = fault_simulate(circuit, sequences, faults, backend="bigint")
        candidate = fault_simulate(circuit, sequences, faults, backend="numpy")
        assert candidate.detections == reference.detections
        assert candidate.potential == reference.potential

    @pytest.mark.parametrize("backend", ["bigint", "numpy"])
    def test_sharded_fault_simulation_is_exact(self, backend):
        from repro.faults.collapse import collapse_faults
        from repro.faultsim import fault_simulate
        from repro.faultsim.shard import sharded_fault_simulate

        rng = random.Random(99)
        circuit = random_circuit(901, num_inputs=4, num_gates=40, num_dffs=5)
        faults = collapse_faults(circuit).representatives
        sequences = [
            [tuple(rng.getrandbits(1) for _ in range(4)) for _ in range(16)]
            for _ in range(3)
        ]
        single = fault_simulate(
            circuit, sequences, faults, group_size=16, backend=backend
        )
        sharded = sharded_fault_simulate(
            circuit, sequences, faults, workers=2, group_size=16, backend=backend
        )
        assert sharded.detections == single.detections
        assert sharded.potential == single.potential
        assert sharded.faults == single.faults

    @pytest.mark.parametrize("seed", range(2))
    def test_podem_results_identical(self, seed):
        from repro.atpg.budget import AtpgBudget, EffortMeter
        from repro.atpg.podem import PodemEngine
        from repro.faults.collapse import collapse_faults

        circuit = random_circuit(seed + 460, num_inputs=3, num_gates=18, num_dffs=3)
        faults = collapse_faults(circuit).representatives[:10]
        budget = AtpgBudget(backtracks_per_fault=8, max_frames=4)
        reference = PodemEngine(circuit, kernel="dual", backend="bigint")
        candidate = PodemEngine(circuit, kernel="dual", backend="numpy")
        for fault in faults:
            expected = reference.generate(fault, EffortMeter(budget))
            actual = candidate.generate(fault, EffortMeter(budget))
            assert (actual.detected, actual.sequence, actual.backtracks) == (
                expected.detected,
                expected.sequence,
                expected.backtracks,
            )

    @pytest.mark.parametrize("num_faults", [0, 1, 3])
    def test_bitset_stg_tables_identical(self, num_faults):
        from repro.equivalence.bitset import extract_arrays_bitset
        from repro.equivalence.explicit import all_vectors
        from repro.faults.collapse import collapse_faults

        circuit = toggle_counter()
        faults = collapse_faults(circuit).representatives[:num_faults]
        alphabet = all_vectors(len(circuit.input_names))
        reference = extract_arrays_bitset(circuit, faults, alphabet, backend="bigint")
        candidate = extract_arrays_bitset(circuit, faults, alphabet, backend="numpy")
        assert candidate == reference

    @pytest.mark.parametrize("seed", range(4))
    def test_bitset_stg_tables_identical_random(self, seed):
        from repro.equivalence.bitset import extract_arrays_bitset
        from repro.equivalence.explicit import all_vectors
        from repro.faults.collapse import collapse_faults

        circuit = random_circuit(seed + 480, num_inputs=2, num_gates=20, num_dffs=4)
        faults = collapse_faults(circuit).representatives[:2]
        alphabet = all_vectors(len(circuit.input_names))
        reference = extract_arrays_bitset(circuit, faults, alphabet, backend="bigint")
        candidate = extract_arrays_bitset(circuit, faults, alphabet, backend="numpy")
        assert candidate == reference
