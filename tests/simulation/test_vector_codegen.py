"""Cross-checks of the code-generated bit-parallel kernel.

The compiled kernel must be bit-for-bit identical to the interpreted
``VectorSimulator`` (inject path) and to the scalar reference simulator
(clean path, one pattern per bit position).
"""

import random

import pytest

from repro.faults import collapse_faults
from repro.logic.three_valued import ONE, X, ZERO
from repro.simulation import SequentialSimulator, VectorSimulator
from repro.simulation.vector_codegen import VectorFastStepper, rail_pair_trit

from tests.helpers import (
    pipelined_logic,
    random_circuit,
    resettable_counter,
    toggle_counter,
)


def _group_masks(stepper, faults):
    sa1, sa0 = stepper.blank_injection_masks()
    injections = {}
    for bit, fault in enumerate(faults, start=1):
        slot = stepper.line_slot[fault.line]
        if fault.value == ONE:
            sa1[slot] |= 1 << bit
        else:
            sa0[slot] |= 1 << bit
        a1, a0 = injections.get(fault.line, (0, 0))
        if fault.value == ONE:
            a1 |= 1 << bit
        else:
            a0 |= 1 << bit
        injections[fault.line] = (a1, a0)
    return sa1, sa0, injections


class TestInjectKernel:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_interpreted_simulator(self, seed):
        circuit = random_circuit(seed, num_inputs=3, num_gates=14, num_dffs=3)
        faults = collapse_faults(circuit).representatives[:12]
        width = len(faults) + 1
        mask = (1 << width) - 1
        stepper = VectorFastStepper(circuit)
        sa1, sa0, injections = _group_masks(stepper, faults)
        reference = VectorSimulator(circuit, width, injections)
        rng = random.Random(seed)
        state_ref = reference.unknown_state()
        state_fast = stepper.unknown_state()
        for cycle in range(20):
            vector = [rng.randint(0, 1) for _ in circuit.input_names]
            step = reference.step(state_ref, reference.broadcast_vector(vector))
            state_ref = step.next_state
            outputs, state_fast = stepper.step_inject(
                state_fast, stepper.broadcast_vector(vector, width), mask, sa1, sa0
            )
            for bitvec, pair in zip(step.outputs, outputs):
                assert (bitvec.ones, bitvec.zeros) == pair
            for bitvec, pair in zip(state_ref, state_fast):
                assert (bitvec.ones, bitvec.zeros) == pair

    def test_zero_masks_equal_clean_step(self):
        circuit = pipelined_logic()
        stepper = VectorFastStepper(circuit)
        width = 7
        mask = (1 << width) - 1
        sa1, sa0 = stepper.blank_injection_masks()
        rng = random.Random(3)
        state_c = stepper.unknown_state()
        state_i = stepper.unknown_state()
        for _ in range(12):
            vector = stepper.broadcast_vector(
                [rng.randint(0, 1) for _ in circuit.input_names], width
            )
            out_c, state_c = stepper.step_clean(state_c, vector, mask)
            out_i, state_i = stepper.step_inject(state_i, vector, mask, sa1, sa0)
            assert out_c == out_i
            assert state_c == state_i

    def test_width_agnostic(self):
        """One compiled stepper serves any word width via the mask argument."""
        circuit = resettable_counter()
        stepper = VectorFastStepper(circuit)
        for width in (2, 64, 300):
            mask = (1 << width) - 1
            vector = stepper.broadcast_vector((ONE, ZERO), width)
            outputs, state = stepper.step_clean(
                stepper.unknown_state(), vector, mask
            )
            for ones, zeros in outputs + tuple(state):
                assert ones | zeros <= mask


class TestCleanKernel:
    @pytest.mark.parametrize("seed", range(4))
    def test_pattern_parallel_matches_scalar(self, seed):
        circuit = random_circuit(seed + 30, num_inputs=2, num_gates=10, num_dffs=2)
        stepper = VectorFastStepper(circuit)
        rng = random.Random(seed)
        width = 6
        length = 8
        sequences = [
            [
                tuple(rng.randint(0, 1) for _ in circuit.input_names)
                for _ in range(length)
            ]
            for _ in range(width)
        ]
        traces = [SequentialSimulator(circuit).run(s) for s in sequences]
        mask = (1 << width) - 1
        state = stepper.unknown_state()
        for cycle in range(length):
            packed = stepper.pack_vectors([s[cycle] for s in sequences])
            outputs, state = stepper.step_clean(state, packed, mask)
            for position in range(width):
                got = tuple(rail_pair_trit(pair, position) for pair in outputs)
                assert got == traces[position].outputs[cycle]


class TestApi:
    def test_every_line_has_an_injection_slot(self):
        circuit = pipelined_logic()
        stepper = VectorFastStepper(circuit)
        assert set(stepper.line_slot) == set(circuit.lines())
        assert stepper.num_injection_slots == circuit.num_lines()

    def test_broadcast_vector_validates_length(self):
        stepper = VectorFastStepper(toggle_counter())  # 1 input
        with pytest.raises(ValueError):
            stepper.broadcast_vector((ONE, ZERO), 4)

    def test_pack_vectors_validates_trit_counts(self):
        stepper = VectorFastStepper(resettable_counter())  # 2 inputs
        with pytest.raises(ValueError, match="expected 2"):
            stepper.pack_vectors([(0, 1), (1,)])

    def test_run_clean(self):
        circuit = resettable_counter()
        stepper = VectorFastStepper(circuit)
        width = 2
        vectors = [
            stepper.pack_vectors([(0, 1), (1, 1)]),
            stepper.pack_vectors([(1, 0), (0, 0)]),
        ]
        outputs, final = stepper.run_clean(vectors, width)
        assert len(outputs) == 2
        # Both positions reset on cycle 0: outputs are binary afterwards.
        for pair in final:
            assert (pair[0] | pair[1]) == (1 << width) - 1

    def test_rail_pair_trit(self):
        assert rail_pair_trit((0b10, 0b01), 0) == ZERO
        assert rail_pair_trit((0b10, 0b01), 1) == ONE
        assert rail_pair_trit((0b10, 0b01), 2) == X

    def test_sources_are_compilable_text(self):
        clean, inject = VectorFastStepper(toggle_counter()).sources()
        assert "def step_clean(state, vector, mask):" in clean
        assert "def step_inject(state, vector, mask, sa1, sa0):" in inject
