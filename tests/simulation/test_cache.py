"""Behaviour of the module-level compile cache."""

import gc

from repro.simulation import (
    FastStepper,
    VectorFastStepper,
    clear_compile_cache,
    compile_cache_stats,
    compiled_circuit,
    fast_stepper,
    vector_fast_stepper,
    warm_compile_cache,
)

from tests.helpers import resettable_counter, toggle_counter


class TestCompileCache:
    def setup_method(self):
        clear_compile_cache()

    def test_same_artifact_returned(self):
        circuit = toggle_counter()
        assert compiled_circuit(circuit) is compiled_circuit(circuit)
        assert fast_stepper(circuit) is fast_stepper(circuit)
        assert vector_fast_stepper(circuit) is vector_fast_stepper(circuit)

    def test_artifact_types(self):
        circuit = toggle_counter()
        assert isinstance(fast_stepper(circuit), FastStepper)
        assert isinstance(vector_fast_stepper(circuit), VectorFastStepper)

    def test_lowering_shared_across_steppers(self):
        """One CompiledCircuit serves the scalar and vector steppers alike."""
        circuit = resettable_counter()
        lowered = compiled_circuit(circuit)
        assert fast_stepper(circuit).compiled is lowered
        assert vector_fast_stepper(circuit).compiled is lowered

    def test_lowering_shared_when_stepper_first(self):
        circuit = resettable_counter()
        stepper = vector_fast_stepper(circuit)
        assert compiled_circuit(circuit) is stepper.compiled

    def test_distinct_circuits_distinct_entries(self):
        original = toggle_counter()
        retimed = original.with_weights(original.weights())
        assert compiled_circuit(original) is not compiled_circuit(retimed)

    def test_stats_count_hits_and_misses(self):
        circuit = toggle_counter()
        compiled_circuit(circuit)
        compiled_circuit(circuit)
        stats = compile_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1

    def test_entries_die_with_their_circuits(self):
        circuit = toggle_counter()
        compiled_circuit(circuit)
        assert compile_cache_stats()["entries"] == 1
        del circuit
        gc.collect()
        assert compile_cache_stats()["entries"] == 0

    def test_clear_resets_everything(self):
        compiled_circuit(toggle_counter())
        clear_compile_cache()
        stats = compile_cache_stats()
        assert stats["entries"] == 0
        assert all(count == 0 for count in stats.values())

    def test_warm_builds_every_artifact(self):
        """Worker initializers warm once; later lookups must all hit."""
        circuit = toggle_counter()
        warm_compile_cache(circuit)
        before = compile_cache_stats()
        compiled_circuit(circuit)
        fast_stepper(circuit)
        vector_fast_stepper(circuit)
        after = compile_cache_stats()
        assert after["misses"] == before["misses"]
        assert after["hits"] == before["hits"] + 3
