"""Cross-checks of the bit-parallel simulator against the scalar reference."""

import random

import pytest

from repro.circuit import LineRef
from repro.logic.bitparallel import BitVec
from repro.logic.three_valued import ONE, X, ZERO
from repro.simulation import SequentialSimulator, VectorSimulator

from tests.helpers import (
    feedback_and,
    pipelined_logic,
    random_circuit,
    toggle_counter,
)


def _random_scalar_vectors(rng, num_inputs, length, allow_x=False):
    choices = (ZERO, ONE, X) if allow_x else (ZERO, ONE)
    return [
        tuple(rng.choice(choices) for _ in range(num_inputs)) for _ in range(length)
    ]


class TestPatternParallelAgreesWithScalar:
    @pytest.mark.parametrize("factory", [feedback_and, toggle_counter, pipelined_logic])
    def test_fixed_circuits(self, factory):
        circuit = factory()
        self._check(circuit, seed=1)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_circuits(self, seed):
        circuit = random_circuit(seed, num_inputs=3, num_gates=12, num_dffs=3)
        self._check(circuit, seed=seed + 100)

    def _check(self, circuit, seed, width=8, length=6):
        rng = random.Random(seed)
        scalar = SequentialSimulator(circuit)
        vector = VectorSimulator(circuit, width)
        sequences = [
            _random_scalar_vectors(rng, len(circuit.input_names), length, allow_x=True)
            for _ in range(width)
        ]
        packed_per_cycle = [
            vector.pack_vectors([sequences[bit][t] for bit in range(width)])
            for t in range(length)
        ]
        outputs, final = vector.run(packed_per_cycle)
        for bit in range(width):
            trace = scalar.run(sequences[bit])
            for t in range(length):
                got = tuple(o.get(bit) for o in outputs[t])
                assert got == trace.outputs[t], f"bit {bit} cycle {t}"
            assert tuple(s.get(bit) for s in final) == trace.final_state


class TestFaultParallelAgreesWithScalar:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuit_random_faults(self, seed):
        circuit = random_circuit(seed, num_inputs=3, num_gates=10, num_dffs=3)
        rng = random.Random(seed + 7)
        lines = circuit.lines()
        picks = [
            (rng.choice(lines), rng.choice((ZERO, ONE)))
            for _ in range(min(6, len(lines)))
        ]
        width = len(picks) + 1  # bit 0 is fault-free
        injections = {}
        for bit, (line, value) in enumerate(picks, start=1):
            sa1, sa0 = injections.get(line, (0, 0))
            if value == ONE:
                sa1 |= 1 << bit
            else:
                sa0 |= 1 << bit
            injections[line] = (sa1, sa0)
        vector = VectorSimulator(circuit, width, injections)
        length = 5
        scalar_vectors = _random_scalar_vectors(
            rng, len(circuit.input_names), length
        )
        packed = [vector.broadcast_vector(v) for v in scalar_vectors]
        outputs, final = vector.run(packed)
        # Bit 0: fault-free reference.
        good = SequentialSimulator(circuit).run(scalar_vectors)
        for t in range(length):
            assert tuple(o.get(0) for o in outputs[t]) == good.outputs[t]
        # Other bits: scalar faulty simulation must agree.
        for bit, (line, value) in enumerate(picks, start=1):
            faulty = SequentialSimulator(circuit, fault=(line, value)).run(
                scalar_vectors
            )
            for t in range(length):
                got = tuple(o.get(bit) for o in outputs[t])
                assert got == faulty.outputs[t], f"fault {line} s-a-{value} cycle {t}"


class TestVectorApi:
    def test_broadcast_state(self):
        circuit = toggle_counter()
        sim = VectorSimulator(circuit, 4)
        state = sim.broadcast_state((ONE, ZERO))
        assert [s.get(2) for s in state] == [ONE, ZERO]

    def test_overlapping_injection_rejected(self):
        circuit = feedback_and()
        line = circuit.lines()[0]
        with pytest.raises(ValueError):
            VectorSimulator(circuit, 2, {line: (0b10, 0b10)})

    def test_injection_outside_width_rejected(self):
        circuit = feedback_and()
        line = circuit.lines()[0]
        with pytest.raises(ValueError):
            VectorSimulator(circuit, 2, {line: (0b100, 0)})

    def test_bad_width(self):
        with pytest.raises(ValueError):
            VectorSimulator(feedback_and(), 0)

    def test_pack_vectors_needs_width_rows(self):
        circuit = toggle_counter()
        sim = VectorSimulator(circuit, 3)
        with pytest.raises(ValueError):
            sim.pack_vectors([(0,), (1,)])

    def test_pack_vectors_rejects_short_vector(self):
        # A vector with fewer trits than the circuit has inputs must be a
        # clean ValueError, not a bare IndexError from the packing loop.
        circuit = toggle_counter()  # 1 input
        sim = VectorSimulator(circuit, 2)
        with pytest.raises(ValueError, match="expected 1"):
            sim.pack_vectors([(0,), ()])

    def test_pack_vectors_rejects_long_vector(self):
        circuit = toggle_counter()
        sim = VectorSimulator(circuit, 2)
        with pytest.raises(ValueError, match="expected 1"):
            sim.pack_vectors([(0,), (1, 0)])

    def test_pack_vectors_width_matches_simulator(self):
        circuit = toggle_counter()
        sim = VectorSimulator(circuit, 3)
        packed = sim.pack_vectors([(0,), (1,), (0,)])
        assert all(b.width == 3 for b in packed)
