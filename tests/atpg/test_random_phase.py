"""Tests for the weighted-random synchronizing walk.

The walk is the engine's workhorse; these tests pin down the design
choices: greedy synchronization while flip-flops are unknown, and
per-sequence input weights so inputs that reset the machine do not fire
every other cycle.
"""

import random

import pytest

from repro.atpg.budget import AtpgBudget
from repro.atpg.engine import _synchronizing_walk
from repro.logic.three_valued import X
from repro.simulation import SequentialSimulator

from tests.helpers import resettable_counter


class TestSynchronizingWalk:
    def test_walk_synchronizes_resettable_circuit(self):
        circuit = resettable_counter()
        simulator = SequentialSimulator(circuit)
        rng = random.Random(3)
        budget = AtpgBudget(random_length=16, sync_samples=8)
        sequence = _synchronizing_walk(
            simulator, rng, budget, len(circuit.input_names)
        )
        assert len(sequence) == 16
        trace = simulator.run(sequence)
        assert X not in trace.final_state

    def test_walk_tours_states(self):
        """The weighted walk must visit clearly more distinct states than a
        handful -- the trap a uniform walk falls into when an input resets
        the machine half the time."""
        circuit = resettable_counter()
        simulator = SequentialSimulator(circuit)
        rng = random.Random(5)
        budget = AtpgBudget(random_length=40, sync_samples=8)
        visited = set()
        for _ in range(8):
            sequence = _synchronizing_walk(
                simulator, rng, budget, len(circuit.input_names)
            )
            trace = simulator.run(sequence)
            visited.update(s for s in trace.states if X not in s)
        assert len(visited) == 4  # all states of the 2-bit counter

    def test_vectors_are_binary(self):
        circuit = resettable_counter()
        simulator = SequentialSimulator(circuit)
        rng = random.Random(7)
        budget = AtpgBudget(random_length=8)
        sequence = _synchronizing_walk(
            simulator, rng, budget, len(circuit.input_names)
        )
        for vector in sequence:
            assert all(bit in (0, 1) for bit in vector)

    def test_benchmark_machine_deep_tour(self):
        """On a benchmark circuit the walk must escape the reset basin."""
        from repro.fsm.mcnc import synthesize_benchmark

        circuit = synthesize_benchmark("s820", "jc", "rugged").circuit
        simulator = SequentialSimulator(circuit)
        rng = random.Random(3)
        budget = AtpgBudget(random_length=96, sync_samples=8)
        visited = set()
        for _ in range(6):
            sequence = _synchronizing_walk(
                simulator, rng, budget, len(circuit.input_names)
            )
            trace = simulator.run(sequence)
            visited.update(s for s in trace.states if X not in s)
        # A uniform walk gets stuck near the reset state (~10 states); the
        # weighted walk tours a solid majority of the 25 reachable codes.
        assert len(visited) >= 15, len(visited)
