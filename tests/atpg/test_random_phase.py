"""Tests for the weighted-random synchronizing walk.

The walk is the engine's workhorse; these tests pin down the design
choices: greedy synchronization while flip-flops are unknown, and
per-sequence input weights so inputs that reset the machine do not fire
every other cycle.
"""

import random

import pytest

from repro.atpg.budget import AtpgBudget
from repro.atpg.engine import _synchronizing_walk
from repro.logic.three_valued import X
from repro.simulation import (
    SequentialSimulator,
    fast_stepper,
    vector_fast_stepper,
)

from tests.helpers import random_circuit, resettable_counter


class TestSynchronizingWalk:
    def test_walk_synchronizes_resettable_circuit(self):
        circuit = resettable_counter()
        simulator = SequentialSimulator(circuit)
        rng = random.Random(3)
        budget = AtpgBudget(random_length=16, sync_samples=8)
        sequence = _synchronizing_walk(
            simulator, rng, budget, len(circuit.input_names)
        )
        assert len(sequence) == 16
        trace = simulator.run(sequence)
        assert X not in trace.final_state

    def test_walk_tours_states(self):
        """The weighted walk must visit clearly more distinct states than a
        handful -- the trap a uniform walk falls into when an input resets
        the machine half the time."""
        circuit = resettable_counter()
        simulator = SequentialSimulator(circuit)
        rng = random.Random(5)
        budget = AtpgBudget(random_length=40, sync_samples=8)
        visited = set()
        for _ in range(8):
            sequence = _synchronizing_walk(
                simulator, rng, budget, len(circuit.input_names)
            )
            trace = simulator.run(sequence)
            visited.update(s for s in trace.states if X not in s)
        assert len(visited) == 4  # all states of the 2-bit counter

    def test_vectors_are_binary(self):
        circuit = resettable_counter()
        simulator = SequentialSimulator(circuit)
        rng = random.Random(7)
        budget = AtpgBudget(random_length=8)
        sequence = _synchronizing_walk(
            simulator, rng, budget, len(circuit.input_names)
        )
        for vector in sequence:
            assert all(bit in (0, 1) for bit in vector)

    def test_benchmark_machine_deep_tour(self):
        """On a benchmark circuit the walk must escape the reset basin."""
        from repro.fsm.mcnc import synthesize_benchmark

        circuit = synthesize_benchmark("s820", "jc", "rugged").circuit
        simulator = SequentialSimulator(circuit)
        rng = random.Random(3)
        budget = AtpgBudget(random_length=96, sync_samples=8)
        visited = set()
        for _ in range(6):
            sequence = _synchronizing_walk(
                simulator, rng, budget, len(circuit.input_names)
            )
            trace = simulator.run(sequence)
            visited.update(s for s in trace.states if X not in s)
        # A uniform walk gets stuck near the reset state (~10 states); the
        # weighted walk tours a solid majority of the 25 reachable codes.
        assert len(visited) >= 15, len(visited)


class TestVectorizedWalk:
    """The pattern-parallel walk (candidate vectors evaluated in one
    compiled ``step_clean`` call) must be indistinguishable from the scalar
    engines: same RNG consumption, same first-best tie break, hence the
    same emitted sequence."""

    @pytest.mark.parametrize("seed", (3, 11, 29))
    def test_matches_scalar_engines(self, seed):
        for circuit in (
            resettable_counter(),
            random_circuit(seed + 40, num_inputs=4, num_gates=14, num_dffs=4),
        ):
            budget = AtpgBudget(random_length=20, sync_samples=8)
            num_inputs = len(circuit.input_names)
            walks = []
            for stepper in (
                SequentialSimulator(circuit),
                fast_stepper(circuit),
                vector_fast_stepper(circuit),
            ):
                rng = random.Random(seed)
                walks.append(
                    _synchronizing_walk(stepper, rng, budget, num_inputs)
                )
            assert walks[0] == walks[1] == walks[2]

    def test_vector_walk_synchronizes(self):
        circuit = resettable_counter()
        rng = random.Random(3)
        budget = AtpgBudget(random_length=16, sync_samples=8)
        sequence = _synchronizing_walk(
            vector_fast_stepper(circuit), rng, budget, len(circuit.input_names)
        )
        simulator = SequentialSimulator(circuit)
        trace = simulator.run(sequence)
        assert X not in trace.final_state

    def test_vector_walk_vectors_are_binary(self):
        circuit = resettable_counter()
        rng = random.Random(7)
        budget = AtpgBudget(random_length=8)
        sequence = _synchronizing_walk(
            vector_fast_stepper(circuit), rng, budget, len(circuit.input_names)
        )
        for vector in sequence:
            assert all(bit in (0, 1) for bit in vector)
