"""Tests for ATPG budgets and effort accounting."""

import time

from repro.atpg import AtpgBudget, EffortMeter


class TestBudget:
    def test_defaults_sane(self):
        budget = AtpgBudget()
        assert budget.total_seconds > 0
        assert budget.backtracks_per_fault > 0
        assert budget.max_frames >= 1

    def test_scaled_fields(self):
        budget = AtpgBudget(total_seconds=10, backtracks_per_fault=100)
        doubled = budget.scaled(2.0)
        assert doubled.total_seconds == 20
        assert doubled.backtracks_per_fault == 200
        halved = budget.scaled(0.001)
        assert halved.backtracks_per_fault >= 1  # never zero

    def test_frozen(self):
        budget = AtpgBudget()
        try:
            budget.total_seconds = 1  # type: ignore[misc]
        except Exception:
            pass
        else:  # pragma: no cover
            raise AssertionError("budget must be immutable")


class TestMeter:
    def test_elapsed_and_timeout(self):
        meter = EffortMeter(AtpgBudget(total_seconds=0.05))
        assert not meter.out_of_time() or meter.elapsed() >= 0.05
        time.sleep(0.06)
        assert meter.out_of_time()

    def test_counters(self):
        meter = EffortMeter(AtpgBudget())
        meter.note_backtrack()
        meter.note_backtrack()
        meter.note_simulation()
        assert meter.backtracks == 2
        assert meter.simulations == 1

    def test_cap_seconds_tightens_allowance(self):
        """A pool worker's cap must bind below the budget's own total."""
        meter = EffortMeter(AtpgBudget(total_seconds=100.0), cap_seconds=0.0)
        assert meter.out_of_time()
        assert meter.remaining() == 0.0

    def test_cap_seconds_never_loosens(self):
        meter = EffortMeter(AtpgBudget(total_seconds=0.0), cap_seconds=100.0)
        assert meter.out_of_time()

    def test_remaining_counts_down(self):
        meter = EffortMeter(AtpgBudget(total_seconds=100.0))
        first = meter.remaining()
        time.sleep(0.01)
        assert 0 < meter.remaining() < first <= 100.0

    def test_scaled_preserves_new_fields(self):
        budget = AtpgBudget(frames_cap=16, random_batch=5)
        scaled = budget.scaled(2.0)
        assert scaled.frames_cap == 16
        assert scaled.random_batch == 5
