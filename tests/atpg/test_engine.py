"""Tests for the ATPG engine (random + deterministic phases)."""

import pytest

from repro.atpg import AtpgBudget, PodemEngine, run_atpg, structurally_untestable
from repro.atpg.budget import EffortMeter
from repro.circuit import CircuitBuilder, LineRef
from repro.faults import StuckAtFault, collapse_faults
from repro.faultsim import fault_simulate

from tests.helpers import (
    feedback_and,
    pipelined_logic,
    random_circuit,
    resettable_counter,
)

FAST = AtpgBudget(
    total_seconds=10.0,
    seconds_per_fault=0.2,
    backtracks_per_fault=300,
    max_frames=8,
    random_sequences=16,
    random_length=16,
)


class TestEngine:
    def test_full_coverage_on_combinational_pipeline(self):
        result = run_atpg(pipelined_logic(), budget=FAST)
        assert result.fault_coverage == 100.0
        assert result.fault_efficiency == 100.0

    def test_counter_high_coverage(self):
        result = run_atpg(resettable_counter(), budget=FAST)
        # Three reset-path faults are undetectable under hard 3-valued
        # detection; everything else must be found.
        assert result.num_faults - len(result.detected) <= 3

    def test_test_set_actually_detects(self):
        """Every claimed detection must replay under fault simulation."""
        circuit = resettable_counter()
        result = run_atpg(circuit, budget=FAST)
        replay = fault_simulate(
            circuit, result.test_set.as_lists(), list(result.detected)
        )
        assert set(replay.detections) == result.detected

    @pytest.mark.parametrize("seed", range(3))
    def test_random_circuits_consistency(self, seed):
        circuit = random_circuit(seed + 600, num_inputs=3, num_gates=10, num_dffs=3)
        result = run_atpg(circuit, budget=FAST)
        assert result.detected.isdisjoint(result.aborted)
        assert result.detected.isdisjoint(result.untestable)
        assert (
            len(result.detected) + len(result.untestable) + len(result.aborted)
            == result.num_faults
        )
        assert 0 <= result.fault_coverage <= result.fault_efficiency <= 100.0

    def test_deterministic_phase_contributes(self):
        """With the random phase disabled PODEM must find tests alone."""
        circuit = pipelined_logic()
        budget = AtpgBudget(
            total_seconds=10.0,
            random_sequences=0,
            backtracks_per_fault=300,
            max_frames=6,
            seconds_per_fault=0.3,
        )
        result = run_atpg(circuit, budget=budget)
        assert result.deterministic_detected > 0
        assert result.fault_coverage == 100.0

    def test_summary(self):
        result = run_atpg(pipelined_logic(), budget=FAST)
        assert "FC" in result.summary()

    def test_budget_scaled(self):
        scaled = FAST.scaled(2.0)
        assert scaled.total_seconds == 20.0
        assert scaled.backtracks_per_fault == 600


class TestStructuralUntestability:
    def test_dangling_cone_flagged(self):
        builder = CircuitBuilder("dead")
        builder.input("a")
        builder.buf("g", "a")
        builder.const0("k")
        builder.and_("dead1", "a", "k")
        builder.buf("dead2", "dead1")
        builder.output("z", "g")
        # dead2 drives nothing observable; route it to nothing -> must be
        # kept via allow_dangling.
        circuit = builder.build(allow_dangling=True)
        flagged = structurally_untestable(circuit)
        dead_edges = [
            e.index for e in circuit.edges if e.sink in ("dead1", "dead2")
        ]
        assert dead_edges
        for index in dead_edges:
            assert StuckAtFault(LineRef(index, 1), 0) in flagged

    def test_clean_circuit_nothing_flagged(self):
        assert structurally_untestable(resettable_counter()) == set()

    def test_feedback_loops_handled(self):
        assert structurally_untestable(feedback_and()) == set()


class TestPodemUnit:
    def test_detects_simple_stuck_fault(self):
        circuit = pipelined_logic()
        engine = PodemEngine(circuit)
        meter = EffortMeter(FAST)
        fault = collapse_faults(circuit).representatives[0]
        outcome = engine.generate(fault, meter)
        if outcome.detected:
            check = fault_simulate(circuit, [outcome.sequence], [fault])
            assert check.num_detected == 1

    def test_generated_sequences_verify(self):
        """PODEM's claimed tests must always replay (engine invariant)."""
        circuit = resettable_counter()
        engine = PodemEngine(circuit)
        meter = EffortMeter(FAST)
        for fault in collapse_faults(circuit).representatives:
            outcome = engine.generate(fault, meter)
            if outcome.detected:
                check = fault_simulate(circuit, [outcome.sequence], [fault])
                assert check.num_detected == 1, fault.describe(circuit)

    def test_respects_backtrack_limit(self):
        circuit = feedback_and()
        engine = PodemEngine(circuit)
        meter = EffortMeter(
            AtpgBudget(total_seconds=5, backtracks_per_fault=5, max_frames=6)
        )
        # Per depth level the backtrack budget is fresh; with max_frames 6
        # the levels are 1, 2, 4, 6, so at most 4 x 5 backtracks total.
        results = [
            engine.generate(f, meter)
            for f in collapse_faults(circuit).representatives
        ]
        for outcome in results:
            assert outcome.backtracks <= 4 * 5 or outcome.detected
