"""Tests for the ATPG guidance layer: SCOAP measures, the meta-predictor,
the off-mode bit-identity guard and guided/unguided interchangeability."""

import math

import pytest

from repro.atpg import (
    AtpgBudget,
    EffortMeter,
    PodemEngine,
    run_atpg,
)
from repro.atpg.guidance import (
    FEATURE_NAMES,
    GUIDANCE_MODES,
    MetaPredictor,
    SCOAP_REGISTER_COST,
    compute_scoap,
    effort_label,
    fault_features,
    fault_sort_key,
    load_predictor,
    load_training_rows,
    log_training_rows,
    make_policy,
    policy_from_effort_rows,
    save_predictor,
    scoap_measures,
    train_predictor,
    train_predictor_from_store,
    training_rows,
)
from repro.atpg.parallel import _partition_indices
from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import LineRef
from repro.core.preservation import verify_preservation
from repro.faults.collapse import collapse_faults
from repro.faults.model import StuckAtFault
from repro.logic.three_valued import ONE, ZERO
from repro.papercircuits import fig2_pair, fig5_n1, fig5_pair
from repro.store.core import ArtifactStore

R = SCOAP_REGISTER_COST  # 20.0: one register crossing


def small_budget(**overrides):
    values = dict(
        total_seconds=20.0,
        seconds_per_fault=2.0,
        backtracks_per_fault=20,
        frames_cap=8,
        random_sequences=4,
    )
    values.update(overrides)
    return AtpgBudget(**values)


class TestScoapHandComputed:
    """Goldstein's rules on the reconstructed Fig. 5 N1, by hand.

    Structure: G1 = AND(DFF(I1), DFF(I2)); G3 = OR(I3, Q3);
    G2 = AND(G1, G3); Q3 = DFF(G2); Z = G2.
    """

    def test_controllability(self):
        m = compute_scoap(fig5_n1())
        # Inputs cost 1 either way.
        assert m.cc0["I1"] == m.cc1["I1"] == 1.0
        # G1 = AND of two lines that each cross one register:
        #   line cost = 1 + R; CC1 = sum + 1, CC0 = min + 1.
        assert m.cc1["G1"] == (1 + R) * 2 + 1  # 43
        assert m.cc0["G1"] == (1 + R) + 1  # 22
        # G3 = OR(I3, G2 across one register):
        #   CC1 = min(1, CC1(G2) + R) + 1 = 2; CC0 = sum + 1.
        assert m.cc1["G3"] == 2.0
        assert m.cc0["G3"] == 1 + (m.cc0["G2"] + R) + 1  # 45
        # G2 = AND(G1, G3), both lines register-free.
        assert m.cc1["G2"] == m.cc1["G1"] + m.cc1["G3"] + 1  # 46
        assert m.cc0["G2"] == min(m.cc0["G1"], m.cc0["G3"]) + 1  # 23

    def test_observability(self):
        c = fig5_n1()
        m = compute_scoap(c)
        # G2 fans out straight to the output Z: free to observe.
        assert m.co["G2"] == 0.0
        # G1 -> G2 (AND): hold side input G3 at 1 (its CC1 = 2), plus the
        # gate's own +1.
        assert m.co["G1"] == 0.0 + 1 + m.cc1["G3"]  # 3
        # I1 -> G1 (AND): side input is I2's line across one register;
        # then pull I1's own measure back across its register.
        edge_i1 = next(e.index for e in c.edges if e.source == "I1")
        assert m.edge_co[edge_i1] == m.co["G1"] + 1 + (1 + R)  # 25
        assert m.co["I1"] == m.edge_co[edge_i1] + R  # 45
        # G3 -> G2 (AND): side input is G1 at CC1 = 43.
        edge_g3 = next(e.index for e in c.edges if e.source == "G3")
        assert m.edge_co[edge_g3] == 0.0 + 1 + m.cc1["G1"]  # 44

    def test_line_measures_split_edge_registers(self):
        """Segment 2 of I1 -> G1 sits *after* the register: excitation
        pays the crossing, observation no longer does."""
        c = fig5_n1()
        m = compute_scoap(c)
        edge_i1 = next(e.index for e in c.edges if e.source == "I1")
        cc0_s1, _, co_s1 = m.line_measures(c, LineRef(edge_i1, 1))
        cc0_s2, _, co_s2 = m.line_measures(c, LineRef(edge_i1, 2))
        assert cc0_s2 == cc0_s1 + R
        assert co_s2 == co_s1 - R

    def test_min_frames_bounds(self):
        """The sequential-depth bound, edge by edge: registers on the
        cheapest source path + the edge's own + cheapest path out, + 1."""
        c = fig5_n1()
        m = compute_scoap(c)
        by_pair = {(e.source, e.sink): e.index for e in c.edges}
        # I3 -> G3 and everything from G2 to Z: combinational, 1 frame.
        assert m.min_frames[by_pair[("I3", "G3")]] == 1
        # I1 -> G1 crosses its own register; G1 -> G2 needs I1's register
        # crossed first.  Both need a 2-frame window.
        assert m.min_frames[by_pair[("I1", "G1")]] == 2
        assert m.min_frames[by_pair[("G1", "G2")]] == 2
        # Every bound is >= 1 and none is trivially huge on this circuit.
        assert all(1 <= v <= 3 for v in m.min_frames.values())

    def test_min_frames_sound_against_real_tests(self):
        """No unguided PODEM test is shorter than the fault's bound."""
        for circuit in (fig5_n1(), fig5_pair()[1]):
            m = compute_scoap(circuit)
            engine = PodemEngine(circuit)
            for fault in collapse_faults(circuit).representatives:
                meter = EffortMeter(small_budget())
                result = engine.generate(fault, meter, max_frames=8)
                if result.detected:
                    assert len(result.sequence) >= (
                        m.min_frames[fault.line.edge_index]
                    )


class TestScoapStore:
    def test_round_trip_hits_cache(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        circuit = fig5_n1()
        first = scoap_measures(circuit, store=store)
        again = scoap_measures(circuit, store=store)
        assert first == again
        assert store.stats.hits >= 1

    def test_different_circuit_misses(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        scoap_measures(fig5_n1(), store=store)
        other = fig2_pair()[0]
        assert scoap_measures(other, store=store) == compute_scoap(other)


class TestPredictor:
    def synthetic_rows(self, count=60):
        """Deterministic rows where feature 3 (excite_cost) drives the
        label -- learnable by a depth-limited tree."""
        rows = []
        for i in range(count):
            features = [float((i * 7 + j) % 11) for j in range(len(FEATURE_NAMES))]
            features[3] = float(i % 5) * 10.0
            rows.append(features + [math.log2(1.0 + features[3])])
        return rows

    def test_training_is_deterministic(self):
        rows = self.synthetic_rows()
        first = train_predictor(rows)
        second = train_predictor(rows)
        assert first is not None
        assert first.trees == second.trees

    def test_predictor_learns_the_signal(self):
        predictor = train_predictor(self.synthetic_rows())
        low = [0.0] * len(FEATURE_NAMES)
        high = list(low)
        high[3] = 40.0
        assert predictor.predicted_cost(high) > predictor.predicted_cost(low)

    def test_too_few_rows_returns_none(self):
        assert train_predictor(self.synthetic_rows(3)) is None

    def test_store_round_trip(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        predictor = train_predictor(self.synthetic_rows())
        save_predictor(store, predictor)
        loaded = load_predictor(store)
        assert loaded is not None
        assert loaded.trees == predictor.trees
        assert loaded.feature_names == predictor.feature_names

    def test_version_mismatch_rejected(self):
        predictor = train_predictor(self.synthetic_rows())
        payload = predictor.to_payload()
        payload["version"] = -1
        assert MetaPredictor.from_payload(payload) is None

    def test_dataset_accumulates_and_trains(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        circuit = fig5_n1()
        result = run_atpg(circuit, budget=small_budget(), guidance="off")
        assert result.fault_rows  # telemetry rides on every run
        count = log_training_rows(store, circuit, result.fault_rows)
        assert count == len(load_training_rows(store))
        count_again = log_training_rows(store, circuit, result.fault_rows)
        assert count_again >= count  # appends, does not overwrite
        # The tiny fig5 dataset is enough to train once doubled.
        predictor = train_predictor_from_store(store)
        if predictor is not None:
            assert load_predictor(store) is not None


class TestPolicy:
    def test_off_is_none_and_unknown_rejected(self):
        circuit = fig5_n1()
        assert make_policy(circuit, "off") is None
        assert make_policy(circuit, None) is None
        with pytest.raises(ValueError):
            make_policy(circuit, "psychic")
        assert set(GUIDANCE_MODES) == {"off", "scoap", "learned", "auto"}

    def test_learned_without_predictor_falls_back_to_scoap(self):
        policy = make_policy(fig5_n1(), "learned")
        assert policy is not None
        assert policy.mode == "scoap"

    def test_auto_uses_stored_predictor(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        circuit = fig5_n1()
        rows = TestPredictor().synthetic_rows()
        save_predictor(store, train_predictor(rows))
        policy = make_policy(circuit, "auto", store=store)
        assert policy.mode == "learned"
        assert make_policy(circuit, "auto").mode == "scoap"

    def test_scores_carry_explicit_tie_breaks(self):
        circuit = fig5_n1()
        policy = make_policy(circuit, "scoap")
        faults = collapse_faults(circuit).representatives
        costs = policy.score_faults(circuit, faults)
        ordered = sorted(faults, key=lambda f: (costs[f], fault_sort_key(f)))
        assert sorted(ordered, key=lambda f: (costs[f], fault_sort_key(f))) == ordered
        assert len(costs) == len(faults)

    def test_policy_from_effort_rows(self):
        circuit = fig5_n1()
        result = run_atpg(circuit, budget=small_budget(), guidance="off")
        policy = policy_from_effort_rows(circuit, result.fault_rows)
        assert policy.mode in ("scoap", "learned")

    def test_training_rows_skip_untouched_faults(self):
        circuit = fig5_n1()
        scoap = compute_scoap(circuit)
        result = run_atpg(circuit, budget=small_budget(), guidance="off")
        rows = training_rows(circuit, scoap, result.fault_rows)
        width = len(FEATURE_NAMES) + 1
        assert all(len(row) == width for row in rows)
        fault = collapse_faults(circuit).representatives[0]
        features = fault_features(circuit, scoap, fault)
        assert len(features) == len(FEATURE_NAMES)
        assert effort_label(0, 0) == 0.0


class TestOffBitIdentity:
    """The hard guard: guidance="off" must be the seed engine, bit for bit."""

    def test_off_equals_default(self):
        circuit = fig5_pair()[1]
        budget = small_budget()
        base = run_atpg(circuit, budget=budget)
        off = run_atpg(circuit, budget=budget, guidance="off")
        assert base.test_set.to_text() == off.test_set.to_text()
        assert base.detected == off.detected
        assert base.aborted == off.aborted
        assert base.backtracks == off.backtracks
        assert base.frames_simulated == off.frames_simulated
        assert off.guidance == "off"

    def test_partitioner_without_costs_is_contiguous(self):
        assert _partition_indices(10, 3, None) == [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
            [8, 9],
        ]

    def test_partitioner_with_costs_balances_and_covers(self):
        costs = [8.0, 1.0, 1.0, 1.0, 8.0, 1.0]
        chunks = _partition_indices(len(costs), 2, costs)
        assert sorted(i for chunk in chunks for i in chunk) == list(range(6))
        loads = [sum(costs[i] for i in chunk) for chunk in chunks]
        # LPT puts one heavy fault in each bin instead of both in one.
        assert max(loads) < sum(costs)
        assert all(chunk == sorted(chunk) for chunk in chunks)

    def test_partitioner_is_deterministic(self):
        costs = [3.0, 3.0, 2.0, 2.0, 1.0]
        assert _partition_indices(5, 2, costs) == _partition_indices(
            5, 2, list(costs)
        )


class TestGuidedRuns:
    def test_guided_serial_process_parity(self):
        circuit = fig5_pair()[1]
        budget = small_budget()
        serial = run_atpg(
            circuit, budget=budget, guidance="scoap", engine="serial"
        )
        pooled = run_atpg(
            circuit, budget=budget, guidance="scoap", engine="process", workers=2
        )
        assert serial.test_set.to_text() == pooled.test_set.to_text()
        assert serial.detected == pooled.detected
        assert serial.guidance == pooled.guidance == "scoap"

    def test_guided_coverage_not_worse_on_fig5(self):
        circuit = fig5_pair()[1]
        budget = small_budget()
        off = run_atpg(circuit, budget=budget, guidance="off")
        for mode in ("scoap", "learned"):
            guided = run_atpg(circuit, budget=budget, guidance=mode)
            assert guided.fault_coverage >= off.fault_coverage

    def test_guided_tests_preserve_like_unguided(self):
        """Theorem 4 does not care which engine produced the test set:
        both the unguided and the guided sets must verify preservation on
        the Fig. 5 pair."""
        n1, _n2, retiming = fig5_pair()
        budget = small_budget()
        for mode in ("off", "scoap"):
            result = run_atpg(n1, budget=budget, guidance=mode)
            report = verify_preservation(n1, retiming, result.test_set)
            assert report.holds

    def test_bound_skips_unreachable_window(self):
        """A fault needing more frames than the cap is *exhausted* (proven
        untestable in the window) under guidance, with zero search effort."""
        builder = CircuitBuilder("deep")
        builder.input("a")
        builder.dff("q1", "a")
        builder.dff("q2", "q1")
        builder.dff("q3", "q2")
        builder.buf("g", "q3")
        builder.output("z", "g")
        circuit = builder.build()
        deep_edge = next(e for e in circuit.edges if e.weight >= 1)
        fault = StuckAtFault(LineRef(deep_edge.index, 1), ZERO)
        policy = make_policy(circuit, "scoap")
        bound = policy.scoap.min_frames[deep_edge.index]
        assert bound >= 2
        engine = PodemEngine(circuit, guidance=policy)
        meter = EffortMeter(small_budget())
        result = engine.generate(fault, meter, max_frames=bound - 1)
        assert not result.detected
        assert not result.aborted
        assert result.backtracks == 0
        # The effort row still flushed, recording the free exhaustion.
        assert meter.fault_rows[-1].status == "exhausted"

    def test_objective_choices_counted(self):
        circuit = fig5_n1()
        result = run_atpg(circuit, budget=small_budget(), guidance="scoap")
        assert result.objective_choices > 0
        assert result.objective_choices == sum(
            row.objective_choices for row in result.fault_rows
        )


class TestEffortRows:
    def test_every_fault_gets_a_row(self):
        circuit = fig5_n1()
        result = run_atpg(circuit, budget=small_budget(), guidance="off")
        keys = [row.fault_key for row in result.fault_rows]
        assert len(keys) == len(set(keys))
        statuses = {row.status for row in result.fault_rows}
        assert statuses <= {"det", "abort", "exhausted", "budget"}
        assert all(row.seconds >= 0.0 for row in result.fault_rows)

    def test_meter_begin_end_flushes_deltas(self):
        meter = EffortMeter(small_budget())
        fault = StuckAtFault(LineRef(0, 1), ONE)
        meter.begin_fault(fault)
        meter.note_backtrack()
        meter.note_objective()
        meter.end_fault("det")
        meter.end_fault("abort")  # idempotent: no second row
        assert len(meter.fault_rows) == 1
        row = meter.fault_rows[0]
        assert row.fault_key == (0, 1, int(ONE))
        assert row.status == "det"
        assert row.backtracks == 1
        assert row.objective_choices == 1

    def test_skip_fault_records_budget_row(self):
        meter = EffortMeter(small_budget())
        meter.skip_fault(StuckAtFault(LineRef(2, 1), ZERO))
        row = meter.fault_rows[0]
        assert row.status == "budget"
        assert row.backtracks == 0 and row.seconds == 0.0
