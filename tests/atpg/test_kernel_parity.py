"""Dual-vs-scalar PODEM kernel equivalence and engine-selection tests.

The dual kernel is a pure performance substitution: for every circuit,
fault and budget it must return the *same* ``PodemResult`` -- sequence,
backtrack count, abort flag, frames -- as the scalar baseline, and the
incremental resimulation (suffix adoption, lane flips) must leave the
machine in the same state a from-scratch resimulation would produce.
"""

import random

import pytest

from repro.atpg.budget import AtpgBudget, EffortMeter
from repro.atpg.engine import MIN_POOL_FAULTS, choose_engine, run_atpg
from repro.atpg.podem import PodemEngine, _DualMachine
from repro.core.experiments import TABLE2_CIRCUITS, build_pair
from repro.faults import collapse_faults
from repro.logic.three_valued import ONE, X, ZERO, t_not
from tests.helpers import random_circuit, resettable_counter, toggle_counter


def _mcnc_circuit():
    spec = next(s for s in TABLE2_CIRCUITS if s.name == "dk16.ji.sd")
    return build_pair(spec).original


class TestKernelParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuits_bit_identical(self, seed):
        circuit = random_circuit(
            seed + 200, num_inputs=3, num_gates=18, num_dffs=3
        )
        faults = collapse_faults(circuit).representatives[:15]
        budget = AtpgBudget(backtracks_per_fault=8, max_frames=4)
        scalar = PodemEngine(circuit, kernel="scalar")
        dual = PodemEngine(circuit, kernel="dual")
        for fault in faults:
            expected = scalar.generate(fault, EffortMeter(budget))
            actual = dual.generate(fault, EffortMeter(budget))
            assert actual == expected, fault

    def test_mcnc_circuit_bit_identical(self):
        circuit = _mcnc_circuit()
        faults = collapse_faults(circuit).representatives[:25]
        budget = AtpgBudget(backtracks_per_fault=6, max_frames=4)
        scalar = PodemEngine(circuit, kernel="scalar")
        dual = PodemEngine(circuit, kernel="dual")
        for fault in faults:
            expected = scalar.generate(fault, EffortMeter(budget))
            actual = dual.generate(fault, EffortMeter(budget))
            assert actual == expected, fault

    def test_run_atpg_kernel_parity(self):
        circuit = _mcnc_circuit()
        faults = collapse_faults(circuit).representatives[:40]
        budget = AtpgBudget(
            backtracks_per_fault=6,
            max_frames=4,
            frames_cap=4,
            random_sequences=2,
        )
        results = {
            kernel: run_atpg(
                circuit, faults, budget, engine="serial", kernel=kernel
            )
            for kernel in ("scalar", "dual")
        }
        scalar, dual = results["scalar"], results["dual"]
        assert dual.detected == scalar.detected
        assert dual.aborted == scalar.aborted
        assert dual.untestable == scalar.untestable
        assert dual.backtracks == scalar.backtracks
        assert dual.test_set.to_text() == scalar.test_set.to_text()
        assert dual.kernel == "dual" and scalar.kernel == "scalar"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            PodemEngine(toggle_counter(), kernel="vector")
        with pytest.raises(ValueError):
            run_atpg(toggle_counter(), kernel="vector")


class TestIncrementalResim:
    """Randomized decision/backtrack traces: incremental == full resim."""

    def _compare(self, machine, fresh, frames):
        assert machine.detected() == fresh.detected()
        common = min(len(machine.records), len(fresh.records))
        for frame in range(common):
            assert machine.good_values(frame) == fresh.good_values(frame)
            assert machine.bad_values(frame) == fresh.bad_values(frame)
        if not machine.detected():
            assert len(machine.records) == len(fresh.records) == frames
            assert machine.effect_exists() == fresh.effect_exists()
            assert machine.prune() == fresh.prune()

    @pytest.mark.parametrize("seed", range(6))
    def test_trace_equivalence(self, seed):
        circuit = random_circuit(
            seed + 400, num_inputs=3, num_gates=16, num_dffs=3
        )
        fault = collapse_faults(circuit).representatives[
            seed % len(collapse_faults(circuit).representatives)
        ]
        engine = PodemEngine(circuit, kernel="dual")
        budget = AtpgBudget()
        frames = 4
        rng = random.Random(seed)
        inputs = [[X] * engine.num_inputs for _ in range(frames)]
        machine = _DualMachine(engine, fault, inputs, EffortMeter(budget))
        machine.resim_initial()
        decisions = []
        for _ in range(30):
            if rng.random() < 0.65 or not decisions:
                frame = rng.randrange(frames)
                pi = rng.randrange(engine.num_inputs)
                if inputs[frame][pi] != X:
                    continue
                value = ONE if rng.random() < 0.5 else ZERO
                inputs[frame][pi] = value
                decisions.append((frame, pi, value, False))
                machine.resim_decision(frame, pi, value)
            else:
                # Chronological backtrack, exactly as _search performs it.
                earliest, changed_max = frames, 0
                flipped_any = False
                while decisions:
                    frame, pi, value, flipped = decisions.pop()
                    inputs[frame][pi] = X
                    earliest = min(earliest, frame)
                    changed_max = max(changed_max, frame)
                    if not flipped:
                        inputs[frame][pi] = t_not(value)
                        decisions.append((frame, pi, t_not(value), True))
                        machine.resim_flip(
                            earliest, changed_max, frame, pi, value
                        )
                        flipped_any = True
                        break
                if not flipped_any:
                    break  # exhausted; the engine stops resimulating too
            fresh = _DualMachine(
                engine,
                fault,
                [list(frame) for frame in inputs],
                EffortMeter(budget),
            )
            fresh.resim_initial()
            self._compare(machine, fresh, frames)


class TestEngineSelection:
    def test_single_cpu_forces_serial(self):
        engine, reason = choose_engine(1000, workers=4, cpus=1)
        assert engine == "serial"
        assert "single cpu" in reason

    def test_small_partition_forces_serial(self):
        engine, reason = choose_engine(
            MIN_POOL_FAULTS - 1, workers=4, cpus=8
        )
        assert engine == "serial"
        assert "below threshold" in reason

    def test_large_partition_uses_pool(self):
        engine, reason = choose_engine(MIN_POOL_FAULTS, workers=3, cpus=8)
        assert engine == "process"
        assert "3 workers" in reason

    def test_run_atpg_auto_small_circuit_is_serial(self):
        circuit = resettable_counter()
        budget = AtpgBudget(
            backtracks_per_fault=4,
            max_frames=4,
            frames_cap=4,
            random_sequences=0,
        )
        faults = collapse_faults(circuit).representatives[: MIN_POOL_FAULTS - 2]
        result = run_atpg(circuit, faults, budget, engine="auto")
        assert result.engine == "serial"
        assert result.engine_reason.startswith("auto:")
        assert result.workers == 1

    def test_explicit_engine_reason_recorded(self):
        circuit = resettable_counter()
        budget = AtpgBudget(
            backtracks_per_fault=4,
            max_frames=4,
            frames_cap=4,
            random_sequences=0,
        )
        result = run_atpg(circuit, budget=budget, engine="serial")
        assert result.engine == "serial"
        assert result.engine_reason == "requested"


class TestMeterAccounting:
    def test_dual_resim_counts_frames_and_lanes(self):
        circuit = toggle_counter()
        fault = collapse_faults(circuit).representatives[0]
        engine = PodemEngine(circuit, kernel="dual")
        meter = EffortMeter(AtpgBudget())
        frames = 3
        inputs = [[X] * engine.num_inputs for _ in range(frames)]
        machine = _DualMachine(engine, fault, inputs, meter)
        machine.resim_initial()
        assert len(machine.records) == frames
        # Only unique kernel evaluations count: frames answered from the
        # per-fault step memo (e.g. an all-X trajectory reconverging on
        # itself) cost a dictionary probe, not a simulation.
        stepped = len(engine._step_memo)
        assert 1 <= stepped <= frames
        assert meter.simulations == 1
        # Two machines (good + faulty) per evaluated frame, both lanes wide.
        assert meter.frames_simulated == 2 * stepped
        assert meter.lanes_evaluated == 2 * _DualMachine.WIDTH * stepped

    def test_counters_reach_atpg_result(self):
        circuit = resettable_counter()
        budget = AtpgBudget(
            backtracks_per_fault=4,
            max_frames=4,
            frames_cap=4,
            random_sequences=0,
        )
        result = run_atpg(circuit, budget=budget, engine="serial")
        assert result.simulations > 0
        assert result.frames_simulated >= 2 * result.simulations // 2
        assert result.lanes_evaluated >= result.frames_simulated
