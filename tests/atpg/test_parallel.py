"""Tests for the multiprocess deterministic-phase orchestration.

The contract under test: for a fixed seed, the process-pool engine yields
the **same** detected/untestable/aborted partition, the same test-set
vectors and the same backtrack count as the serial engine whenever the
wall-clock budget is not the binding limit -- and when the budget *is*
exhausted mid-pool, every unprocessed fault lands in ``aborted`` rather
than being silently dropped.
"""

import pytest

from repro.atpg import AtpgBudget, run_atpg
from repro.atpg.parallel import FaultOutcome, default_workers, podem_partitioned
from repro.faults import collapse_faults

from tests.helpers import pipelined_logic, random_circuit, resettable_counter

# Deterministic limits (backtracks, frames) bind; wall clocks are generous.
PARITY = AtpgBudget(
    total_seconds=60.0,
    seconds_per_fault=5.0,
    backtracks_per_fault=60,
    max_frames=6,
    frames_cap=8,
    random_sequences=8,
    random_length=16,
)


def _assert_same_run(serial, pooled):
    assert pooled.detected == serial.detected
    assert pooled.untestable == serial.untestable
    assert pooled.aborted == serial.aborted
    assert pooled.test_set.as_lists() == serial.test_set.as_lists()
    assert pooled.fault_coverage == serial.fault_coverage
    assert pooled.fault_efficiency == serial.fault_efficiency
    assert pooled.backtracks == serial.backtracks
    assert pooled.random_detected == serial.random_detected
    assert pooled.deterministic_detected == serial.deterministic_detected
    assert pooled.search_exhausted == serial.search_exhausted
    assert pooled.budget_aborted == serial.budget_aborted


class TestSerialProcessParity:
    @pytest.mark.parametrize("make", [resettable_counter, pipelined_logic])
    def test_helper_circuits(self, make):
        serial = run_atpg(make(), budget=PARITY, engine="serial")
        pooled = run_atpg(make(), budget=PARITY, engine="process", workers=2)
        _assert_same_run(serial, pooled)
        assert pooled.engine == "process"
        assert pooled.workers == 2
        assert serial.engine == "serial"
        assert serial.workers == 1

    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_netlists(self, seed):
        serial = run_atpg(
            random_circuit(seed + 700, num_inputs=3, num_gates=12, num_dffs=3),
            budget=PARITY,
        )
        pooled = run_atpg(
            random_circuit(seed + 700, num_inputs=3, num_gates=12, num_dffs=3),
            budget=PARITY,
            workers=2,
            engine="process",
        )
        _assert_same_run(serial, pooled)

    def test_paper_circuit(self):
        """One synthesized Table II benchmark, on a fault subsample."""
        from repro.fsm.mcnc import synthesize_benchmark

        circuit = synthesize_benchmark("dk16", "ji", "delay").circuit
        faults = collapse_faults(circuit).representatives[:60]
        budget = AtpgBudget(
            total_seconds=60.0,
            seconds_per_fault=5.0,
            backtracks_per_fault=8,
            frames_cap=6,
            random_sequences=4,
            random_length=16,
        )
        serial = run_atpg(circuit, faults=faults, budget=budget, engine="serial")
        pooled = run_atpg(
            circuit, faults=faults, budget=budget, engine="process", workers=2
        )
        _assert_same_run(serial, pooled)

    def test_worker_count_does_not_change_results(self):
        circuit = random_circuit(777, num_inputs=3, num_gates=12, num_dffs=3)
        runs = [
            run_atpg(
                random_circuit(777, num_inputs=3, num_gates=12, num_dffs=3),
                budget=PARITY,
                engine="process",
                workers=workers,
            )
            for workers in (1, 2, 3)
        ]
        for other in runs[1:]:
            _assert_same_run(runs[0], other)


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_atpg(resettable_counter(), budget=PARITY, engine="threads")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_atpg(
                resettable_counter(), budget=PARITY, engine="process", workers=0
            )

    def test_workers_imply_process_engine(self):
        result = run_atpg(resettable_counter(), budget=PARITY, workers=2)
        assert result.engine == "process"

    def test_default_is_serial(self):
        result = run_atpg(resettable_counter(), budget=PARITY)
        assert result.engine == "serial"

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestAbortAccounting:
    def test_abort_counts_partition_the_aborted_set(self):
        result = run_atpg(
            random_circuit(701, num_inputs=3, num_gates=12, num_dffs=3),
            budget=PARITY,
        )
        assert result.search_exhausted + result.budget_aborted == len(result.aborted)
        assert (
            len(result.detected) + len(result.untestable) + len(result.aborted)
            == result.num_faults
        )

    def test_backtrack_limit_aborts_count_as_budget(self):
        """A one-backtrack budget forces abort-bound searches."""
        budget = AtpgBudget(
            total_seconds=30.0,
            seconds_per_fault=5.0,
            backtracks_per_fault=1,
            frames_cap=4,
            random_sequences=0,
        )
        result = run_atpg(
            random_circuit(702, num_inputs=3, num_gates=14, num_dffs=4),
            budget=budget,
        )
        assert result.search_exhausted + result.budget_aborted == len(result.aborted)


class TestBudgetExhaustionMidPool:
    def test_no_fault_silently_dropped(self):
        """With a sub-millisecond wall budget the pool must still account
        for every fault: whatever was not processed lands in ``aborted``."""
        circuit = random_circuit(703, num_inputs=3, num_gates=16, num_dffs=4)
        budget = AtpgBudget(
            total_seconds=0.001,
            seconds_per_fault=5.0,
            backtracks_per_fault=400,
            random_sequences=0,
        )
        result = run_atpg(circuit, budget=budget, engine="process", workers=2)
        assert (
            len(result.detected) + len(result.untestable) + len(result.aborted)
            == result.num_faults
        )
        assert result.aborted  # nothing was targeted in time
        assert result.budget_aborted == len(result.aborted)

    def test_workers_stop_promptly(self):
        """Exhausted budget must not leave the pool grinding: the whole run
        (including pool teardown) finishes in a small multiple of the
        per-fault deadline, not the full fault-list cost."""
        import time

        circuit = random_circuit(704, num_inputs=4, num_gates=24, num_dffs=5)
        budget = AtpgBudget(
            total_seconds=0.2,
            seconds_per_fault=5.0,
            backtracks_per_fault=400,
            frames_cap=16,
            random_sequences=0,
        )
        start = time.perf_counter()
        result = run_atpg(circuit, budget=budget, engine="process", workers=2)
        elapsed = time.perf_counter() - start
        assert elapsed < 20.0, f"pool did not stop promptly: {elapsed:.1f}s"
        assert (
            len(result.detected) + len(result.untestable) + len(result.aborted)
            == result.num_faults
        )


class TestPodemPartitioned:
    def test_outcomes_align_with_input_order(self):
        circuit = random_circuit(705, num_inputs=3, num_gates=12, num_dffs=3)
        faults = collapse_faults(circuit).representatives
        outcomes = podem_partitioned(
            circuit, faults, PARITY, max_frames=6, workers=2, pool_seconds=30.0
        )
        assert len(outcomes) == len(faults)
        assert all(isinstance(outcome, FaultOutcome) for outcome in outcomes)

    def test_empty_fault_list(self):
        circuit = resettable_counter()
        assert (
            podem_partitioned(
                circuit, [], PARITY, max_frames=4, workers=2, pool_seconds=1.0
            )
            == []
        )

    def test_expired_pool_budget_marks_unattempted(self):
        circuit = random_circuit(706, num_inputs=3, num_gates=12, num_dffs=3)
        faults = collapse_faults(circuit).representatives
        outcomes = podem_partitioned(
            circuit, faults, PARITY, max_frames=6, workers=2, pool_seconds=0.0
        )
        assert len(outcomes) == len(faults)
        assert all(not outcome.attempted for outcome in outcomes)
        assert all(outcome.aborted for outcome in outcomes)
