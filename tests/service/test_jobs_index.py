"""Persistent job index and backpressure: restarts, 429s, compaction.

The acceptance demo of the index: run jobs against one store root, kill
the server, start a new one on the same root -- ``GET /v1/jobs`` still
lists everything, a job that died mid-flight reads ``lost``, resubmits of
finished work land in the store-cached tier, and artifacts of restored
jobs reload lazily.  Plus the :class:`JobIndex` unit behaviours (fold,
compact, torn lines) and the queue high-water mark turning overload into
429 + ``Retry-After`` while cached traffic keeps flowing.
"""

import json
import os

import pytest

from repro.service import BackgroundServer, JobIndex, ServiceClient, ServiceError
from repro.service.index import discover_indexes
from repro.store.core import ArtifactStore
from tests.service.test_service_e2e import TINY_REQUEST


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(root=str(tmp_path / "store"))


class TestJobIndexUnit:
    def test_fold_later_lines_win(self, tmp_path):
        index = JobIndex(str(tmp_path / "idx.jsonl"))
        index.append({"event": "submit", "id": "j1", "status": "queued", "key": "k"})
        index.append({"event": "end", "id": "j1", "status": "done", "finished": 5.0})
        index.append({"event": "submit", "id": "j2", "status": "queued", "key": "k2"})
        jobs = index.load()
        assert set(jobs) == {"j1", "j2"}
        assert jobs["j1"]["status"] == "done"
        assert jobs["j1"]["key"] == "k"  # earlier fields survive the fold
        assert jobs["j1"]["finished"] == 5.0
        assert jobs["j2"]["status"] == "queued"

    def test_torn_line_skipped(self, tmp_path):
        path = str(tmp_path / "idx.jsonl")
        index = JobIndex(path)
        index.append({"event": "submit", "id": "j1", "status": "queued"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "end", "id": "j1", "stat')  # torn write
        assert index.load()["j1"]["status"] == "queued"

    def test_compact_folds_and_bounds(self, tmp_path):
        index = JobIndex(str(tmp_path / "idx.jsonl"))
        for number in range(6):
            job_id = f"j{number}"
            index.append(
                {"event": "submit", "id": job_id, "status": "queued",
                 "submitted": float(number)}
            )
            index.append({"event": "end", "id": job_id, "status": "done"})
        assert index.line_count() == 12
        kept = index.compact(keep=4, force=True)
        assert kept == 4
        assert index.line_count() == 4
        jobs = index.load()
        assert set(jobs) == {"j2", "j3", "j4", "j5"}  # newest survive
        assert all(doc["status"] == "done" for doc in jobs.values())
        # Below the slack threshold nothing rewrites without force.
        assert index.compact(keep=4) == -1

    def test_append_survives_concurrent_compact_replace(self, tmp_path):
        index = JobIndex(str(tmp_path / "idx.jsonl"))
        index.append({"event": "submit", "id": "j1", "status": "done",
                      "submitted": 1.0})
        index.compact(force=True)
        index.append({"event": "submit", "id": "j2", "status": "done",
                      "submitted": 2.0})  # lands in the replaced file
        assert set(index.load()) == {"j1", "j2"}


class TestRestart:
    def test_jobs_survive_restart_and_resubmit_is_cached(self, store):
        with BackgroundServer(store=store, pool=1) as server:
            client = ServiceClient(port=server.port)
            job = client.submit(TINY_REQUEST)
            assert job["disposition"] == "fresh"
            client.wait(job["id"], timeout=120)
            result = client.artifact(job["id"], "result")
            job_id = job["id"]

        with BackgroundServer(store=ArtifactStore(root=store.root), pool=1) as server:
            client = ServiceClient(port=server.port)
            listed = {doc["id"]: doc for doc in client.jobs()["jobs"]}
            assert job_id in listed
            assert listed[job_id]["status"] == "done"
            assert listed[job_id]["restored"] is True
            assert client.stats()["metrics"]["restored"] >= 1
            # The restored job's artifact reloads lazily from the store...
            assert client.artifact(job_id, "result") == result
            # ...and a resubmit of the same work hits the cached tier.
            again = client.submit(TINY_REQUEST)
            assert again["disposition"] == "cached"
            assert client.artifact(again["id"], "result") == result
            # New ids continue past the restored ones -- no collisions.
            assert again["id"] != job_id
            assert again["id"] not in listed

    def test_live_job_restores_as_lost(self, store):
        index = JobIndex.for_store(store)
        index.append(
            {"event": "submit", "id": "j00007", "key": "deadbeef",
             "label": "interrupted", "tenant": None, "status": "running",
             "dedup": "fresh", "submitted": 123.0}
        )
        with BackgroundServer(store=store, pool=1) as server:
            client = ServiceClient(port=server.port)
            doc = client.job("j00007")
            assert doc["status"] == "lost"
            assert doc["restored"] is True
            assert "restart" in doc["error"]
            # Terminal: a lost job cannot be waited into another state.
            assert client.wait("j00007", timeout=5)["status"] == "lost"
            # Ids resume past the restored one.
            fresh = client.submit(TINY_REQUEST)
            assert int(fresh["id"][1:]) > 7

    def test_tenant_indexes_are_scoped(self, store):
        request = {**TINY_REQUEST, "tenant": "team-a"}
        with BackgroundServer(store=store, pool=1) as server:
            client = ServiceClient(port=server.port)
            job = client.submit(request)
            client.wait(job["id"], timeout=120)
        tenant_index = os.path.join(
            store.root, "tenants", "team-a", "jobs-index.jsonl"
        )
        assert os.path.isfile(tenant_index)
        paths = [index.path for index in discover_indexes(store.root)]
        assert tenant_index in paths
        # And a restart over the root picks the tenant job up too.
        with BackgroundServer(store=ArtifactStore(root=store.root), pool=1) as server:
            client = ServiceClient(port=server.port)
            listed = {doc["id"]: doc for doc in client.jobs()["jobs"]}
            assert listed[job["id"]]["tenant"] == "team-a"

    def test_gc_compacts_indexes(self, store):
        with BackgroundServer(store=store, pool=1) as server:
            client = ServiceClient(port=server.port)
            job = client.submit(TINY_REQUEST)
            client.wait(job["id"], timeout=120)
            # Cached resubmits are deliberately NOT indexed (serving
            # records, not work) -- the log holds submit + end lines for
            # the one fresh job only.
            for _ in range(12):
                assert client.submit(TINY_REQUEST)["disposition"] == "cached"
            manager = server.manager
            report = manager.compact_indexes(force=True)
            index_path = store.jobs_index_path
            assert report[index_path] >= 1
            index = JobIndex(index_path)
            assert index.line_count() == report[index_path]
            with open(index_path, encoding="utf-8") as handle:
                events = {json.loads(line)["event"] for line in handle}
            assert events == {"snapshot"}


class TestBackpressure:
    def test_fresh_submits_past_high_water_get_429(self, store):
        # High water 0: every fresh submission is shed immediately.
        with BackgroundServer(store=store, pool=1, queue_high_water=0) as server:
            client = ServiceClient(port=server.port)
            with pytest.raises(ServiceError) as excinfo:
                client.submit(TINY_REQUEST)
            error = excinfo.value
            assert error.status == 429
            assert error.retry_after is not None and error.retry_after >= 1.0
            stats = client.stats()
            assert stats["queue_high_water"] == 0
            assert stats["metrics"]["rejected"] == 1
            assert stats["http"]["rejected_429"] == 1

    def test_retry_after_header_is_integral_seconds(self, store):
        import http.client

        with BackgroundServer(store=store, pool=1, queue_high_water=0) as server:
            connection = http.client.HTTPConnection("127.0.0.1", server.port)
            try:
                connection.request(
                    "POST", "/v1/jobs", json.dumps(TINY_REQUEST).encode(),
                    {"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                assert response.status == 429
                retry_after = response.getheader("Retry-After")
                assert retry_after is not None
                assert int(retry_after) >= 1
                doc = json.loads(response.read())
                assert doc["queue_high_water"] == 0
            finally:
                connection.close()

    def test_cached_and_coalesced_bypass_backpressure(self, store):
        # Warm the store with an unbounded server first.
        with BackgroundServer(store=store, pool=1) as server:
            client = ServiceClient(port=server.port)
            job = client.submit(TINY_REQUEST)
            client.wait(job["id"], timeout=120)
            result = client.artifact(job["id"], "result")
        # A fully-shedding server still answers cached work.
        with BackgroundServer(
            store=ArtifactStore(root=store.root), pool=1, queue_high_water=0
        ) as server:
            client = ServiceClient(port=server.port)
            cached = client.submit(TINY_REQUEST)
            assert cached["disposition"] == "cached"
            assert client.artifact(cached["id"], "result") == result
            other = {**TINY_REQUEST, "tenant": "team-x"}
            with pytest.raises(ServiceError) as excinfo:
                client.submit(other)
            assert excinfo.value.status == 429

    def test_client_submit_retries_on_429(self, store):
        # retries exhausted -> the 429 propagates (with retry_after).
        with BackgroundServer(store=store, pool=1, queue_high_water=0) as server:
            client = ServiceClient(port=server.port)
            before = client.stats()["metrics"]["rejected"]
            with pytest.raises(ServiceError) as excinfo:
                client.submit(TINY_REQUEST, retries=2)
            assert excinfo.value.status == 429
            # Three attempts hit the server: original plus two retries.
            assert client.stats()["metrics"]["rejected"] == before + 3
