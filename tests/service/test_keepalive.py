"""HTTP/1.1 connection behaviour: keep-alive, pipelining, framing, streams.

These tests talk to the server at the socket level (plus through
:class:`ServiceClient` for the reuse/reconnect paths), because the
properties under test live *below* the JSON API: does one TCP connection
carry many requests, do pipelined requests come back in order, does a
mangled frame get a well-formed 400 instead of a dropped socket, does an
event-stream consumer that dies mid-stream leave anything running behind.
"""

import socket
import time

import pytest

from repro.service import BackgroundServer, ServiceClient
from tests.service.test_service_e2e import TABLE2_REQUEST, TINY_REQUEST


def _connect(server, timeout=30.0):
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=timeout)
    sock.settimeout(timeout)
    return sock


def _read_response(sock, leftover=b""):
    """One HTTP response off a raw socket: (status, headers, body,
    trailing).  ``trailing`` holds bytes past this response (the start of
    a pipelined successor) -- pass it back in as ``leftover``."""
    data = leftover
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError(f"EOF mid-headers after {len(data)} bytes")
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers["content-length"])
    body = rest
    while len(body) < length:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("EOF mid-body")
        body += chunk
    return status, headers, body[:length], body[length:]


def _get(path, version="HTTP/1.1", extra=""):
    return (
        f"GET {path} {version}\r\nHost: x\r\n{extra}\r\n".encode("ascii")
    )


class TestKeepAlive:
    def test_many_requests_one_connection(self):
        with BackgroundServer(store=None, pool=1) as server:
            client = ServiceClient(port=server.port)
            for _ in range(10):
                assert client.health() == {"ok": True}
            stats = client.stats()
            http = stats["http"]
            assert http["connections_total"] == 1
            assert http["requests_total"] == 11
            assert http["keepalive_requests"] == 10
            assert client.reconnects == 0

    def test_connection_close_mode_opens_per_request(self):
        with BackgroundServer(store=None, pool=1) as server:
            client = ServiceClient(port=server.port, keep_alive=False)
            for _ in range(3):
                client.health()
            http = client.stats()["http"]
            assert http["connections_total"] == 4
            assert http["keepalive_requests"] == 0

    def test_keepalive_headers_present(self):
        with BackgroundServer(store=None, pool=1) as server:
            sock = _connect(server)
            try:
                sock.sendall(_get("/healthz"))
                status, headers, body, _ = _read_response(sock)
                assert status == 200
                assert headers["connection"] == "keep-alive"
                assert "timeout=" in headers["keep-alive"]
                assert "max=" in headers["keep-alive"]
                # The connection is genuinely reusable.
                sock.sendall(_get("/healthz"))
                status, _, _, _ = _read_response(sock)
                assert status == 200
            finally:
                sock.close()

    def test_pipelined_requests_answered_in_order(self):
        with BackgroundServer(store=None, pool=1) as server:
            sock = _connect(server)
            try:
                # Two requests in one segment, before reading anything.
                sock.sendall(_get("/healthz") + _get("/v1/stats"))
                first = _read_response(sock)
                second = _read_response(sock, leftover=first[3])
                assert first[0] == 200 and b'"ok": true' in first[2]
                assert second[0] == 200 and b'"pool"' in second[2]
            finally:
                sock.close()
            client = ServiceClient(port=server.port)
            assert client.stats()["http"]["pipelined_requests"] >= 1

    def test_http10_defaults_to_close(self):
        with BackgroundServer(store=None, pool=1) as server:
            sock = _connect(server)
            try:
                sock.sendall(_get("/healthz", version="HTTP/1.0"))
                status, headers, _, trailing = _read_response(sock)
                assert status == 200
                assert headers["connection"] == "close"
                assert trailing == b""
                assert sock.recv(1024) == b""  # server closed
            finally:
                sock.close()

    def test_explicit_connection_close_honoured(self):
        with BackgroundServer(store=None, pool=1) as server:
            sock = _connect(server)
            try:
                sock.sendall(_get("/healthz", extra="Connection: close\r\n"))
                status, headers, _, _ = _read_response(sock)
                assert status == 200
                assert headers["connection"] == "close"
                assert sock.recv(1024) == b""
            finally:
                sock.close()

    def test_max_requests_cap_closes_and_client_recovers(self):
        with BackgroundServer(store=None, pool=1, max_requests=2) as server:
            client = ServiceClient(port=server.port)
            for _ in range(6):
                assert client.health() == {"ok": True}
            http = client.stats()["http"]
            # Every connection served exactly two requests then closed
            # (announced via Connection: close, so no stale replays).
            assert http["max_requests_closed"] >= 2
            assert http["connections_total"] >= 3
            assert client.reconnects == 0

    def test_idle_timeout_closes_and_client_reconnects(self):
        with BackgroundServer(store=None, pool=1, idle_timeout=0.2) as server:
            client = ServiceClient(port=server.port)
            assert client.health() == {"ok": True}
            time.sleep(0.8)  # server idle-closes the kept connection
            assert client.health() == {"ok": True}  # transparent replay
            assert client.reconnects == 1
            http = client.stats()["http"]
            assert http["idle_closed"] >= 1


class TestFraming:
    def _expect_400(self, server, raw, needle):
        sock = _connect(server)
        try:
            sock.sendall(raw)
            try:
                sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass
            status, headers, body, _ = _read_response(sock)
            assert status == 400
            assert headers["connection"] == "close"
            assert needle in body
            assert sock.recv(1024) == b""
        finally:
            sock.close()

    def test_non_integer_content_length_is_400(self):
        with BackgroundServer(store=None, pool=1) as server:
            self._expect_400(
                server,
                b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: banana\r\n\r\n",
                b"not an integer",
            )

    def test_negative_content_length_is_400(self):
        with BackgroundServer(store=None, pool=1) as server:
            self._expect_400(
                server,
                b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: -5\r\n\r\n",
                b"negative",
            )

    def test_truncated_body_is_400(self):
        with BackgroundServer(store=None, pool=1) as server:
            self._expect_400(
                server,
                b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 500\r\n\r\n{\"circuit\":",
                b"truncated",
            )

    def test_malformed_request_line_is_400(self):
        with BackgroundServer(store=None, pool=1) as server:
            self._expect_400(server, b"HELLO\r\n\r\n", b"request line")

    def test_oversized_body_is_413(self):
        from repro.service.server import MAX_BODY_BYTES

        with BackgroundServer(store=None, pool=1) as server:
            sock = _connect(server)
            try:
                sock.sendall(
                    b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
                    + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
                )
                status, _, _, _ = _read_response(sock)
                assert status == 413
            finally:
                sock.close()

    def test_framing_error_counted_not_crashed(self):
        with BackgroundServer(store=None, pool=1) as server:
            self._expect_400(
                server,
                b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: nope\r\n\r\n",
                b"integer",
            )
            # The listener survives and keeps serving.
            client = ServiceClient(port=server.port)
            assert client.health() == {"ok": True}
            assert client.stats()["http"]["framing_errors"] == 1

    def test_bad_json_with_good_framing_keeps_connection(self):
        """A request-level error (valid frame, invalid payload) answers
        400 *without* sacrificing the connection."""
        with BackgroundServer(store=None, pool=1) as server:
            sock = _connect(server)
            try:
                body = b"this is not json"
                sock.sendall(
                    b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                status, headers, _, _ = _read_response(sock)
                assert status == 400
                assert headers["connection"] == "keep-alive"
                sock.sendall(_get("/healthz"))
                assert _read_response(sock)[0] == 200
            finally:
                sock.close()


class TestEventStreams:
    def test_slow_consumer_still_gets_full_stream(self, tmp_path):
        from repro.store.core import ArtifactStore

        store = ArtifactStore(root=str(tmp_path / "store"))
        with BackgroundServer(store=store, pool=1) as server:
            client = ServiceClient(port=server.port)
            job = client.submit(TABLE2_REQUEST)
            sock = _connect(server)
            try:
                sock.sendall(_get(f"/v1/jobs/{job['id']}/events"))
                # Read tiny chunks with deliberate pauses: the server must
                # tolerate a consumer far slower than the producer.
                data = b""
                while True:
                    try:
                        chunk = sock.recv(256)
                    except socket.timeout:
                        pytest.fail("stream stalled for a slow consumer")
                    if not chunk:
                        break
                    data += chunk
                    time.sleep(0.02)
            finally:
                sock.close()
            lines = [l for l in data.split(b"\n") if l.startswith(b"{")]
            assert any(b'"job_end"' in line for line in lines)
            assert any(b'"stage_start"' in line for line in lines)
            final = client.wait(job["id"], timeout=120)
            assert final["status"] == "done"

    def test_midstream_disconnect_leaks_nothing(self, tmp_path):
        from repro.store.core import ArtifactStore

        store = ArtifactStore(root=str(tmp_path / "store"))
        with BackgroundServer(store=store, pool=1) as server:
            client = ServiceClient(port=server.port)
            job = client.submit(TABLE2_REQUEST)
            sock = _connect(server)
            sock.sendall(_get(f"/v1/jobs/{job['id']}/events"))
            sock.recv(256)  # stream established
            sock.close()  # consumer dies mid-stream
            final = client.wait(job["id"], timeout=120)
            assert final["status"] == "done"
            # The dead stream's connection unwinds: within a grace
            # period only the client's own keep-alive connection is open,
            # so the journal tail did not outlive its consumer.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if client.stats()["http"]["connections_open"] <= 1:
                    break
                time.sleep(0.05)
            assert client.stats()["http"]["connections_open"] <= 1
            assert client.stats()["http"]["event_streams"] == 1

    def test_storeless_stream_is_terminal_event_only(self):
        with BackgroundServer(store=None, pool=1) as server:
            client = ServiceClient(port=server.port)
            job = client.submit(TINY_REQUEST)
            client.wait(job["id"], timeout=120)
            events = list(client.events(job["id"]))
            assert [e["event"] for e in events] == ["job_end"]
            assert events[-1]["status"] == "done"
