"""Request-schema validation and dedup-fingerprint semantics."""

import pytest

from repro.service.schema import SchemaError, parse_request

BENCH_SOURCE = """\
INPUT(a)
OUTPUT(z)
q = DFF(g1)
g1 = AND(a, q)
z = NOT(g1)
"""

BUILDER_CIRCUIT = {
    "format": "builder",
    "name": "tiny",
    "signals": [
        {"op": "input", "name": "a"},
        {"op": "and", "name": "g1", "args": ["a", "q"]},
        {"op": "dff", "name": "q", "args": ["g1"]},
        {"op": "not", "name": "g2", "args": ["g1"]},
    ],
    "outputs": [["z", "g2"]],
}


def _table2(fsm="s510", style="jo", script="rugged"):
    return {"circuit": {"format": "table2", "fsm": fsm, "style": style, "script": script}}


class TestCircuitFormats:
    def test_table2_resolves_known_spec(self):
        request = parse_request(_table2("pma", "jo", "delay"))
        assert request.spec is not None
        assert request.spec.forward_stem_moves == 1  # the paper names pma.jo.sd
        assert request.circuit is None
        assert request.label == "pma.jo.sd"

    def test_table2_normalizes_script_codes(self):
        sd = parse_request(_table2("dk16", "ji", "sd"))
        delay = parse_request(_table2("dk16", "ji", "delay"))
        assert sd.spec == delay.spec

    def test_table2_unknown_fsm_still_parses(self):
        request = parse_request(_table2("nosuch", "ji", "delay"))
        assert request.spec.forward_stem_moves == 0

    def test_table2_rejects_bad_style(self):
        with pytest.raises(SchemaError, match="style"):
            parse_request(_table2(style="xx"))

    def test_bench_compiles_to_circuit(self):
        request = parse_request(
            {"circuit": {"format": "bench", "source": BENCH_SOURCE, "name": "tiny"}}
        )
        assert request.spec is None
        assert request.circuit.num_registers() == 1
        assert request.label == "tiny"

    def test_bench_syntax_error_is_schema_error(self):
        with pytest.raises(SchemaError, match="bench"):
            parse_request({"circuit": {"format": "bench", "source": "g = WAT(a)"}})

    def test_verilog_compiles_to_circuit(self):
        from repro.circuit import parse_bench, write_verilog

        source = write_verilog(parse_bench(BENCH_SOURCE, name="tiny"))
        request = parse_request(
            {"circuit": {"format": "verilog", "source": source, "name": "tiny"}}
        )
        assert request.circuit.num_registers() == 1

    def test_builder_compiles_to_circuit(self):
        request = parse_request({"circuit": BUILDER_CIRCUIT})
        assert request.circuit.name == "tiny"
        assert request.circuit.num_registers() == 1

    def test_builder_rejects_unknown_op(self):
        circuit = dict(BUILDER_CIRCUIT, signals=[{"op": "frob", "name": "x"}])
        with pytest.raises(SchemaError, match="frob"):
            parse_request({"circuit": circuit})

    def test_unknown_format_rejected(self):
        with pytest.raises(SchemaError, match="format"):
            parse_request({"circuit": {"format": "edif"}})

    def test_missing_circuit_rejected(self):
        with pytest.raises(SchemaError, match="circuit"):
            parse_request({})

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(SchemaError, match="frobnicate"):
            parse_request({**_table2(), "frobnicate": 1})


class TestBudgetAndOptions:
    def test_budget_fields_apply(self):
        request = parse_request(
            {**_table2(), "budget": {"total_seconds": 5.0, "seed": 7}}
        )
        assert request.budget.total_seconds == 5.0
        assert request.budget.seed == 7

    def test_budget_unknown_field_rejected(self):
        with pytest.raises(SchemaError, match="wallclock"):
            parse_request({**_table2(), "budget": {"wallclock": 1}})

    def test_budget_non_numeric_rejected(self):
        with pytest.raises(SchemaError, match="total_seconds"):
            parse_request({**_table2(), "budget": {"total_seconds": "fast"}})

    def test_options_apply(self):
        request = parse_request(
            {
                **_table2(),
                "options": {"workers": 2, "kernel": "scalar", "verify": True},
            }
        )
        assert request.workers == 2
        assert request.kernel == "scalar"
        assert request.verify is True

    def test_options_unknown_key_rejected(self):
        with pytest.raises(SchemaError, match="turbo"):
            parse_request({**_table2(), "options": {"turbo": True}})

    def test_options_bad_kernel_rejected(self):
        with pytest.raises(SchemaError, match="kernel"):
            parse_request({**_table2(), "options": {"kernel": "warp"}})

    def test_options_bad_workers_rejected(self):
        with pytest.raises(SchemaError, match="workers"):
            parse_request({**_table2(), "options": {"workers": 0}})

    def test_invalid_tenant_rejected(self):
        with pytest.raises(SchemaError, match="tenant"):
            parse_request({**_table2(), "tenant": "../escape"})

    def test_default_tenant_applies_when_absent(self):
        request = parse_request(_table2(), default_tenant="team-a")
        assert request.tenant == "team-a"
        explicit = parse_request({**_table2(), "tenant": "team-b"}, "team-a")
        assert explicit.tenant == "team-b"


class TestFingerprint:
    def test_execution_knobs_do_not_change_the_fingerprint(self):
        base = parse_request(_table2()).fingerprint()
        tuned = parse_request(
            {
                **_table2(),
                "options": {"workers": 4, "kernel": "scalar", "backend": "bigint"},
            }
        ).fingerprint()
        assert tuned == base  # bit-identical results => same work

    def test_budget_changes_the_fingerprint(self):
        base = parse_request(_table2()).fingerprint()
        longer = parse_request(
            {**_table2(), "budget": {"total_seconds": 60.0}}
        ).fingerprint()
        assert longer != base

    def test_verify_changes_the_fingerprint(self):
        base = parse_request(_table2()).fingerprint()
        verified = parse_request(
            {**_table2(), "options": {"verify": True}}
        ).fingerprint()
        assert verified != base

    def test_equivalent_netlists_share_a_fingerprint(self):
        bench = parse_request(
            {"circuit": {"format": "bench", "source": BENCH_SOURCE, "name": "a"}}
        ).fingerprint()
        again = parse_request(
            {
                "circuit": {
                    "format": "bench",
                    "source": BENCH_SOURCE + "\n# trailing comment\n",
                    "name": "b",
                }
            }
        ).fingerprint()
        assert bench == again  # digest identity, not text identity

    def test_different_circuits_differ(self):
        table2 = parse_request(_table2()).fingerprint()
        bench = parse_request(
            {"circuit": {"format": "bench", "source": BENCH_SOURCE}}
        ).fingerprint()
        assert table2 != bench
