"""End-to-end service tests: a real HTTP server, in process.

The acceptance demo of the service PR: start the server against a store,
POST a Table II circuit spec, watch journal events stream while the flow
runs, fetch the test-set artifact, and POST the identical request again --
the second answer must come from the store (no stages executed) and be
byte-identical.  Plus the surrounding behaviours: coalescing, cancelling,
tiers across *two* servers sharing one root, storeless operation, and
input validation over the wire.
"""

import json

import pytest

from repro.atpg.budget import AtpgBudget
from repro.pipeline import FlowPipeline
from repro.service import BackgroundServer, ServiceClient, ServiceError
from repro.store.core import ArtifactStore

TINY_BENCH = """\
INPUT(a)
OUTPUT(z)
q = DFF(g1)
g1 = AND(a, q)
z = NOT(g1)
"""

TINY_REQUEST = {
    "circuit": {"format": "bench", "source": TINY_BENCH, "name": "tiny"},
    "budget": {"total_seconds": 5.0, "random_sequences": 8, "random_length": 8},
}

TABLE2_REQUEST = {
    "circuit": {"format": "table2", "fsm": "dk16", "style": "ji", "script": "sd"},
    "budget": {"total_seconds": 2.0},
}


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(root=str(tmp_path / "service-store"))


def _client(server):
    return ServiceClient(port=server.port)


class TestEndToEnd:
    def test_submit_stream_fetch_and_cached_resubmit(self, store):
        """The PR's demo path, plus bit-identity against a direct run."""
        with BackgroundServer(store=store, pool=2) as server:
            client = _client(server)
            assert client.health() == {"ok": True}

            first = client.submit(TABLE2_REQUEST)
            assert first["disposition"] == "fresh"
            events = list(client.events(first["id"]))  # streams until job_end
            kinds = [event["event"] for event in events]
            assert "stage_start" in kinds
            assert kinds[-1] == "job_end"
            assert events[-1]["status"] == "done"

            final = client.wait(first["id"], timeout=120)
            assert final["status"] == "done"
            testset = client.artifact(first["id"], "testset")
            result = client.artifact(first["id"], "result")
            bench = client.artifact(first["id"], "bench")
            assert bench.startswith(b"#")

            # Identical second POST: idempotent -- the canonical done job
            # comes back from the in-memory tier, no stages run.
            second = client.submit(TABLE2_REQUEST)
            assert second["disposition"] == "cached"
            assert second["status"] == "done"
            assert second["id"] == first["id"]
            assert client.artifact(second["id"], "result") == result
            assert client.artifact(second["id"], "testset") == testset

            stats = client.stats()
            assert stats["metrics"]["dedup"]["cached"] == 1
            assert stats["metrics"]["dedup"]["cached_memory"] == 1
            assert stats["metrics"]["latency_seconds"]["fresh"]["count"] == 1

        # Bit-identity: the service's derived test set equals a direct
        # FlowPipeline run with no store at all (the engines are seeded
        # and deterministic; the service adds transport, not variance).
        pipeline = FlowPipeline()
        from repro.core.experiments import TABLE2_CIRCUITS

        spec = next(s for s in TABLE2_CIRCUITS if s.name == "dk16.ji.sd")
        direct = pipeline.run_spec(spec, AtpgBudget(total_seconds=2.0))
        assert testset.decode("utf-8") == direct.flow.derived_test_set.to_text()

    def test_coalescing_while_running(self, store):
        with BackgroundServer(store=store, pool=1) as server:
            client = _client(server)
            first = client.submit(TABLE2_REQUEST)
            assert first["disposition"] == "fresh"
            repeat = client.submit(TABLE2_REQUEST)
            assert repeat["disposition"] == "coalesced"
            assert repeat["id"] == first["id"]
            final = client.wait(first["id"], timeout=120)
            assert final["status"] == "done"
            assert final["coalesced_hits"] == 1

    def test_cancel_queued_job(self, store):
        with BackgroundServer(store=store, pool=1) as server:
            client = _client(server)
            running = client.submit(TABLE2_REQUEST)
            queued = client.submit(TINY_REQUEST)
            assert queued["id"] != running["id"]
            cancelled = client.cancel(queued["id"])
            assert cancelled["status"] == "cancelled"
            with pytest.raises(ServiceError) as excinfo:
                client.artifact(queued["id"], "result")
            assert excinfo.value.status == 409
            # The running job is unaffected by its neighbour's cancellation.
            assert client.wait(running["id"], timeout=120)["status"] == "done"

    def test_two_servers_share_one_store(self, store):
        """Dedup works across processes sharing a root, not just within."""
        with BackgroundServer(store=store, pool=1) as first_server:
            first_client = _client(first_server)
            job = first_client.submit(TINY_REQUEST)
            first_client.wait(job["id"], timeout=120)
            result = first_client.artifact(job["id"], "result")
        second_store = ArtifactStore(root=store.root)
        with BackgroundServer(store=second_store, pool=1) as second_server:
            second_client = _client(second_server)
            cached = second_client.submit(TINY_REQUEST)
            assert cached["disposition"] == "cached"
            assert second_client.artifact(cached["id"], "result") == result


class TestStorelessAndFormats:
    def test_storeless_server_computes_and_serves_from_memory(self):
        with BackgroundServer(store=None, pool=1) as server:
            client = _client(server)
            job = client.submit(TINY_REQUEST)
            assert job["disposition"] == "fresh"
            final = client.wait(job["id"], timeout=120)
            assert final["status"] == "done"
            assert final["journal"] is None
            assert client.artifact(job["id"], "testset")
            # No journal => the stream is just the terminal event.
            assert [e["event"] for e in client.events(job["id"])] == ["job_end"]
            # An identical resubmit dedups against the in-memory job
            # table even with no store behind the server -- idempotent,
            # so the canonical job comes back.
            repeat = client.submit(TINY_REQUEST)
            assert repeat["disposition"] == "cached"
            assert repeat["id"] == job["id"]
            stats = client.stats()
            assert stats["metrics"]["dedup"]["cached_memory"] == 1

    def test_builder_and_verilog_formats_run(self, store):
        from repro.circuit import parse_bench, write_verilog

        verilog = write_verilog(parse_bench(TINY_BENCH, name="tiny"))
        builder_request = {
            "circuit": {
                "format": "builder",
                "name": "tiny2",
                "signals": [
                    {"op": "input", "name": "a"},
                    {"op": "and", "name": "g1", "args": ["a", "q"]},
                    {"op": "dff", "name": "q", "args": ["g1"]},
                    {"op": "not", "name": "g2", "args": ["g1"]},
                ],
                "outputs": [["z", "g2"]],
            },
            "budget": TINY_REQUEST["budget"],
        }
        verilog_request = {
            "circuit": {"format": "verilog", "source": verilog, "name": "tiny"},
            "budget": TINY_REQUEST["budget"],
        }
        with BackgroundServer(store=store, pool=2) as server:
            client = _client(server)
            jobs = [client.submit(builder_request), client.submit(verilog_request)]
            for job in jobs:
                assert client.wait(job["id"], timeout=120)["status"] == "done"
            summaries = client.jobs()["jobs"]
            assert {doc["status"] for doc in summaries} == {"done"}

    def test_tenant_namespaces_isolate_dedup(self, store):
        request_a = {**TINY_REQUEST, "tenant": "team-a"}
        request_b = {**TINY_REQUEST, "tenant": "team-b"}
        with BackgroundServer(store=store, pool=1) as server:
            client = _client(server)
            job = client.submit(request_a)
            client.wait(job["id"], timeout=120)
            # Same work, same tenant: cached.  Different tenant: fresh --
            # tenant namespaces do not leak artifacts into each other.
            assert client.submit(request_a)["disposition"] == "cached"
            fresh = client.submit(request_b)
            assert fresh["disposition"] == "fresh"
            client.wait(fresh["id"], timeout=120)


class TestValidationOverTheWire:
    def test_not_json_is_400(self, store):
        import http.client

        with BackgroundServer(store=store, pool=1) as server:
            connection = http.client.HTTPConnection("127.0.0.1", server.port)
            try:
                connection.request(
                    "POST", "/v1/jobs", b"this is not json",
                    {"Connection": "close"},
                )
                response = connection.getresponse()
                assert response.status == 400
                assert b"JSON" in response.read()
            finally:
                connection.close()

    def test_schema_error_is_400_with_message(self, store):
        with BackgroundServer(store=store, pool=1) as server:
            client = _client(server)
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"circuit": {"format": "edif"}})
            assert excinfo.value.status == 400
            assert "format" in excinfo.value.message

    def test_unknown_job_is_404(self, store):
        with BackgroundServer(store=store, pool=1) as server:
            client = _client(server)
            with pytest.raises(ServiceError) as excinfo:
                client.job("j99999")
            assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, store):
        with BackgroundServer(store=store, pool=1) as server:
            client = _client(server)
            with pytest.raises(ServiceError) as excinfo:
                client._json("GET", "/v2/everything")
            assert excinfo.value.status == 404

    def test_unknown_artifact_name_is_404(self, store):
        with BackgroundServer(store=store, pool=1) as server:
            client = _client(server)
            job = client.submit(TINY_REQUEST)
            client.wait(job["id"], timeout=120)
            with pytest.raises(ServiceError) as excinfo:
                client.artifact(job["id"], "blueprints")
            assert excinfo.value.status == 404

    def test_stats_shape(self, store):
        with BackgroundServer(store=store, pool=3) as server:
            stats = _client(server).stats()
            assert stats["pool"] == 3
            assert stats["queue_depth"] == 0
            assert stats["store"]["root"] == store.root
            assert set(stats["metrics"]["dedup"]) == {
                "coalesced",
                "cached",
                "cached_memory",
            }
            assert stats["queue_high_water"] is None
            assert stats["metrics"]["rejected"] == 0
            assert stats["http"]["connections_total"] >= 1
