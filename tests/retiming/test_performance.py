"""Tests for the performance-style (register-redistribution) retiming."""

import pytest

from repro.circuit import validate
from repro.retiming import (
    Retiming,
    backward_cut_retiming,
    performance_retiming,
    register_fanin_cone,
    state_stems,
)
from repro.simulation import SequentialSimulator

from tests.helpers import pipelined_logic, random_circuit, resettable_counter


class TestRegisterFaninCone:
    def test_counter_cone(self):
        circuit = resettable_counter()
        cone = register_fanin_cone(circuit)
        # The AND gates feeding the flip-flops are in the cone; the output
        # side (z0/z1 observation) is not.
        assert "n0" in cone
        assert "n1" in cone

    def test_depth_truncation_monotone(self):
        circuit = resettable_counter()
        shallow = register_fanin_cone(circuit, depth=1)
        deep = register_fanin_cone(circuit, depth=3)
        full = register_fanin_cone(circuit)
        assert shallow <= deep <= full

    def test_blocked_vertices_excluded(self):
        circuit = resettable_counter()
        full = register_fanin_cone(circuit)
        victim = next(iter(full))
        cone = register_fanin_cone(circuit, blocked={victim})
        assert victim not in cone

    def test_cut_is_always_legal(self):
        for seed in range(5):
            circuit = random_circuit(seed + 900, num_gates=10, num_dffs=3)
            retiming = backward_cut_retiming(circuit)
            assert retiming.is_legal(), seed


class TestPerformanceRetiming:
    def test_register_growth(self):
        circuit = resettable_counter()
        result = performance_retiming(circuit, backward_passes=2)
        assert result.retimed_circuit.num_registers() > circuit.num_registers()
        validate(result.retimed_circuit)

    def test_composition_is_single_retiming(self):
        circuit = resettable_counter()
        result = performance_retiming(circuit, backward_passes=2)
        # Applying the composed labels directly must reproduce the circuit.
        again = result.retiming.apply()
        assert again.weights() == result.retimed_circuit.weights()

    def test_forward_stem_moves_recorded(self):
        circuit = pipelined_logic()
        result = performance_retiming(
            circuit, backward_passes=1, forward_stem_moves=1
        )
        if result.forward_stem_moves:
            assert result.retiming.max_forward_moves() >= 1

    def test_zero_passes_identity_without_forward(self):
        circuit = resettable_counter()
        result = performance_retiming(circuit, backward_passes=0)
        assert result.retiming.is_identity()

    @pytest.mark.parametrize("seed", range(4))
    def test_behaviour_preserved(self, seed):
        """Outputs agree wherever both simulations are binary."""
        circuit = random_circuit(seed + 950, num_inputs=3, num_gates=10, num_dffs=3)
        result = performance_retiming(circuit, backward_passes=2)
        import random as _random

        rng = _random.Random(seed)
        sim_a = SequentialSimulator(circuit)
        sim_b = SequentialSimulator(result.retimed_circuit)
        vectors = [
            tuple(rng.randint(0, 1) for _ in circuit.input_names)
            for _ in range(12)
        ]
        trace_a, trace_b = sim_a.run(vectors), sim_b.run(vectors)
        for t in range(len(vectors)):
            for va, vb in zip(trace_a.outputs[t], trace_b.outputs[t]):
                if va != 2 and vb != 2:
                    assert va == vb

    def test_state_stem_candidates_ordered(self):
        circuit = pipelined_logic()
        stems = state_stems(circuit)
        fanouts = [len(circuit.out_edges(s)) for s in stems]
        assert fanouts == sorted(fanouts)
