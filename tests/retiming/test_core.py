"""Tests for retiming labels, legality and move counting."""

import pytest

from repro.circuit import CircuitBuilder, validate
from repro.retiming import Retiming, RetimingError, identity_retiming, movable_nodes

from tests.helpers import feedback_and, pipelined_logic, shift_register


def correlator() -> "Circuit":
    """Small pipeline with room to move registers both ways."""
    builder = CircuitBuilder("correlator")
    builder.input("x")
    builder.dff("d1", "x")
    builder.dff("d2", "d1")
    builder.and_("g1", "x", "d1")
    builder.and_("g2", "g1", "d2")
    builder.output("z", "g2")
    return builder.build()


class TestLabels:
    def test_identity(self):
        retiming = identity_retiming(pipelined_logic())
        assert retiming.is_legal()
        assert retiming.is_identity()
        assert retiming.apply().weights() == pipelined_logic().weights()

    def test_fixed_vertices_rejected(self):
        circuit = pipelined_logic()
        with pytest.raises(RetimingError):
            Retiming(circuit, {"a": 1})
        with pytest.raises(RetimingError):
            Retiming(circuit, {"z": -1})

    def test_unknown_vertex_rejected(self):
        with pytest.raises(RetimingError):
            Retiming(pipelined_logic(), {"nope": 1})

    def test_movable_nodes_excludes_interface(self):
        circuit = pipelined_logic()
        names = movable_nodes(circuit)
        assert "a" not in names
        assert "z" not in names
        assert "g1" in names

    def test_backward_move_weights(self):
        circuit = correlator()
        # g2 has inputs g1 (w0) and d2-chain (w2), output w0 to z.
        # r(g2) = -1 -> forward move: takes a register from each input edge.
        retiming = Retiming(circuit, {"g2": -1})
        assert not retiming.is_legal()  # g1 -> g2 edge has weight 0
        retiming = Retiming(circuit, {"g1": -1, "g2": -1})
        # g1's inputs: x-branch (w0), d1-branch... depends on stem layout;
        # legality is decided by the engine, we just check consistency.
        assert retiming.is_legal() == all(
            w >= 0 for w in retiming.retimed_weights()
        )

    def test_apply_rejects_illegal(self):
        circuit = correlator()
        bad = Retiming(circuit, {"g2": -1})
        assert not bad.is_legal()
        assert bad.illegal_edges()
        with pytest.raises(RetimingError):
            bad.apply()

    def test_register_conservation_on_cycles(self):
        """Retiming never changes the register count of any directed cycle."""
        circuit = feedback_and()
        stem = circuit.fanout_stems()[0]
        retiming = Retiming(circuit, {"g1": 1, stem.name: 1})
        if retiming.is_legal():
            retimed = retiming.apply()
            # The cycle g1 -> stem -> g1 keeps exactly one register.
            cycle_weight = sum(
                e.weight
                for e in retimed.edges
                if (e.source, e.sink) in {("g1", stem.name), (stem.name, "g1")}
            )
            assert cycle_weight == 1

    def test_move_counts(self):
        circuit = correlator()
        retiming = Retiming(circuit, {"g1": 2, "g2": -1})
        assert retiming.backward_moves("g1") == 2
        assert retiming.forward_moves("g1") == 0
        assert retiming.forward_moves("g2") == 1
        assert retiming.max_forward_moves() == 1
        assert retiming.max_backward_moves() == 2

    def test_stem_move_counts(self):
        circuit = feedback_and()
        stem = circuit.fanout_stems()[0].name
        retiming = Retiming(circuit, {stem: 1, "g1": 1})
        assert retiming.max_backward_moves_across_stems() == 1
        assert retiming.max_forward_moves_across_stems() == 0
        assert retiming.time_equivalence_bound() == 1

    def test_inverse_round_trips(self):
        circuit = shift_register(depth=3)
        retiming = Retiming(circuit, {"zbuf": 1})
        if not retiming.is_legal():
            pytest.skip("layout changed")
        retimed = retiming.apply()
        back = retiming.inverse(retimed)
        assert back.apply().weights() == circuit.weights()

    def test_register_delta(self):
        circuit = correlator()
        retiming = identity_retiming(circuit)
        assert retiming.register_delta() == 0

    def test_summary(self):
        retiming = identity_retiming(correlator())
        assert "F=0" in retiming.summary()
