"""Tests for atomic move decomposition and prefix lengths."""

import pytest

from repro.circuit import validate
from repro.retiming import (
    AtomicMove,
    Retiming,
    apply_move,
    arbitrary_prefix,
    can_move,
    decompose,
    min_period_retiming,
    prefix_length_for_sync,
    prefix_length_for_tests,
    replay,
)
from repro.retiming.core import RetimingError
from repro.papercircuits import fig1_gate_pair, fig1_stem_pair, fig5_pair

from tests.helpers import (
    pipelined_logic,
    random_circuit,
    requires_numpy,
    shift_register,
)


class TestAtomicMoves:
    def test_forward_gate_move(self):
        k1, k2, _ = fig1_gate_pair()
        moved = apply_move(k1, AtomicMove("G", "forward"))
        assert moved.weights() == k2.weights()

    def test_illegal_move_raises(self):
        k1, _, _ = fig1_gate_pair()
        with pytest.raises(RetimingError):
            apply_move(k1, AtomicMove("G", "backward"))

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            AtomicMove("G", "sideways")

    def test_interface_vertices_never_movable(self):
        circuit = pipelined_logic()
        assert not can_move(circuit, "a", "forward")
        assert not can_move(circuit, "z", "backward")

    def test_move_reversibility(self):
        k1, _, _ = fig1_stem_pair()
        stem = k1.fanout_stems()[0].name
        there = apply_move(k1, AtomicMove(stem, "forward"))
        back = apply_move(there, AtomicMove(stem, "backward"))
        assert back.weights() == k1.weights()


class TestDecomposition:
    def test_single_move(self):
        k1, k2, retiming = fig1_gate_pair()
        moves = decompose(retiming)
        assert moves == [AtomicMove("G", "forward")]

    def test_replay_matches_apply(self):
        n1, n2, retiming = fig5_pair()
        moves = decompose(retiming)
        stages = replay(n1, moves)
        assert stages[-1].weights() == n2.weights()
        for stage in stages:
            validate(stage)

    @requires_numpy
    @pytest.mark.parametrize("seed", range(5))
    def test_random_retimings_decompose(self, seed):
        circuit = random_circuit(seed + 500, num_inputs=2, num_gates=6, num_dffs=3)
        retiming = min_period_retiming(circuit).retiming
        moves = decompose(retiming)
        assert len(moves) == sum(abs(v) for v in retiming.labels.values())
        if moves:
            stages = replay(circuit, moves)
            assert stages[-1].weights() == retiming.apply().weights()

    def test_identity_decomposes_empty(self):
        circuit = shift_register(2)
        assert decompose(Retiming(circuit, {})) == []

    def test_multi_step_labels(self):
        circuit = shift_register(3)
        # zbuf has weight-3 in-edge; two backward moves are legal.
        retiming = Retiming(circuit, {"zbuf": 0})
        assert decompose(retiming) == []


class TestPrefixes:
    def test_prefix_lengths_fig5(self):
        _, _, retiming = fig5_pair()
        assert prefix_length_for_tests(retiming) == 1
        assert prefix_length_for_sync(retiming) == 0

    def test_arbitrary_prefix_default_fill(self):
        prefix = arbitrary_prefix(3, 2)
        assert prefix == [(0, 0, 0), (0, 0, 0)]

    def test_arbitrary_prefix_random(self):
        import random

        prefix = arbitrary_prefix(4, 3, rng=random.Random(1))
        assert len(prefix) == 3
        assert all(len(v) == 4 for v in prefix)
        assert all(bit in (0, 1) for v in prefix for bit in v)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            arbitrary_prefix(2, -1)

    def test_zero_length(self):
        assert arbitrary_prefix(2, 0) == []
