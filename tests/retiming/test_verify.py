"""Tests for independent retiming verification and label reconstruction."""

import pytest

from repro.retiming import (
    Retiming,
    RetimingError,
    min_period_retiming,
    min_register_retiming,
    performance_retiming,
)
from repro.retiming.verify import (
    RetimingVerification,
    reconstruct_labels,
    verify_retiming,
)
from repro.papercircuits import fig2_pair, fig5_pair

from tests.helpers import random_circuit, requires_numpy, resettable_counter


class TestReconstruction:
    @pytest.mark.parametrize("seed", range(5))
    def test_reconstructs_engine_labels(self, seed):
        circuit = random_circuit(seed + 5000, num_gates=9, num_dffs=3)
        retiming = min_register_retiming(circuit).retiming
        retimed = retiming.apply()
        labels = reconstruct_labels(circuit, retimed)
        rebuilt = Retiming(circuit, labels)
        assert rebuilt.retimed_weights() == retimed.weights()

    def test_unrelated_weights_rejected(self):
        circuit = resettable_counter()
        weights = circuit.weights()
        # Add a register to a single edge of a reconvergent pair: no
        # consistent labelling exists.
        target = next(
            e.index
            for e in circuit.edges
            if circuit.node(e.source).kind.value == "fanout"
        )
        weights[target] += 1
        imposter = circuit.with_weights(weights)
        with pytest.raises(RetimingError):
            reconstruct_labels(circuit, imposter)


class TestVerification:
    def test_fig2_pair_verifies_with_behaviour(self):
        c1, c2, retiming = fig2_pair()
        verification = verify_retiming(c1, c2, check_behaviour=True)
        assert verification.behaviour_checked
        assert verification.time_equivalence_bound == 0  # gate move only
        assert verification.prefix_length_tests == 0
        assert verification.retiming.labels == {
            k: v for k, v in retiming.labels.items() if v
        }

    def test_fig5_pair_prefix_length(self):
        n1, n2, _ = fig5_pair()
        verification = verify_retiming(n1, n2, check_behaviour=True)
        assert verification.prefix_length_tests == 1

    @pytest.mark.parametrize(
        "engine",
        [
            pytest.param("minperiod", marks=requires_numpy),
            "minregister",
            "performance",
        ],
    )
    def test_engine_outputs_verify(self, engine):
        circuit = resettable_counter()
        if engine == "minperiod":
            retiming = min_period_retiming(circuit).retiming
        elif engine == "minregister":
            retiming = min_register_retiming(circuit).retiming
        else:
            retiming = performance_retiming(circuit, backward_passes=1).retiming
        retimed = retiming.apply()
        verification = verify_retiming(
            circuit, retimed, check_behaviour=True, max_state_bits=12
        )
        assert isinstance(verification, RetimingVerification)

    def test_supplied_labels_checked(self):
        c1, c2, retiming = fig2_pair()
        with pytest.raises(RetimingError):
            verify_retiming(c1, c2, labels={"g1": 1})

    def test_structure_mismatch_rejected(self):
        from tests.helpers import pipelined_logic

        with pytest.raises(Exception):
            verify_retiming(resettable_counter(), pipelined_logic())
