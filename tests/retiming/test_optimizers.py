"""Optimality and soundness tests for min-period and min-register retiming."""

import itertools
import random

import pytest

from repro.circuit import CircuitBuilder, validate
from repro.retiming import (
    Retiming,
    feasible_retiming_for_period,
    min_period_retiming,
    min_register_retiming,
    movable_nodes,
    wd_matrices,
)
from repro.simulation import SequentialSimulator

from tests.helpers import pipelined_logic, random_circuit, requires_numpy


def brute_force_optimum(circuit, objective, radius=1):
    """Exhaustively search labels in [-radius, radius] for the best objective.

    Exponential in the number of movable vertices -- callers must keep the
    circuits tiny.  Legality is checked incrementally per assignment.
    """
    nodes = movable_nodes(circuit)
    assert len(nodes) <= 12, "brute force requires a tiny circuit"
    best = None
    for values in itertools.product(range(-radius, radius + 1), repeat=len(nodes)):
        retiming = Retiming(circuit, dict(zip(nodes, values)))
        if not retiming.is_legal():
            continue
        score = objective(retiming)
        if best is None or score < best:
            best = score
    return best


def paper_fig2_like() -> "Circuit":
    """A circuit whose period improves by moving a register backward.

    The long path g1 -> g2 (delay 4) is broken by retiming the register
    that sits after g2 backward across g2 (r(g2) = +1): the new period is
    3 (the g2 -> g3 path).
    """
    builder = CircuitBuilder("fig2like")
    builder.input("a")
    builder.input("b")
    builder.input("c")
    builder.and_("g1", "a", "b")      # delay 2
    builder.or_("g2", "g1", "c")      # delay 2
    builder.dff("q", "g2")
    builder.not_("g3", "q")           # delay 1
    builder.output("z", "g3")
    return builder.build()


@requires_numpy
class TestMinPeriod:
    def test_improves_fig2_like(self):
        circuit = paper_fig2_like()
        result = min_period_retiming(circuit)
        assert result.period_before == 4
        assert result.period_after == 3
        retimed = result.retimed_circuit
        validate(retimed)
        assert retimed.clock_period() == result.period_after

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        circuit = random_circuit(seed, num_inputs=2, num_gates=5, num_dffs=2)
        result = min_period_retiming(circuit)
        brute = brute_force_optimum(circuit, lambda r: r.apply().clock_period())
        # Brute force is radius-limited; the engine must never be worse.
        assert result.period_after <= brute
        validate(result.retimed_circuit)

    def test_feasibility_check(self):
        circuit = paper_fig2_like()
        wd = wd_matrices(circuit)
        assert feasible_retiming_for_period(circuit, 4, wd=wd) is not None
        assert feasible_retiming_for_period(circuit, 1, wd=wd) is None

    def test_forward_moves_possible(self):
        """Registers trapped near the inputs must be able to move forward.

        Both g1 inputs are registered, so r(g1) = -1 (a forward move) is
        legal, placing a register on the long g1 -> g2 path.  No backward
        move can achieve period 2 here (g2's output feeds the PO directly).
        """
        builder = CircuitBuilder("fwd")
        builder.input("a")
        builder.input("b")
        builder.input("c")
        builder.dff("qa", "a")
        builder.dff("qb", "b")
        builder.and_("g1", "qa", "qb")  # delay 2
        builder.or_("g2", "g1", "c")    # delay 2 -> path g1,g2 delay 4
        builder.output("z", "g2")
        circuit = builder.build()
        assert circuit.clock_period() == 4
        result = min_period_retiming(circuit)
        assert result.period_after == 2
        assert result.retiming.max_forward_moves() >= 1

    def test_identity_when_already_optimal(self):
        builder = CircuitBuilder("opt")
        builder.input("a")
        builder.not_("g", "a")
        builder.output("z", "g")
        circuit = builder.build()
        result = min_period_retiming(circuit)
        assert result.period_after == result.period_before == 1

    def test_wd_matrix_values(self):
        circuit = paper_fig2_like()
        wd = wd_matrices(circuit)
        # Path g1 -> g2 is register free, total delay 2 + 2.
        assert wd.w_between("g1", "g2") == 0
        assert wd.d_between("g1", "g2") == 4
        # g2 -> g3 passes through the register.
        assert wd.w_between("g2", "g3") == 1
        # No path from g3 back to g1 (feed-forward circuit).
        assert wd.w_between("g3", "g1") is None


class TestMinRegister:
    def test_reduces_duplicated_registers(self):
        # Two parallel registers fed by the same signal can merge into one
        # shared register before the fanout point (r = +1 on the stem).
        builder = CircuitBuilder("mergeable")
        builder.input("a")
        builder.buf("s", "a")
        builder.dff("qa", "s")
        builder.dff("qb", "s")
        builder.not_("ga", "qa")
        builder.buf("gb", "qb")
        builder.output("za", "ga")
        builder.output("zb", "gb")
        circuit = builder.build()
        assert circuit.num_registers() == 2
        result = min_register_retiming(circuit)
        assert result.registers_after == 1
        validate(result.retimed_circuit)
        assert result.retimed_circuit.num_registers() == 1

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        circuit = random_circuit(seed + 20, num_inputs=2, num_gates=5, num_dffs=2)
        result = min_register_retiming(circuit)
        brute = brute_force_optimum(circuit, lambda r: sum(r.retimed_weights()))
        assert result.registers_after <= brute
        assert result.registers_after == result.retimed_circuit.num_registers()
        validate(result.retimed_circuit)

    @requires_numpy
    def test_period_bound_respected(self):
        circuit = paper_fig2_like()
        best_period = min_period_retiming(circuit).period_after
        result = min_register_retiming(circuit, max_period=best_period)
        assert result.retimed_circuit.clock_period() <= best_period

    @requires_numpy
    def test_unconstrained_never_worse_than_constrained(self):
        circuit = paper_fig2_like()
        best_period = min_period_retiming(circuit).period_after
        free = min_register_retiming(circuit)
        bound = min_register_retiming(circuit, max_period=best_period)
        assert free.registers_after <= bound.registers_after


class TestBehaviourPreservation:
    """Structural simulation of K and K' agrees wherever both are known.

    Retiming only re-times when values arrive at nodes; primary outputs
    keep r = 0, so whenever three-valued simulation from the all-X state
    produces a *binary* value on the same output at the same cycle in both
    circuits, the values must be equal.
    """

    @requires_numpy
    @pytest.mark.parametrize("seed", range(6))
    def test_minperiod_outputs_agree(self, seed):
        circuit = random_circuit(seed + 40, num_inputs=3, num_gates=10, num_dffs=3)
        result = min_period_retiming(circuit)
        self._check_agreement(circuit, result.retimed_circuit, seed)

    @pytest.mark.parametrize("seed", range(6))
    def test_minregister_outputs_agree(self, seed):
        circuit = random_circuit(seed + 60, num_inputs=3, num_gates=10, num_dffs=3)
        result = min_register_retiming(circuit)
        self._check_agreement(circuit, result.retimed_circuit, seed)

    @staticmethod
    def _check_agreement(original, retimed, seed, length=12, runs=4):
        rng = random.Random(seed)
        sim_a = SequentialSimulator(original)
        sim_b = SequentialSimulator(retimed)
        for _ in range(runs):
            vectors = [
                tuple(rng.randint(0, 1) for _ in original.input_names)
                for _ in range(length)
            ]
            trace_a = sim_a.run(vectors)
            trace_b = sim_b.run(vectors)
            for t in range(length):
                for va, vb in zip(trace_a.outputs[t], trace_b.outputs[t]):
                    if va != 2 and vb != 2:
                        assert va == vb, f"cycle {t}: {va} vs {vb}"
