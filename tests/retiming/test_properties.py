"""Property-based tests of retiming invariants (hypothesis)."""

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.retiming import Retiming, movable_nodes
from repro.testset import TestSet, derive_retimed_test_set

from tests.helpers import random_circuit


def _circuit(seed):
    return random_circuit(seed, num_inputs=2, num_gates=8, num_dffs=3)


@st.composite
def circuit_and_labels(draw):
    seed = draw(st.integers(0, 30))
    circuit = _circuit(seed + 2000)
    nodes = movable_nodes(circuit)
    labels = {
        name: draw(st.integers(-2, 2))
        for name in nodes
        if draw(st.booleans())
    }
    return circuit, Retiming(circuit, labels)


class TestRetimingInvariants:
    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(circuit_and_labels())
    def test_weight_formula(self, pair):
        circuit, retiming = pair
        weights = retiming.retimed_weights()
        for edge, weight in zip(circuit.edges, weights):
            expected = (
                edge.weight
                + retiming.label(edge.sink)
                - retiming.label(edge.source)
            )
            assert weight == expected

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(circuit_and_labels())
    def test_cycle_registers_invariant(self, pair):
        """Retiming never changes the register count of any directed cycle."""
        circuit, retiming = pair
        if not retiming.is_legal():
            return
        retimed = retiming.apply()
        graph = nx.MultiDiGraph()
        for edge in circuit.edges:
            graph.add_edge(edge.source, edge.sink, index=edge.index)
        try:
            cycles = list(nx.simple_cycles(graph))[:10]
        except nx.NetworkXNoCycle:
            cycles = []
        for cycle in cycles:
            cycle_edges = [
                e.index
                for e in circuit.edges
                if e.source in cycle
                and e.sink in cycle
                and cycle[(cycle.index(e.source) + 1) % len(cycle)] == e.sink
            ]
            before = sum(circuit.edges[i].weight for i in cycle_edges)
            after = sum(retimed.edges[i].weight for i in cycle_edges)
            assert before == after

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(circuit_and_labels())
    def test_inverse_round_trip(self, pair):
        circuit, retiming = pair
        if not retiming.is_legal():
            return
        retimed = retiming.apply()
        back = retiming.inverse(retimed)
        assert back.is_legal()
        assert back.apply().weights() == circuit.weights()

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(circuit_and_labels())
    def test_move_counts_consistent(self, pair):
        circuit, retiming = pair
        assert retiming.max_forward_moves() >= retiming.max_forward_moves_across_stems()
        assert retiming.max_backward_moves() >= retiming.max_backward_moves_across_stems()
        inverse = Retiming(circuit, {k: -v for k, v in retiming.labels.items()})
        assert inverse.max_forward_moves() == retiming.max_backward_moves()


class TestDerivedTestSetProperties:
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        circuit_and_labels(),
        st.lists(
            st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=1, max_size=4),
            min_size=1,
            max_size=3,
        ),
    )
    def test_prefix_arithmetic(self, pair, sequences):
        circuit, retiming = pair
        test_set = TestSet.from_lists(circuit.name, 2, sequences)
        derived = derive_retimed_test_set(test_set, retiming)
        prefix = retiming.max_forward_moves()
        assert derived.num_sequences == test_set.num_sequences
        assert derived.num_vectors == test_set.num_vectors + prefix * len(sequences)
        for old, new in zip(test_set.sequences, derived.sequences):
            assert new[prefix:] == old
