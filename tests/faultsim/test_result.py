"""Tests for fault-simulation result accounting."""

from repro.circuit import LineRef
from repro.faults import StuckAtFault
from repro.faultsim.result import Detection, FaultSimResult


def _faults(n):
    return tuple(
        StuckAtFault(LineRef(i, 1), i % 2) for i in range(n)
    )


class TestFaultSimResult:
    def test_counts(self):
        faults = _faults(4)
        result = FaultSimResult("c", "parallel", faults)
        result.detections[faults[0]] = Detection(0, 1, "z")
        result.detections[faults[2]] = Detection(1, 0, "z")
        assert result.num_faults == 4
        assert result.num_detected == 2
        assert result.num_undetected == 2
        assert result.fault_coverage == 50.0
        assert set(result.detected) == {faults[0], faults[2]}
        assert set(result.undetected) == {faults[1], faults[3]}

    def test_empty_universe_is_full_coverage(self):
        result = FaultSimResult("c", "serial", ())
        assert result.fault_coverage == 100.0
        assert result.num_undetected == 0

    def test_ordering_preserved(self):
        faults = _faults(3)
        result = FaultSimResult("c", "parallel", faults)
        result.detections[faults[1]] = Detection(0, 0, "z")
        assert result.undetected == [faults[0], faults[2]]

    def test_summary_mentions_engine(self):
        result = FaultSimResult("mycirc", "serial", _faults(2))
        text = result.summary()
        assert "mycirc" in text and "serial" in text
