"""Cross-checks and behaviour tests for the fault-simulation engines."""

import random

import pytest

from repro.circuit import CircuitBuilder, LineRef
from repro.faults import StuckAtFault, full_fault_universe
from repro.faultsim import (
    fault_simulate,
    parallel_fault_simulate,
    serial_fault_simulate,
)
from repro.logic.three_valued import ONE, ZERO

from tests.helpers import random_circuit, resettable_counter, toggle_counter


def _random_sequences(circuit, seed, count=3, length=8):
    rng = random.Random(seed)
    return [
        [tuple(rng.randint(0, 1) for _ in circuit.input_names) for _ in range(length)]
        for _ in range(count)
    ]


class TestEnginesAgree:
    @pytest.mark.parametrize("seed", range(5))
    def test_detected_sets_match(self, seed):
        circuit = random_circuit(seed, num_inputs=3, num_gates=12, num_dffs=3)
        sequences = _random_sequences(circuit, seed)
        faults = full_fault_universe(circuit)
        serial = serial_fault_simulate(circuit, sequences, faults)
        parallel = parallel_fault_simulate(circuit, sequences, faults)
        assert set(serial.detections) == set(parallel.detections)

    @pytest.mark.parametrize("seed", range(3))
    def test_detection_records_match(self, seed):
        circuit = random_circuit(seed + 50, num_inputs=2, num_gates=9, num_dffs=2)
        sequences = _random_sequences(circuit, seed)
        faults = full_fault_universe(circuit)
        serial = serial_fault_simulate(circuit, sequences, faults, drop=True)
        parallel = parallel_fault_simulate(circuit, sequences, faults, drop=True)
        for fault, record in serial.detections.items():
            assert parallel.detections[fault] == record

    def test_small_group_size_equivalent(self):
        circuit = random_circuit(3, num_gates=10, num_dffs=2)
        sequences = _random_sequences(circuit, 3)
        faults = full_fault_universe(circuit)
        wide = parallel_fault_simulate(circuit, sequences, faults, group_size=64)
        narrow = parallel_fault_simulate(circuit, sequences, faults, group_size=3)
        assert set(wide.detections) == set(narrow.detections)

    def test_drop_does_not_change_detected_set(self):
        circuit = random_circuit(11, num_gates=10, num_dffs=2)
        sequences = _random_sequences(circuit, 11)
        faults = full_fault_universe(circuit)
        dropped = parallel_fault_simulate(circuit, sequences, faults, drop=True)
        kept = parallel_fault_simulate(circuit, sequences, faults, drop=False)
        assert set(dropped.detections) == set(kept.detections)


class TestCrossEngineMatrix:
    """Property-style cross-check of all three engines.

    Serial (scalar reference), interpreted-parallel (``VectorSimulator``)
    and compiled-parallel (``VectorFastStepper``) must produce identical
    results on randomized circuits and sequences.
    """

    ENGINES = ("serial", "parallel", "parallel-interpreted")

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("drop", [True, False])
    def test_identical_detection_records(self, seed, drop):
        circuit = random_circuit(
            seed + 200, num_inputs=3, num_gates=14, num_dffs=3
        )
        sequences = _random_sequences(circuit, seed, count=3, length=10)
        faults = full_fault_universe(circuit)
        results = [
            fault_simulate(circuit, sequences, faults, engine=engine, drop=drop)
            for engine in self.ENGINES
        ]
        reference = results[0]
        for engine, result in zip(self.ENGINES[1:], results[1:]):
            assert result.detections == reference.detections, (engine, seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_identical_potential_sets(self, seed):
        circuit = random_circuit(
            seed + 300, num_inputs=2, num_gates=10, num_dffs=3
        )
        sequences = _random_sequences(circuit, seed, count=2, length=8)
        faults = full_fault_universe(circuit)
        results = [
            fault_simulate(circuit, sequences, faults, engine=engine, drop=False)
            for engine in self.ENGINES
        ]
        for engine, result in zip(self.ENGINES[1:], results[1:]):
            assert result.potential == results[0].potential, (engine, seed)

    @pytest.mark.parametrize("group_size", [2, 5, 64, 256])
    def test_kernels_agree_across_group_sizes(self, group_size):
        circuit = random_circuit(7, num_gates=12, num_dffs=3)
        sequences = _random_sequences(circuit, 7)
        faults = full_fault_universe(circuit)
        compiled = parallel_fault_simulate(
            circuit, sequences, faults, group_size=group_size, kernel="compiled"
        )
        interpreted = parallel_fault_simulate(
            circuit, sequences, faults, group_size=group_size, kernel="interpreted"
        )
        assert compiled.detections == interpreted.detections
        assert compiled.potential == interpreted.potential

    def test_duplicate_faults_simulated_once(self):
        """A fault listed twice must not disturb detection accounting."""
        circuit = resettable_counter()
        faults = list(full_fault_universe(circuit))
        doubled = faults + faults
        sequences = [[(1, 0)] + [(0, 1)] * 6]
        once = parallel_fault_simulate(circuit, sequences, faults)
        twice = parallel_fault_simulate(circuit, sequences, doubled)
        assert once.detections == twice.detections

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            parallel_fault_simulate(toggle_counter(), [], kernel="vectorized")

    def test_unknown_line_rejected(self):
        from repro.circuit import LineRef as _LineRef

        circuit = toggle_counter()
        ghost = StuckAtFault(_LineRef(0, 99), ONE)
        with pytest.raises(ValueError, match="does not exist"):
            parallel_fault_simulate(circuit, [[(1,)]], [ghost])


class TestDetectionSemantics:
    def test_known_good_x_faulty_not_detected(self):
        # Faulty machine output stays X while good is binary: no detection.
        builder = CircuitBuilder("xcase")
        builder.input("a")
        builder.and_("g", "a", "q")
        builder.dff("q", "g")
        builder.output("z", "g")
        circuit = builder.build()
        # Fault: feedback branch stuck-at-1 keeps q at X|1 -> with a=1 the
        # good machine output is X too; with a=0 both are 0.
        stem = circuit.fanout_stems()[0]
        feedback = next(e for e in circuit.out_edges(stem.name) if e.weight == 1)
        fault = StuckAtFault(LineRef(feedback.index, 1), ONE)
        result = serial_fault_simulate(circuit, [[(1,)]], [fault])
        assert result.num_detected == 0

    def test_unsynchronizable_circuit_detects_nothing(self):
        # XOR-only feedback never leaves the all-X state, so the good
        # machine's outputs stay unknown and nothing can be detected.
        circuit = toggle_counter()
        result = fault_simulate(circuit, [[(1,)] * 6])
        assert result.num_detected == 0

    def test_simple_detection(self):
        circuit = resettable_counter()
        faults = full_fault_universe(circuit)
        # Reset, then count: q0/q1 activity is visible at the outputs.
        sequences = [[(1, 0)] + [(0, 1)] * 6, [(1, 1)] * 4]
        result = fault_simulate(circuit, sequences, faults)
        assert result.num_detected > 0
        assert 0 < result.fault_coverage <= 100.0

    def test_detection_metadata(self):
        circuit = resettable_counter()
        result = fault_simulate(circuit, [[(1, 0)] + [(0, 1)] * 5])
        assert result.num_detected > 0
        for fault, record in result.detections.items():
            assert record.sequence_index == 0
            assert 0 <= record.cycle < 6
            assert record.output_name in circuit.output_names

    def test_empty_test_set(self):
        circuit = toggle_counter()
        result = fault_simulate(circuit, [])
        assert result.num_detected == 0
        assert result.fault_coverage == 0.0

    def test_empty_fault_list(self):
        circuit = toggle_counter()
        result = fault_simulate(circuit, [[(1,)]], faults=[])
        assert result.fault_coverage == 100.0

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            fault_simulate(toggle_counter(), [], engine="quantum")

    def test_bad_group_size(self):
        with pytest.raises(ValueError):
            parallel_fault_simulate(toggle_counter(), [], group_size=1)

    def test_summary_text(self):
        circuit = toggle_counter()
        result = fault_simulate(circuit, [[(1,)] * 4])
        assert "FC" in result.summary()


class TestPotentialDetection:
    def test_reset_fault_is_potentially_detected(self):
        """The undetectable reset-path faults drive outputs to X while the
        good machine is binary: PROOFS' 'potentially detected' class."""
        from tests.helpers import resettable_counter

        circuit = resettable_counter()
        sequences = [[(1, 0)] + [(0, 1)] * 5, [(1, 1)] * 4]
        result = fault_simulate(circuit, sequences)
        hard_undetected = set(result.undetected)
        assert hard_undetected  # the 3 reset-path faults
        assert result.potential & hard_undetected
        assert result.num_potentially_detected > 0

    def test_engines_agree_on_potential(self):
        from tests.helpers import resettable_counter
        from repro.faults import collapse_faults

        circuit = resettable_counter()
        faults = collapse_faults(circuit).representatives
        sequences = [[(1, 0)] + [(0, 1)] * 5]
        serial = serial_fault_simulate(circuit, sequences, faults, drop=False)
        parallel = parallel_fault_simulate(circuit, sequences, faults, drop=False)
        assert serial.potential == parallel.potential

    def test_summary_mentions_potential(self):
        from tests.helpers import resettable_counter

        circuit = resettable_counter()
        result = fault_simulate(circuit, [[(1, 0)] + [(0, 1)] * 5])
        assert "potential" in result.summary()
