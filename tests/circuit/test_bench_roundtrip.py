"""BENCH round trips must preserve the content digest.

``circuit_digest`` is the artifact store's identity for a circuit, so any
write/read asymmetry in the BENCH serializer would silently split one
circuit's cache entries in two (or worse, conflate two circuits).  The
digest is isomorphism-invariant, so a round trip may renumber lines and
still must hash identically.
"""

import io

import pytest

from repro.circuit import read_bench, write_bench
from repro.circuit.digest import circuit_digest
from repro.core.experiments import TABLE2_CIRCUITS, build_pair
from repro.papercircuits import (
    fig1_gate_k1,
    fig1_stem_k1,
    fig2_c1,
    fig3_l1,
    fig5_n1,
)

FIGURES = [fig1_stem_k1, fig1_gate_k1, fig2_c1, fig3_l1, fig5_n1]


def _round_trip(circuit):
    text = write_bench(circuit)
    return read_bench(io.StringIO(text), name=circuit.name)


@pytest.mark.parametrize("factory", FIGURES, ids=lambda f: f.__name__)
def test_paper_figures_survive_round_trip(factory):
    circuit = factory()
    reread = _round_trip(circuit)
    assert circuit_digest(reread) == circuit_digest(circuit)
    # And the digest stays fixed under repeated round trips, even though
    # the emitted gate order (and so the BENCH text) is free to vary.
    assert circuit_digest(_round_trip(reread)) == circuit_digest(circuit)


@pytest.mark.parametrize("name", ["dk16.ji.sd", "s510.jo.sr"])
def test_synthesized_circuits_survive_round_trip(name):
    spec = next(s for s in TABLE2_CIRCUITS if s.name == name)
    pair = build_pair(spec)
    for circuit in (pair.original, pair.retimed):
        reread = _round_trip(circuit)
        assert circuit_digest(reread) == circuit_digest(circuit)


def test_digest_distinguishes_different_circuits():
    digests = {circuit_digest(factory()) for factory in FIGURES}
    assert len(digests) == len(FIGURES)
