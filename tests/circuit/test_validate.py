"""Tests for structural validation rules."""

import pytest

from repro.circuit import (
    Circuit,
    CircuitError,
    Edge,
    GateType,
    Node,
    NodeKind,
    check,
    is_valid,
    validate,
)

from tests.helpers import pipelined_logic


def _nodes(**kinds):
    result = {}
    for name, kind in kinds.items():
        if isinstance(kind, tuple):
            result[name] = Node(name, kind[0], kind[1])
        else:
            result[name] = Node(name, kind)
    return result


class TestRules:
    def test_valid_circuit(self):
        assert is_valid(pipelined_logic())
        validate(pipelined_logic())

    def test_gate_with_two_outputs_flagged(self):
        nodes = _nodes(
            a=NodeKind.INPUT,
            g=(NodeKind.GATE, GateType.NOT),
            z1=NodeKind.OUTPUT,
            z2=NodeKind.OUTPUT,
        )
        edges = [
            Edge(0, "a", "g", 0, 0),
            Edge(1, "g", "z1", 0, 0),
            Edge(2, "g", "z2", 0, 0),  # sharing must go through a stem
        ]
        problems = check(Circuit("bad", nodes, edges))
        assert any("output edges" in p for p in problems)

    def test_stem_with_single_branch_flagged(self):
        nodes = _nodes(
            a=NodeKind.INPUT,
            s=NodeKind.FANOUT,
            z=NodeKind.OUTPUT,
        )
        edges = [Edge(0, "a", "s", 0, 0), Edge(1, "s", "z", 0, 0)]
        problems = check(Circuit("bad", nodes, edges))
        assert any("fanout" in p for p in problems)

    def test_output_with_fanout_flagged(self):
        nodes = _nodes(
            a=NodeKind.INPUT,
            g=(NodeKind.GATE, GateType.BUF),
            z=NodeKind.OUTPUT,
        )
        edges = [
            Edge(0, "a", "g", 0, 0),
            Edge(1, "g", "z", 0, 0),
            Edge(2, "z", "g", 1, 1),  # outputs drive nothing
        ]
        problems = check(Circuit("bad", nodes, edges))
        assert any("output" in p for p in problems)

    def test_validate_raises_with_circuit_name(self):
        nodes = _nodes(a=NodeKind.INPUT, s=NodeKind.FANOUT, z=NodeKind.OUTPUT)
        edges = [Edge(0, "a", "s", 0, 0), Edge(1, "s", "z", 0, 0)]
        with pytest.raises(CircuitError, match="badname"):
            validate(Circuit("badname", nodes, edges))

    def test_unused_input_tolerated(self):
        nodes = _nodes(
            a=NodeKind.INPUT,
            b=NodeKind.INPUT,
            g=(NodeKind.GATE, GateType.BUF),
            z=NodeKind.OUTPUT,
        )
        edges = [Edge(0, "a", "g", 0, 0), Edge(1, "g", "z", 0, 0)]
        assert is_valid(Circuit("ok", nodes, edges))
