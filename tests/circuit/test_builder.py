"""Tests for signal-level circuit construction and stem/register placement."""

import pytest

from repro.circuit import (
    CircuitBuilder,
    CircuitError,
    GateType,
    NodeKind,
    validate,
)

from tests.helpers import feedback_and, pipelined_logic, shift_register, toggle_counter


class TestBasicConstruction:
    def test_feedback_and_structure(self):
        circuit = feedback_and()
        validate(circuit)
        assert circuit.input_names == ["a"]
        assert circuit.output_names == ["z"]
        assert circuit.num_gates() == 1
        assert circuit.num_registers() == 1
        # g1 fans out to the output and (through the register) back to
        # itself, so exactly one stem must exist.
        assert len(circuit.fanout_stems()) == 1

    def test_register_lands_on_feedback_branch(self):
        circuit = feedback_and()
        stem = circuit.fanout_stems()[0]
        branch_weights = sorted(e.weight for e in circuit.out_edges(stem.name))
        assert branch_weights == [0, 1]
        # The stem's input edge carries no register (register is after the
        # branch point, because the output observes the unregistered value).
        assert circuit.in_edges(stem.name)[0].weight == 0

    def test_shift_register_weights_collapse(self):
        circuit = shift_register(depth=4)
        validate(circuit)
        # A pure chain becomes a single edge of weight 4 into the buffer.
        edge = circuit.in_edges("zbuf")[0]
        assert edge.weight == 4
        assert circuit.num_registers() == 4
        assert circuit.fanout_stems() == []

    def test_toggle_counter(self):
        circuit = toggle_counter()
        validate(circuit)
        assert circuit.num_registers() == 2
        assert circuit.num_gates() == 3

    def test_pipelined_logic(self):
        circuit = pipelined_logic()
        validate(circuit)
        assert circuit.num_registers() == 3
        # r1 feeds both g2 and g3: the register sits before the stem, shared.
        stems = circuit.fanout_stems()
        assert len(stems) == 1
        stem = stems[0]
        assert circuit.in_edges(stem.name)[0].weight == 1
        assert all(e.weight == 0 for e in circuit.out_edges(stem.name))


class TestSharedVsPerBranchRegisters:
    def test_two_dffs_same_signal_are_separate(self):
        builder = CircuitBuilder("two_dffs")
        builder.input("a")
        builder.buf("s", "a")
        builder.dff("qa", "s")
        builder.dff("qb", "s")
        builder.not_("ga", "qa")
        builder.buf("gb", "qb")
        builder.output("za", "ga")
        builder.output("zb", "gb")
        circuit = builder.build()
        validate(circuit)
        assert circuit.num_registers() == 2
        stem = circuit.fanout_stems()[0]
        assert circuit.in_edges(stem.name)[0].weight == 0
        assert sorted(e.weight for e in circuit.out_edges(stem.name)) == [1, 1]

    def test_register_then_fanout_is_shared(self):
        builder = CircuitBuilder("shared")
        builder.input("a")
        builder.dff("q", "a")
        builder.not_("g1", "q")
        builder.buf("g2", "q")
        builder.output("z1", "g1")
        builder.output("z2", "g2")
        circuit = builder.build()
        validate(circuit)
        assert circuit.num_registers() == 1

    def test_nested_fanout_chain(self):
        # s0 -> dff -> q1 feeds g1 and dff2; q2 feeds g2 and g3.
        builder = CircuitBuilder("nested")
        builder.input("a")
        builder.buf("s0", "a")
        builder.dff("q1", "s0")
        builder.not_("g1", "q1")
        builder.dff("q2", "q1")
        builder.buf("g2", "q2")
        builder.not_("g3", "q2")
        builder.output("z1", "g1")
        builder.output("z2", "g2")
        builder.output("z3", "g3")
        circuit = builder.build()
        validate(circuit)
        assert circuit.num_registers() == 2
        assert len(circuit.fanout_stems()) == 2

    def test_same_signal_two_pins(self):
        builder = CircuitBuilder("twopin")
        builder.input("a")
        builder.and_("g", "a", "a")
        builder.output("z", "g")
        circuit = builder.build()
        validate(circuit)
        assert len(circuit.fanout_stems()) == 1


class TestErrors:
    def test_duplicate_signal(self):
        builder = CircuitBuilder("dup")
        builder.input("a")
        with pytest.raises(CircuitError):
            builder.input("a")

    def test_undefined_reference(self):
        builder = CircuitBuilder("undef")
        builder.input("a")
        builder.and_("g", "a", "nope")
        builder.output("z", "g")
        with pytest.raises(CircuitError):
            builder.build()

    def test_no_outputs(self):
        builder = CircuitBuilder("noout")
        builder.input("a")
        with pytest.raises(CircuitError):
            builder.build()

    def test_unused_input_tolerated(self):
        builder = CircuitBuilder("unused_pi")
        builder.input("a")
        builder.input("b")
        builder.buf("g", "a")
        builder.output("z", "g")
        circuit = builder.build()
        assert "b" in circuit.input_names

    def test_dangling_gate_rejected(self):
        builder = CircuitBuilder("dangle")
        builder.input("a")
        builder.buf("g", "a")
        builder.buf("dead", "a")
        builder.output("z", "g")
        with pytest.raises(CircuitError):
            builder.build()

    def test_dangling_allowed_when_requested(self):
        builder = CircuitBuilder("dangle_ok")
        builder.input("a")
        builder.input("b")
        builder.buf("g", "a")
        builder.output("z", "g")
        circuit = builder.build(allow_dangling=True)
        assert circuit.num_gates() == 1

    def test_combinational_cycle_rejected(self):
        builder = CircuitBuilder("cycle")
        builder.input("a")
        builder.and_("g1", "a", "g2")
        builder.or_("g2", "a", "g1")
        builder.output("z", "g2")
        with pytest.raises(CircuitError):
            builder.build()

    def test_bad_arity(self):
        builder = CircuitBuilder("arity")
        builder.input("a")
        builder.input("b")
        with pytest.raises(CircuitError):
            builder.gate("g", GateType.NOT, ["a", "b"])

    def test_hash_in_name_rejected(self):
        builder = CircuitBuilder("hash")
        with pytest.raises(CircuitError):
            builder.input("a#1")


class TestDerivedQueries:
    def test_lines_count(self):
        circuit = shift_register(depth=2)
        # Edges: d -> zbuf(weight 2)? No: d -> (chain) -> zbuf weight 2, and
        # zbuf -> z weight 0.  Lines: (2+1) + 1 = 4.
        assert circuit.num_lines() == 4

    def test_with_weights_round_trip(self):
        circuit = pipelined_logic()
        clone = circuit.with_weights(circuit.weights(), name="clone")
        assert clone.weights() == circuit.weights()
        assert set(clone.nodes) == set(circuit.nodes)

    def test_with_weights_wrong_length(self):
        circuit = feedback_and()
        with pytest.raises(CircuitError):
            circuit.with_weights([0])

    def test_clock_period_paper_model(self):
        builder = CircuitBuilder("delay")
        builder.input("a")
        builder.input("b")
        builder.input("c")
        builder.and_("g1", "a", "b")       # delay 2
        builder.or_("g2", "g1", "c")       # delay 2
        builder.output("z", "g2")
        circuit = builder.build()
        assert circuit.clock_period() == 4

    def test_clock_period_register_breaks_path(self):
        builder = CircuitBuilder("delay2")
        builder.input("a")
        builder.input("b")
        builder.input("c")
        builder.and_("g1", "a", "b")
        builder.dff("r", "g1")
        builder.or_("g2", "r", "c")
        builder.output("z", "g2")
        circuit = builder.build()
        assert circuit.clock_period() == 2
