"""Tests for the Circuit graph model itself (nodes, edges, lines, registers)."""

import pytest

from repro.circuit import (
    Circuit,
    CircuitError,
    Edge,
    GateType,
    LineRef,
    Node,
    NodeKind,
    RegisterRef,
)

from tests.helpers import pipelined_logic, shift_register


class TestNodeEdgeValidation:
    def test_gate_requires_gate_type(self):
        with pytest.raises(ValueError):
            Node("g", NodeKind.GATE)

    def test_non_gate_rejects_gate_type(self):
        with pytest.raises(ValueError):
            Node("i", NodeKind.INPUT, GateType.AND)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Edge(0, "a", "b", 0, -1)

    def test_edge_lines(self):
        assert Edge(0, "a", "b", 0, 3).num_lines == 4

    def test_unknown_edge_endpoint_rejected(self):
        node = Node("a", NodeKind.INPUT)
        with pytest.raises(CircuitError):
            Circuit("bad", {"a": node}, [Edge(0, "a", "ghost", 0, 0)])

    def test_non_contiguous_pins_rejected(self):
        nodes = {
            "a": Node("a", NodeKind.INPUT),
            "b": Node("b", NodeKind.INPUT),
            "g": Node("g", NodeKind.GATE, GateType.AND),
            "z": Node("z", NodeKind.OUTPUT),
        }
        edges = [
            Edge(0, "a", "g", 0, 0),
            Edge(1, "b", "g", 2, 0),  # pin 1 missing
            Edge(2, "g", "z", 0, 0),
        ]
        with pytest.raises(CircuitError):
            Circuit("bad", nodes, edges)


class TestEnumerations:
    def test_registers_canonical_order(self):
        circuit = pipelined_logic()
        refs = circuit.registers()
        assert refs == sorted(refs)
        assert len(refs) == circuit.num_registers()

    def test_lines_canonical_order(self):
        circuit = pipelined_logic()
        lines = circuit.lines()
        assert lines == sorted(lines)
        assert len(lines) == circuit.num_lines()
        assert circuit.num_lines() == len(circuit.edges) + circuit.num_registers()

    def test_register_names_metadata(self):
        circuit = shift_register(depth=3)
        names = circuit.register_names
        assert sorted(names.values()) == ["q1", "q2", "q3"]
        # Position 1 is nearest the source: the first flip-flop in the chain.
        chain = {ref.position: name for ref, name in names.items()}
        assert chain == {1: "q1", 2: "q2", 3: "q3"}

    def test_stats_keys(self):
        stats = pipelined_logic().stats()
        assert set(stats) >= {"inputs", "outputs", "gates", "dffs", "clock_period"}

    def test_str(self):
        assert "pipelined_logic" in str(pipelined_logic())


class TestTopology:
    def test_topo_order_respects_zero_weight_edges(self):
        circuit = pipelined_logic()
        order = {name: i for i, name in enumerate(circuit.topo_order())}
        for edge in circuit.edges:
            if edge.weight == 0:
                assert order[edge.source] < order[edge.sink]

    def test_custom_delay_model(self):
        circuit = pipelined_logic()
        unit = circuit.clock_period(
            lambda node: 1 if node.kind is NodeKind.GATE else 0
        )
        default = circuit.clock_period()
        assert unit <= default

    def test_with_weights_invalidates_nothing(self):
        circuit = pipelined_logic()
        clone = circuit.with_weights(circuit.weights())
        assert clone.topo_order() == circuit.topo_order()


class TestPickling:
    """Circuits cross process boundaries (the multiprocess ATPG ships one
    per pool worker); pickling must round-trip the structure and must not
    drag compiled artifacts along."""

    def test_round_trip(self):
        import pickle

        circuit = pipelined_logic()
        clone = pickle.loads(pickle.dumps(circuit))
        assert clone.name == circuit.name
        assert clone.nodes == circuit.nodes
        assert clone.edges == circuit.edges
        assert clone.topo_order() == circuit.topo_order()
        assert clone.input_names == circuit.input_names
        assert clone.output_names == circuit.output_names

    def test_compile_cache_entry_not_pickled(self):
        import pickle

        from repro.simulation import fast_stepper

        circuit = pipelined_logic()
        fast_stepper(circuit)  # stash an exec'd artifact on the instance
        payload = pickle.dumps(circuit)  # must not raise
        clone = pickle.loads(payload)
        assert not hasattr(clone, "_simulation_compile_cache")

    def test_unpickled_circuit_simulates(self):
        import pickle

        from repro.simulation import fast_stepper

        circuit = pipelined_logic()
        clone = pickle.loads(pickle.dumps(circuit))
        stepper = fast_stepper(clone)
        vector = tuple(0 for _ in clone.input_names)
        outputs, state, _ = stepper.step(stepper.unknown_state(), vector)
        assert len(state) == clone.num_registers()
