"""Cone-of-influence reduction: only output-observable logic survives."""

import itertools
import random

from repro.circuit import CircuitBuilder
from repro.circuit.cone import cone_of_influence
from repro.simulation.cache import fast_stepper
from tests.helpers import (
    all_binary_vectors,
    feedback_and,
    pipelined_logic,
    random_circuit,
    toggle_counter,
    token_ring,
)


def partially_observable():
    """An observable AND/DFF pair next to an unobservable self-loop."""
    builder = CircuitBuilder("partial")
    builder.input("a")
    builder.and_("g1", "a", "q1")
    builder.dff("q1", "g1")
    builder.output("z", "g1")
    builder.and_("h", "a", "q2")
    builder.dff("q2", "h")
    return builder.build()


class TestIdentity:
    def test_fully_observable_circuits_reduce_to_themselves(self):
        for circuit in (feedback_and(), toggle_counter(), pipelined_logic(),
                        token_ring(6)):
            cone = cone_of_influence(circuit)
            assert cone.is_identity
            assert cone.circuit is circuit  # the very same object, no copy
            assert cone.dropped_registers == 0
            assert cone.dropped_nodes == 0
            assert cone.edge_map == {
                edge.index: edge.index for edge in circuit.edges
            }
            state = tuple(range(circuit.num_registers()))
            assert cone.project_state(state) == state


class TestReduction:
    def test_drops_unobservable_loop(self):
        circuit = partially_observable()
        cone = cone_of_influence(circuit)
        assert not cone.is_identity
        assert cone.dropped_registers == 1
        assert "q2" not in cone.circuit.nodes
        assert "h" not in cone.circuit.nodes
        assert "a" in cone.circuit.nodes  # inputs always survive
        assert cone.circuit.num_registers() == 1
        assert cone.circuit.name == "partial|cone"

    def test_edge_map_preserves_endpoints_weights_and_order(self):
        circuit = partially_observable()
        cone = cone_of_influence(circuit)
        previous = -1
        for old_index, new_index in sorted(cone.edge_map.items()):
            old = circuit.edges[old_index]
            new = cone.circuit.edges[new_index]
            assert (new.source, new.sink, new.sink_pin, new.weight) == (
                old.source, old.sink, old.sink_pin, old.weight
            )
            assert new_index > previous  # dense renumbering keeps order
            previous = new_index
        assert len(cone.circuit.edges) == len(cone.edge_map)

    def test_kept_register_positions_filter_original_order(self):
        circuit = partially_observable()
        cone = cone_of_influence(circuit)
        originals = circuit.registers()
        kept = [originals[p] for p in cone.kept_register_positions]
        reduced = cone.circuit.registers()
        assert [
            (circuit.edges[r.edge_index].source, r.position) for r in kept
        ] == [
            (cone.circuit.edges[r.edge_index].source, r.position)
            for r in reduced
        ]

    def test_projection_commutes_with_step(self):
        rng = random.Random(11)
        circuits = [partially_observable()] + [
            random_circuit(seed, num_inputs=2, num_gates=12, num_dffs=4,
                           num_outputs=1)
            for seed in (41, 42, 43)
        ]
        for circuit in circuits:
            cone = cone_of_influence(circuit)
            full = fast_stepper(circuit)
            reduced = fast_stepper(cone.circuit)
            width = circuit.num_registers()
            vectors = all_binary_vectors(len(circuit.input_names))
            for _ in range(30):
                state = tuple(rng.randint(0, 1) for _ in range(width))
                vector = rng.choice(vectors)
                out_full, next_full = full.step(state, vector)[:2]
                out_red, next_red = reduced.step(
                    cone.project_state(state), vector
                )[:2]
                assert out_red == out_full
                assert next_red == cone.project_state(next_full)

    def test_exhaustive_output_agreement_on_small_machine(self):
        circuit = partially_observable()
        cone = cone_of_influence(circuit)
        full = fast_stepper(circuit)
        reduced = fast_stepper(cone.circuit)
        for state in itertools.product((0, 1), repeat=circuit.num_registers()):
            for vector in all_binary_vectors(len(circuit.input_names)):
                assert full.step(state, vector)[0] == reduced.step(
                    cone.project_state(state), vector
                )[0]
