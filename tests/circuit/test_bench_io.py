"""Tests for BENCH parsing and writing."""

import random

import pytest

from repro.circuit import CircuitError, parse_bench, validate, write_bench
from repro.simulation import SequentialSimulator

from tests.helpers import pipelined_logic, random_circuit, toggle_counter

SIMPLE = """
# a comment
INPUT(a)
INPUT(b)
OUTPUT(g2)
q = DFF(g1)
g1 = AND(a, q)
g2 = NOT(g1)
"""


class TestParse:
    def test_simple(self):
        circuit = parse_bench(SIMPLE, "simple")
        validate(circuit)
        assert circuit.input_names == ["a", "b"] or set(circuit.input_names) == {
            "a",
            "b",
        }
        assert circuit.num_registers() == 1
        assert circuit.num_gates() == 2

    def test_unused_input_allowed(self):
        # b is declared but unused; HITEC-era benches contain such pins.
        circuit = parse_bench(SIMPLE)
        assert "b" in circuit.input_names

    def test_duplicate_output_signal(self):
        text = "INPUT(a)\nOUTPUT(g)\nOUTPUT(g)\ng = NOT(a)\n"
        circuit = parse_bench(text)
        assert len(circuit.output_names) == 2

    def test_bad_line(self):
        with pytest.raises(CircuitError):
            parse_bench("INPUT(a)\nfoo bar baz\n")

    def test_unknown_gate(self):
        with pytest.raises(CircuitError):
            parse_bench("INPUT(a)\nOUTPUT(g)\ng = MAJ(a, a, a)\n")

    def test_dff_arity(self):
        with pytest.raises(CircuitError):
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n")

    def test_buff_alias(self):
        circuit = parse_bench("INPUT(a)\nOUTPUT(g)\ng = BUFF(a)\n")
        assert circuit.num_gates() == 1


def _behaviour_signature(circuit, seed, length=8, runs=4):
    """Output traces from the all-X state under random binary input sequences."""
    rng = random.Random(seed)
    sim = SequentialSimulator(circuit)
    signature = []
    for _ in range(runs):
        vectors = [
            tuple(rng.randint(0, 1) for _ in circuit.input_names)
            for _ in range(length)
        ]
        signature.append((vectors, sim.run(vectors).outputs))
    return signature


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [toggle_counter, pipelined_logic])
    def test_fixed_circuits_behaviour_preserved(self, factory):
        circuit = factory()
        reparsed = parse_bench(write_bench(circuit), "reparsed")
        validate(reparsed)
        assert reparsed.num_registers() == circuit.num_registers()
        assert len(reparsed.input_names) == len(circuit.input_names)
        assert len(reparsed.output_names) == len(circuit.output_names)
        for (vectors, expected) in _behaviour_signature(circuit, 3):
            got = SequentialSimulator(reparsed).run(vectors).outputs
            assert got == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuits_behaviour_preserved(self, seed):
        circuit = random_circuit(seed, num_gates=14, num_dffs=4)
        reparsed = parse_bench(write_bench(circuit), "reparsed")
        assert reparsed.num_registers() == circuit.num_registers()
        # Output name ordering differs (po_ prefixes) but po order is by
        # sorted name on both sides; compare as multisets of traces.
        for (vectors, expected) in _behaviour_signature(circuit, seed):
            got = SequentialSimulator(reparsed).run(vectors).outputs
            for t in range(len(vectors)):
                assert sorted(got[t]) == sorted(expected[t])
