"""Tests for structural Verilog export."""

import re

import pytest

from repro.circuit import write_verilog

from tests.helpers import (
    pipelined_logic,
    random_circuit,
    resettable_counter,
    shift_register,
)


class TestWriteVerilog:
    def test_module_skeleton(self):
        text = write_verilog(pipelined_logic())
        assert text.startswith("// pipelined_logic")
        assert "module pipelined_logic (" in text
        assert text.rstrip().endswith("endmodule")

    def test_ports_declared(self):
        circuit = resettable_counter()
        text = write_verilog(circuit)
        for name in circuit.input_names:
            assert f"  input {name};" in text
        for name in circuit.output_names:
            assert f"  output {name};" in text
        assert "  input clk;" in text

    def test_custom_clock_name(self):
        text = write_verilog(pipelined_logic(), clock="phi")
        assert "always @(posedge phi)" in text

    def test_register_count_matches(self):
        circuit = shift_register(depth=4)
        text = write_verilog(circuit)
        assert len(re.findall(r"^\s+reg ", text, re.M)) == 4
        assert len(re.findall(r"<=", text)) == 4

    def test_gate_count_matches(self):
        circuit = pipelined_logic()
        text = write_verilog(circuit)
        primitives = re.findall(r"^\s+(and|or|nand|nor|xor|xnor|not|buf) ", text, re.M)
        assert len(primitives) == circuit.num_gates()

    def test_identifier_sanitization(self):
        from repro.fsm.mcnc import synthesize_benchmark

        circuit = synthesize_benchmark("dk16", "ji", "rugged").circuit
        text = write_verilog(circuit)
        # The circuit name contains dots; the module name must not.
        assert "module dk16_ji_sr" in text
        # Stem names with '#' never leak into the netlist.
        assert "#" not in text.replace("// ", "")

    @pytest.mark.parametrize("seed", range(3))
    def test_every_wire_driven_once(self, seed):
        circuit = random_circuit(seed + 6000, num_gates=10, num_dffs=3)
        text = write_verilog(circuit)
        driven = re.findall(r"\b(?:and|or|nand|nor|xor|xnor|not|buf) g_(\w+) ", text)
        assigns = re.findall(r"assign (\w+) =", text)
        flops = re.findall(r"^\s+(\w+) <=", text, re.M)
        drivers = driven + assigns + flops
        assert len(drivers) == len(set(drivers)), "multiply-driven net"
