"""Tests for structural Verilog export."""

import re

import pytest

from repro.circuit import write_verilog

from tests.helpers import (
    pipelined_logic,
    random_circuit,
    resettable_counter,
    shift_register,
)


class TestWriteVerilog:
    def test_module_skeleton(self):
        text = write_verilog(pipelined_logic())
        assert text.startswith("// pipelined_logic")
        assert "module pipelined_logic (" in text
        assert text.rstrip().endswith("endmodule")

    def test_ports_declared(self):
        circuit = resettable_counter()
        text = write_verilog(circuit)
        for name in circuit.input_names:
            assert f"  input {name};" in text
        for name in circuit.output_names:
            assert f"  output {name};" in text
        assert "  input clk;" in text

    def test_custom_clock_name(self):
        text = write_verilog(pipelined_logic(), clock="phi")
        assert "always @(posedge phi)" in text

    def test_register_count_matches(self):
        circuit = shift_register(depth=4)
        text = write_verilog(circuit)
        assert len(re.findall(r"^\s+reg ", text, re.M)) == 4
        assert len(re.findall(r"<=", text)) == 4

    def test_gate_count_matches(self):
        circuit = pipelined_logic()
        text = write_verilog(circuit)
        primitives = re.findall(r"^\s+(and|or|nand|nor|xor|xnor|not|buf) ", text, re.M)
        assert len(primitives) == circuit.num_gates()

    def test_identifier_sanitization(self):
        from repro.fsm.mcnc import synthesize_benchmark

        circuit = synthesize_benchmark("dk16", "ji", "rugged").circuit
        text = write_verilog(circuit)
        # The circuit name contains dots; the module name must not.
        assert "module dk16_ji_sr" in text
        # Stem names with '#' never leak into the netlist.
        assert "#" not in text.replace("// ", "")

    @pytest.mark.parametrize("seed", range(3))
    def test_every_wire_driven_once(self, seed):
        circuit = random_circuit(seed + 6000, num_gates=10, num_dffs=3)
        text = write_verilog(circuit)
        driven = re.findall(r"\b(?:and|or|nand|nor|xor|xnor|not|buf) g_(\w+) ", text)
        assigns = re.findall(r"assign (\w+) =", text)
        flops = re.findall(r"^\s+(\w+) <=", text, re.M)
        drivers = driven + assigns + flops
        assert len(drivers) == len(set(drivers)), "multiply-driven net"


class TestParseVerilog:
    """The toy structural reader: everything ``write_verilog`` emits."""

    def _round_trip(self, circuit):
        from repro.circuit import parse_verilog

        return parse_verilog(write_verilog(circuit), name=circuit.name)

    def _behaviourally_equal(self, left, right, seed=0, sequences=20, length=12):
        import random

        from repro.simulation import SequentialSimulator

        rng = random.Random(seed)
        sim_left = SequentialSimulator(left)
        sim_right = SequentialSimulator(right)
        width = len(left.input_names)
        assert len(right.input_names) == width
        for _ in range(sequences):
            vectors = [
                tuple(rng.randint(0, 1) for _ in range(width))
                for _ in range(length)
            ]
            if sim_left.run(vectors).outputs != sim_right.run(vectors).outputs:
                return False
        return True

    @pytest.mark.parametrize(
        "factory", [pipelined_logic, resettable_counter, lambda: shift_register(4)],
        ids=["pipelined_logic", "resettable_counter", "shift_register"],
    )
    def test_round_trip_preserves_behaviour(self, factory):
        circuit = factory()
        reread = self._round_trip(circuit)
        assert reread.num_registers() == circuit.num_registers()
        assert len(reread.input_names) == len(circuit.input_names)
        assert len(reread.output_names) == len(circuit.output_names)
        assert self._behaviourally_equal(circuit, reread)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_circuits_round_trip(self, seed):
        circuit = random_circuit(seed + 7000, num_gates=12, num_dffs=4)
        assert self._behaviourally_equal(circuit, self._round_trip(circuit))

    def test_benchmark_circuit_round_trips(self):
        from repro.fsm.mcnc import synthesize_benchmark

        circuit = synthesize_benchmark("dk16", "ji", "delay").circuit
        reread = self._round_trip(circuit)
        assert reread.num_registers() == circuit.num_registers()
        assert self._behaviourally_equal(circuit, reread, sequences=10)

    def test_clock_is_not_an_input(self):
        from repro.circuit import parse_verilog

        circuit = parse_verilog(write_verilog(shift_register(2)))
        assert "clk" not in circuit.input_names

    def test_module_name_from_source(self):
        from repro.circuit import parse_verilog

        circuit = parse_verilog(write_verilog(pipelined_logic()))
        assert circuit.name == "pipelined_logic"

    def test_explicit_name_wins(self):
        from repro.circuit import parse_verilog

        circuit = parse_verilog(write_verilog(pipelined_logic()), name="renamed")
        assert circuit.name == "renamed"

    def test_read_verilog_from_file_object(self):
        import io

        from repro.circuit import read_verilog

        circuit = read_verilog(io.StringIO(write_verilog(shift_register(2))))
        assert circuit.num_registers() == 2

    def test_const_assigns_parse(self):
        from repro.circuit import parse_verilog

        source = (
            "module consts (clk, z);\n"
            "  input clk;\n  output z;\n  wire k;\n"
            "  assign k = 1'b1;\n  assign z = k;\n"
            "endmodule\n"
        )
        from repro.simulation import SequentialSimulator

        circuit = parse_verilog(source)
        # No always block means no clock was identified, so ``clk`` stays
        # a (dangling) primary input and vectors must cover it.
        sim = SequentialSimulator(circuit)
        assert tuple(sim.run([(0,)]).outputs) == ((1,),)

    def test_unsupported_statement_raises(self):
        from repro.circuit import parse_verilog
        from repro.circuit.netlist import CircuitError

        with pytest.raises(CircuitError, match="cannot parse"):
            parse_verilog("module m (a);\n  input a;\n  assign z = a & b;\nendmodule")

    def test_multiple_clocks_rejected(self):
        from repro.circuit import parse_verilog
        from repro.circuit.netlist import CircuitError

        source = (
            "module m (c1, c2, a, z);\n  input c1;\n  input c2;\n"
            "  input a;\n  output z;\n  reg q;\n  reg r;\n"
            "  always @(posedge c1) begin\n    q <= a;\n  end\n"
            "  always @(posedge c2) begin\n    r <= q;\n  end\n"
            "  assign z = r;\nendmodule\n"
        )
        with pytest.raises(CircuitError, match="clock"):
            parse_verilog(source)
