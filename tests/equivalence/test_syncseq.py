"""Unit tests for synchronizing-sequence search and checking."""

import pytest

from repro.equivalence import (
    extract_stg,
    find_functional_sync_sequence,
    find_structural_sync_sequence,
    functional_final_states,
    is_functional_sync_sequence,
    is_structural_sync_sequence,
)
from repro.papercircuits import fig3_l1
from repro.simulation import SequentialSimulator

from tests.helpers import (
    feedback_and,
    resettable_counter,
    shift_register,
    toggle_counter,
)


class TestStructuralSearch:
    def test_resettable_counter_one_vector(self):
        circuit = resettable_counter()
        sequence = find_structural_sync_sequence(circuit)
        assert sequence is not None
        assert len(sequence) == 1
        rst_position = circuit.input_names.index("rst")
        assert sequence[0][rst_position] == 1  # rst must be asserted
        assert is_structural_sync_sequence(circuit, sequence)

    def test_shift_register_needs_depth_vectors(self):
        circuit = shift_register(depth=3)
        sequence = find_structural_sync_sequence(circuit)
        assert sequence is not None
        assert len(sequence) == 3

    def test_toggle_counter_unsynchronizable(self):
        assert find_structural_sync_sequence(toggle_counter(), max_length=6) is None

    def test_feedback_and(self):
        circuit = feedback_and()
        sequence = find_structural_sync_sequence(circuit)
        assert sequence == [(0,)]

    def test_already_synchronized(self):
        # A circuit with no registers is trivially synchronized.
        from repro.circuit import CircuitBuilder

        builder = CircuitBuilder("comb")
        builder.input("a")
        builder.not_("g", "a")
        builder.output("z", "g")
        assert find_structural_sync_sequence(builder.build()) == []

    def test_structural_implies_functional(self):
        """Every structural sequence is also functional (3-valued soundness)."""
        for circuit in [resettable_counter(), feedback_and(), shift_register(2)]:
            sequence = find_structural_sync_sequence(circuit)
            assert sequence is not None
            stg = extract_stg(circuit)
            assert is_functional_sync_sequence(stg, sequence)


class TestFunctionalSearch:
    def test_fig3_l1_shortest_is_one(self):
        stg = extract_stg(fig3_l1())
        sequence = find_functional_sync_sequence(stg)
        assert sequence is not None
        assert len(sequence) == 1

    def test_functional_can_beat_structural(self):
        """On L1 the specific sequence <11> is functional, not structural.

        (The BFS may return a different shortest sequence, e.g. <00>, which
        happens to be structural too -- the point is that the functional
        class is strictly larger.)
        """
        circuit = fig3_l1()
        stg = extract_stg(circuit)
        assert is_functional_sync_sequence(stg, [(1, 1)])
        assert not is_structural_sync_sequence(circuit, [(1, 1)])

    def test_final_states_tracking(self):
        stg = extract_stg(resettable_counter())
        final = functional_final_states(stg, [(0, 1)])  # (en, rst) = reset
        assert final == frozenset({(0, 0)})

    def test_toggle_counter_unsynchronizable_functionally(self):
        stg = extract_stg(toggle_counter())
        assert find_functional_sync_sequence(stg, max_length=6) is None

    def test_empty_sequence_on_single_class_machine(self):
        """A machine whose states are all equivalent needs no sequence."""
        from repro.circuit import CircuitBuilder

        builder = CircuitBuilder("allsame")
        builder.input("a")
        builder.dff("q", "a")
        builder.and_("g", "q", "k0")
        builder.const0("k0")
        builder.or_("out", "g", "a")
        builder.output("z", "out")
        circuit = builder.build()
        stg = extract_stg(circuit)
        assert find_functional_sync_sequence(stg) == []
