"""Cross-engine parity: the bitset STG engine must be result-identical to
the scalar reference engine -- same tables, same classification block ids,
same sync sequences (including tie-breaking and search-budget cutoffs), on
fault-free and faulty machines alike."""

import random

import pytest

from repro.equivalence import (
    classify,
    extract_stg,
    find_functional_sync_sequence,
    functional_final_states,
    is_functional_sync_sequence,
    space_contains,
    space_equivalent,
    time_equivalence_bound,
)
from repro.faults.collapse import collapse_faults
from repro.papercircuits import fig3_pair, fig5_pair, n2_g1_q12_fault
from tests.helpers import (
    feedback_and,
    pipelined_logic,
    random_circuit,
    resettable_counter,
    resettable_random_circuit,
    toggle_counter,
)

CIRCUITS = [
    ("feedback_and", feedback_and),
    ("toggle_counter", toggle_counter),
    ("resettable_counter", resettable_counter),
    ("pipelined_logic", pipelined_logic),
    ("rand7", lambda: random_circuit(7)),
    ("rand13_4dff", lambda: random_circuit(13, num_dffs=4)),
    ("rrand3", lambda: resettable_random_circuit(3)),
    ("fig3_l1", lambda: fig3_pair()[0]),
    ("fig3_l2", lambda: fig3_pair()[1]),
    ("fig5_n1", lambda: fig5_pair()[0]),
    ("fig5_n2", lambda: fig5_pair()[1]),
]


def both_engines(circuit, **kwargs):
    reference = extract_stg(circuit, engine="reference", use_store=False, **kwargs)
    bitset = extract_stg(circuit, engine="bitset", use_store=False, **kwargs)
    return reference, bitset


def assert_stg_identical(reference, bitset):
    assert reference.name == bitset.name
    assert reference.states == bitset.states
    assert reference.alphabet == bitset.alphabet
    assert reference.num_outputs == bitset.num_outputs
    assert reference.next_index == bitset.next_index
    assert reference.output_index == bitset.output_index
    assert reference == bitset


class TestExtractionParity:
    @pytest.mark.parametrize("name,make", CIRCUITS, ids=[c[0] for c in CIRCUITS])
    def test_fault_free_tables_identical(self, name, make):
        assert_stg_identical(*both_engines(make()))

    @pytest.mark.parametrize("name,make", CIRCUITS, ids=[c[0] for c in CIRCUITS])
    def test_faulty_tables_identical(self, name, make):
        circuit = make()
        rng = random.Random(11)
        faults = collapse_faults(circuit).representatives
        for fault in rng.sample(faults, min(3, len(faults))):
            assert_stg_identical(*both_engines(circuit, fault=fault))

    def test_multiple_fault_tables_identical(self):
        circuit = fig5_pair()[0]
        faults = collapse_faults(circuit).representatives[:2]
        assert_stg_identical(*both_engines(circuit, fault=faults))

    def test_custom_alphabet_tables_identical(self):
        circuit = random_circuit(19)
        alphabet = [(0, 0, 0), (1, 1, 1), (1, 0, 1)]
        reference, bitset = both_engines(circuit, alphabet=alphabet)
        assert reference.alphabet == tuple(alphabet)
        assert_stg_identical(reference, bitset)


class TestClassificationParity:
    @pytest.mark.parametrize("name,make", CIRCUITS, ids=[c[0] for c in CIRCUITS])
    def test_single_machine_block_ids_identical(self, name, make):
        reference, bitset = both_engines(make())
        assert (
            classify([reference], engine="reference").class_of
            == classify([bitset], engine="array").class_of
        )

    def test_joint_classification_block_ids_identical(self):
        l1, l2, _ = fig3_pair()
        ref1, bit1 = both_engines(l1)
        ref2, bit2 = both_engines(l2)
        assert (
            classify([ref1, ref2], engine="reference").class_of
            == classify([bit1, bit2], engine="array").class_of
        )

    def test_joint_classification_with_faulty_machine(self):
        circuit = fig5_pair()[1]
        fault = n2_g1_q12_fault(circuit)
        good_ref, good_bit = both_engines(circuit)
        bad_ref, bad_bit = both_engines(circuit, fault=fault)
        assert (
            classify([good_ref, bad_ref], engine="reference").class_of
            == classify([good_bit, bad_bit], engine="array").class_of
        )

    @pytest.mark.parametrize("name,make", CIRCUITS[:7], ids=[c[0] for c in CIRCUITS[:7]])
    def test_relations_agree_across_engines(self, name, make):
        circuit = make()
        fault = collapse_faults(circuit).representatives[0]
        good_ref, good_bit = both_engines(circuit)
        bad_ref, bad_bit = both_engines(circuit, fault=fault)
        assert space_contains(good_ref, bad_ref) == space_contains(good_bit, bad_bit)
        assert space_equivalent(good_ref, bad_ref) == space_equivalent(
            good_bit, bad_bit
        )
        assert time_equivalence_bound(good_ref, bad_ref, 4) == time_equivalence_bound(
            good_bit, bad_bit, 4
        )


class TestSyncSequenceParity:
    @pytest.mark.parametrize("name,make", CIRCUITS, ids=[c[0] for c in CIRCUITS])
    def test_found_sequences_identical(self, name, make):
        reference, bitset = both_engines(make())
        found_ref = find_functional_sync_sequence(reference, engine="reference")
        found_bit = find_functional_sync_sequence(bitset, engine="bitset")
        assert found_ref == found_bit
        if found_bit is not None:
            assert is_functional_sync_sequence(bitset, found_bit, engine="bitset")
            assert is_functional_sync_sequence(
                reference, found_bit, engine="reference"
            )
            assert functional_final_states(
                reference, found_bit, engine="reference"
            ) == functional_final_states(bitset, found_bit, engine="bitset")

    def test_budget_cutoff_identical(self):
        """Both engines give up at the same max_visited budget."""
        circuit = random_circuit(13, num_dffs=4)
        reference, bitset = both_engines(circuit)
        for budget in (1, 2, 5):
            assert find_functional_sync_sequence(
                reference, max_visited=budget, engine="reference"
            ) == find_functional_sync_sequence(
                bitset, max_visited=budget, engine="bitset"
            )

    def test_observation1_pair_across_engines(self):
        """Fig. 3: <11> functionally synchronizes L1 but not L2 -- on both
        engines, with identical final state sets."""
        l1, l2, _ = fig3_pair()
        for engine in ("reference", "bitset"):
            stg1 = extract_stg(l1, engine=engine, use_store=False)
            stg2 = extract_stg(l2, engine=engine, use_store=False)
            assert is_functional_sync_sequence(stg1, [(1, 1)], engine=engine)
            assert not is_functional_sync_sequence(stg2, [(1, 1)], engine=engine)
            assert functional_final_states(
                stg1, [(1, 1)], engine=engine
            ) == frozenset({(1,)})

    def test_faulty_machine_sequences_identical(self):
        """Observation 2 machinery: sync search on faulty machines agrees."""
        _, n2, _ = fig5_pair()
        fault = n2_g1_q12_fault(n2)
        reference, bitset = both_engines(n2, fault=fault)
        assert find_functional_sync_sequence(
            reference, engine="reference"
        ) == find_functional_sync_sequence(bitset, engine="bitset")
