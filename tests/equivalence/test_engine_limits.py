"""ENGINE_LIMITS validation, escalation hints, and the auto-tier policy."""

import pytest

from repro.equivalence import (
    ENGINE_LIMITS,
    ENGINE_TIERS,
    ReachableSTG,
    StateSpaceTooLarge,
    engine_limits_table,
    extract_stg,
    select_engine,
)
from tests.helpers import shift_register, toggle_counter, token_ring


class TestEngineValidation:
    def test_unknown_engine_lists_choices(self):
        with pytest.raises(ValueError, match="choose from auto"):
            extract_stg(toggle_counter(), engine="warp", use_store=False)

    def test_initial_states_rejected_outside_reach(self):
        with pytest.raises(ValueError, match="initial_states"):
            extract_stg(
                toggle_counter(),
                engine="bitset",
                initial_states="reset",
                use_store=False,
            )

    def test_tier_order_and_table_cover_every_engine(self):
        assert ENGINE_TIERS == ("reference", "bitset", "reach")
        table = engine_limits_table()
        for engine in ENGINE_TIERS:
            assert engine in table
            assert str(ENGINE_LIMITS[engine].registers) in table
        assert "2^22" in table  # the bitset transitions cap
        assert "2^24" in table  # the reach traversal cap


class TestPerEngineRejection:
    def test_bitset_rejection_names_the_reach_tier(self):
        with pytest.raises(StateSpaceTooLarge) as excinfo:
            extract_stg(shift_register(depth=19), engine="bitset")
        message = str(excinfo.value)
        assert "try engine='reach'" in message
        assert str(ENGINE_LIMITS["reach"].registers) in message

    def test_reference_rejection_names_the_bitset_tier(self):
        with pytest.raises(StateSpaceTooLarge) as excinfo:
            extract_stg(shift_register(depth=17), engine="reference")
        assert "try engine='bitset'" in str(excinfo.value)

    def test_reach_rejection_is_terminal(self):
        with pytest.raises(StateSpaceTooLarge) as excinfo:
            extract_stg(shift_register(depth=31), engine="reach")
        assert "no larger engine tier exists" in str(excinfo.value)

    def test_reach_transitions_cap_trips_during_traversal(self, monkeypatch):
        from repro.equivalence import explicit

        monkeypatch.setitem(
            explicit.ENGINE_LIMITS,
            "reach",
            explicit.EngineLimits(registers=30, inputs=12, transitions=8),
        )
        # A 5-deep shift register reaches all 32 states from zeros, so the
        # visited x |alphabet| product crosses 8 mid-traversal.
        with pytest.raises(StateSpaceTooLarge, match="reach"):
            extract_stg(shift_register(depth=5), engine="reach", use_store=False)


class TestAutoSelection:
    def test_register_count_boundaries(self):
        assert select_engine(shift_register(depth=10)) == "bitset"
        assert select_engine(shift_register(depth=18)) == "bitset"
        assert select_engine(shift_register(depth=19)) == "reach"
        assert select_engine(shift_register(depth=30)) == "reach"
        with pytest.raises(StateSpaceTooLarge) as excinfo:
            select_engine(shift_register(depth=31))
        message = str(excinfo.value)
        for engine in ENGINE_TIERS:  # the full limits table is attached
            assert engine in message

    def test_transitions_pressure_escalates_to_reach(self, monkeypatch):
        from repro.equivalence import explicit

        monkeypatch.setitem(
            explicit.ENGINE_LIMITS,
            "bitset",
            explicit.EngineLimits(registers=18, inputs=12, transitions=4),
        )
        assert select_engine(shift_register(depth=5)) == "reach"

    def test_custom_alphabet_bypasses_the_input_cap(self):
        from repro.circuit import CircuitBuilder

        builder = CircuitBuilder("wide")
        names = [builder.input(f"i{k}") for k in range(13)]
        acc = names[0]
        for k, name in enumerate(names[1:]):
            acc = builder.or_(f"o{k}", acc, name)
        builder.dff("q", acc)
        builder.output("z", "q")
        circuit = builder.build()
        with pytest.raises(StateSpaceTooLarge):
            select_engine(circuit)  # 13 inputs exceed every tier's cap
        alphabet = [(0,) * 13, (1,) * 13]
        assert select_engine(circuit, alphabet) == "bitset"

    def test_extract_stg_auto_dispatches_by_size(self):
        small = extract_stg(toggle_counter(), engine="auto", use_store=False)
        assert not isinstance(small, ReachableSTG)
        large = extract_stg(token_ring(19), engine="auto", use_store=False)
        assert isinstance(large, ReachableSTG)
        assert large.visited_states == 20  # zeros + 19 one-hot positions
        assert large.visited_states < large.total_states
