"""Tests for Lemmas 2 and 3 as stated in the paper."""

import random

import pytest

from repro.equivalence import (
    extract_stg,
    find_functional_sync_sequence,
    functional_final_states,
    is_functional_sync_sequence,
    space_contains,
    states_equivalent,
    time_contains,
)
from repro.papercircuits import fig3_pair
from repro.retiming import Retiming, movable_nodes

from tests.helpers import resettable_random_circuit


def _legal_retiming(circuit, rng, attempts=300):
    nodes = movable_nodes(circuit)
    for _ in range(attempts):
        labels = {
            n: rng.choice((-1, 0, 1)) for n in nodes if rng.random() < 0.4
        }
        retiming = Retiming(circuit, labels)
        if retiming.is_legal() and not retiming.is_identity():
            return retiming
    return None


class TestLemma2:
    """K' ⊇Bt K and K ⊇Ft K' with F/B over fanout stems."""

    @pytest.mark.parametrize("seed", range(6))
    def test_directional_containments(self, seed):
        circuit = resettable_random_circuit(
            seed + 7000, num_inputs=1, num_gates=6, num_dffs=2
        )
        rng = random.Random(seed)
        retiming = _legal_retiming(circuit, rng)
        if retiming is None or retiming.apply().num_registers() > 8:
            pytest.skip("no usable retiming")
        retimed = retiming.apply()
        stg_k = extract_stg(circuit)
        stg_r = extract_stg(retimed)
        forward = retiming.max_forward_moves_across_stems()
        backward = retiming.max_backward_moves_across_stems()
        assert time_contains(stg_r, stg_k, backward)  # K' ⊇Bt K
        assert time_contains(stg_k, stg_r, forward)  # K ⊇Ft K'


class TestLemma3:
    """K ⊇s K' lifts functional synchronizing sequences from K to K'."""

    def test_on_fig3_pair(self):
        l1, l2, _ = fig3_pair()
        stg1, stg2 = extract_stg(l1), extract_stg(l2)
        # The forward stem move gives L2 ⊇s L1 (but not conversely).
        assert space_contains(stg2, stg1)
        sequence = find_functional_sync_sequence(stg2, max_length=4)
        assert sequence is not None
        # Lemma 3 with K = L2, K' = L1: the sequence synchronizes L1 too,
        # to an equivalent state.
        assert is_functional_sync_sequence(stg1, sequence)
        final_l2 = functional_final_states(stg2, sequence)
        final_l1 = functional_final_states(stg1, sequence)
        assert states_equivalent(
            stg2, next(iter(final_l2)), stg1, next(iter(final_l1))
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_on_backward_retimings(self, seed):
        """Backward-only retimings satisfy K' ⊇s K, so K''s functional
        sequences lift to K (Lemma 3 instantiated by Lemma 2)."""
        circuit = resettable_random_circuit(
            seed + 7100, num_inputs=1, num_gates=6, num_dffs=2
        )
        rng = random.Random(seed)
        retiming = None
        for _ in range(300):
            labels = {
                n: rng.choice((0, 1))
                for n in movable_nodes(circuit)
                if rng.random() < 0.4
            }
            candidate = Retiming(circuit, labels)
            if candidate.is_legal() and not candidate.is_identity():
                retiming = candidate
                break
        if retiming is None or retiming.apply().num_registers() > 8:
            pytest.skip("no usable backward retiming")
        retimed = retiming.apply()
        stg_k, stg_r = extract_stg(circuit), extract_stg(retimed)
        if not space_contains(stg_r, stg_k):
            pytest.skip("containment needs stem-only analysis here")
        sequence = find_functional_sync_sequence(stg_r, max_length=5)
        if sequence is None:
            pytest.skip("retimed machine not synchronizable in 5 steps")
        assert is_functional_sync_sequence(stg_k, sequence)
