"""The reach engine: parity with the bitset engine on the overlap, cone
reduction, store memoization, and breaking the 18-register wall."""

import random

import pytest

from repro.circuit import CircuitBuilder
from repro.core.preservation import verify_preservation
from repro.equivalence import (
    ReachableSTG,
    StateSpaceTooLarge,
    classify,
    extract_stg,
    find_functional_sync_sequence,
    functional_final_states,
    time_equivalence_bound,
)
from repro.faults.collapse import collapse_faults
from repro.retiming.core import Retiming
from repro.retiming.verify import verify_retiming
from repro.testset.model import TestSet
from tests.helpers import (
    random_circuit,
    requires_numpy,
    toggle_counter,
    token_ring,
    token_ring_stem,
)


def reach(circuit, **kwargs):
    kwargs.setdefault("use_store", False)
    return extract_stg(circuit, engine="reach", **kwargs)


def bitset(circuit, **kwargs):
    kwargs.setdefault("use_store", False)
    return extract_stg(circuit, engine="bitset", **kwargs)


class TestAllModeExactParity:
    @pytest.mark.parametrize("seed", [3, 13, 21])
    def test_tables_bit_identical_to_bitset(self, seed):
        circuit = random_circuit(seed, num_dffs=4)
        full = bitset(circuit)
        rch = reach(circuit, initial_states="all")
        assert isinstance(rch, ReachableSTG)
        assert rch.states == full.states
        assert rch.next_index == full.next_index
        assert rch.output_index == full.output_index
        assert rch.alphabet == full.alphabet
        assert rch.visited_states == rch.total_states

    def test_classification_and_sync_search_coincide(self):
        circuit = toggle_counter()
        full = bitset(circuit)
        rch = reach(circuit, initial_states="all")
        assert classify([full]).class_array(0) == classify([rch]).class_array(0)
        assert find_functional_sync_sequence(
            full
        ) == find_functional_sync_sequence(rch)


class TestResetModeRestriction:
    @pytest.mark.parametrize("seed", [5, 11, 29])
    def test_visits_exactly_the_bitset_reachable_set(self, seed):
        circuit = random_circuit(
            seed, num_inputs=3, num_gates=30, num_dffs=8, num_outputs=2
        )
        full = bitset(circuit)
        rch = reach(circuit)
        zeros = (0,) * circuit.num_registers()
        assert rch.states[0] == zeros
        assert set(rch.states) == set(full.reachable_from(zeros))
        assert rch.visited_states == len(rch.states)
        assert 1 <= rch.peak_frontier <= rch.visited_states
        # Per-(vector, state) table agreement under the state mapping.
        full_index = {state: k for k, state in enumerate(full.states)}
        rch_index = {state: k for k, state in enumerate(rch.states)}
        for v in range(len(full.alphabet)):
            for state in rch.states:
                successor = full.states[full.next_index[v][full_index[state]]]
                assert rch.next_index[v][rch_index[state]] == rch_index[successor]
                assert (
                    rch.output_index[v][rch_index[state]]
                    == full.output_index[v][full_index[state]]
                )

    def test_joint_classification_agrees_on_shared_states(self):
        circuit = random_circuit(11, num_inputs=3, num_gates=30, num_dffs=8)
        full = bitset(circuit)
        rch = reach(circuit)
        classification = classify([full, rch])
        for state in rch.states:
            assert classification.class_of[(0, state)] == classification.class_of[
                (1, state)
            ]

    def test_sync_search_matches_start_restricted_bitset_search(self):
        # The reachable set is forward-closed, so BFS over subsets of it is
        # the same abstract search as the bitset engine's restricted to the
        # same start set -- identical sequences, identical cutoffs.
        for seed in (5, 12):
            circuit = random_circuit(seed, num_inputs=2, num_gates=25, num_dffs=6)
            full = bitset(circuit)
            rch = reach(circuit)
            # Shared state tuples require an identity cone for these seeds.
            assert rch.num_registers == circuit.num_registers()
            for max_length in (2, 8):
                assert find_functional_sync_sequence(
                    rch, max_length=max_length
                ) == find_functional_sync_sequence(
                    full, max_length=max_length, start_states=rch.states
                )
            vectors = [full.alphabet[-1], full.alphabet[0]]
            assert functional_final_states(
                rch, vectors
            ) == functional_final_states(full, vectors, start_states=rch.states)

    def test_faulty_machine_reset_parity(self):
        circuit = random_circuit(17, num_dffs=5)
        faults = collapse_faults(circuit).representatives
        for fault in (faults[3], faults[len(faults) // 2]):
            full = bitset(circuit, fault=fault)
            rch = reach(circuit, fault=fault)
            zeros = (0,) * circuit.num_registers()
            assert set(rch.states) == set(full.reachable_from(zeros))


class TestBackends:
    @requires_numpy
    def test_numpy_backend_is_bit_identical(self):
        for seed in (5, 29):
            circuit = random_circuit(
                seed, num_inputs=3, num_gates=30, num_dffs=8, num_outputs=2
            )
            big = reach(circuit, backend="bigint")
            npy = reach(circuit, backend="numpy")
            assert big.states == npy.states
            assert big.next_index == npy.next_index
            assert big.output_index == npy.output_index
            assert (big.peak_frontier, big.levels) == (npy.peak_frontier, npy.levels)


class TestConeReduction:
    def test_unobservable_register_is_dropped(self):
        builder = CircuitBuilder("padded")
        builder.input("a")
        builder.and_("g1", "a", "q1")
        builder.dff("q1", "g1")
        builder.output("z", "g1")
        builder.and_("h", "a", "q2")
        builder.dff("q2", "h")
        circuit = builder.build()
        rch = reach(circuit)
        assert rch.dropped_registers == 1
        assert rch.total_registers == 2
        assert rch.num_registers == 1  # states live over the cone machine
        assert rch.total_states == 2


class TestStoreMemoization:
    def test_round_trip_replays_the_traversal(self):
        from repro.store.core import default_store

        circuit = random_circuit(5, num_inputs=3, num_gates=30, num_dffs=8)
        first = extract_stg(circuit, engine="reach")
        store = default_store()
        hits_before = store.stats.hits
        second = extract_stg(circuit, engine="reach")
        assert store.stats.hits == hits_before + 1
        assert second.states == first.states
        assert second.next_index == first.next_index
        assert second.output_index == first.output_index
        assert (
            second.visited_states,
            second.peak_frontier,
            second.levels,
            second.dropped_registers,
            second.initial_bitset,
            second.total_registers,
        ) == (
            first.visited_states,
            first.peak_frontier,
            first.levels,
            first.dropped_registers,
            first.initial_bitset,
            first.total_registers,
        )

    def test_initial_specs_get_distinct_records(self):
        from repro.store.core import default_store

        circuit = random_circuit(5, num_dffs=4)
        reset_mode = extract_stg(circuit, engine="reach")
        all_mode = extract_stg(circuit, engine="reach", initial_states="all")
        assert all_mode.visited_states == 1 << circuit.num_registers()
        store = default_store()
        assert store.summary()["by_kind"].get("reach-stg", 0) == 2
        assert reset_mode.visited_states <= all_mode.visited_states


class TestWallBreak:
    """The acceptance story: a 28-register machine the bitset engine
    rejects, verified end to end by the reach engine."""

    WIDTH = 28

    def make_pair(self):
        circuit = token_ring(self.WIDTH)
        retiming = Retiming(circuit, {token_ring_stem(circuit): -1})
        return circuit, retiming

    def test_bitset_rejects_and_names_reach(self):
        circuit, _ = self.make_pair()
        with pytest.raises(StateSpaceTooLarge) as excinfo:
            extract_stg(circuit, engine="bitset")
        assert "reach" in str(excinfo.value)

    def test_reach_traverses_a_sparse_fraction(self):
        circuit, retiming = self.make_pair()
        stg = reach(circuit)
        assert stg.visited_states == self.WIDTH + 1  # zeros + one-hots
        assert stg.total_states == 1 << self.WIDTH
        retimed = retiming.apply()
        assert retimed.num_registers() == self.WIDTH + 2  # stem split x3
        stg_retimed = reach(retimed)
        assert stg_retimed.visited_states == self.WIDTH + 1

    def test_verify_retiming_behaviour_check_runs_on_reach(self):
        circuit, retiming = self.make_pair()
        retimed = retiming.apply()
        verification = verify_retiming(
            circuit, retimed, check_behaviour=True, engine="reach"
        )
        assert verification.behaviour_checked
        assert verification.behaviour_engine == "reach"
        assert verification.time_equivalence_bound == 1
        # Without an engine the pair is beyond the small-machine gate.
        skipped = verify_retiming(circuit, retimed, check_behaviour=True)
        assert not skipped.behaviour_checked
        # An explicit bitset request is over the wall: skipped, not failed.
        over = verify_retiming(
            circuit, retimed, check_behaviour=True, engine="bitset"
        )
        assert not over.behaviour_checked

    def test_verify_preservation_with_reach_time_equivalence(self):
        circuit, retiming = self.make_pair()
        retimed = retiming.apply()
        rng = random.Random(7)
        sequences = [
            [(1, 0), (0, 1)] + [(0, rng.randint(0, 1)) for _ in range(32)]
            for _ in range(4)
        ]
        test_set = TestSet.from_lists(circuit.name, 2, sequences)
        report = verify_preservation(
            circuit,
            retiming,
            test_set,
            retimed=retimed,
            check_time_equivalence=True,
            stg_engine="reach",
        )
        assert report.holds
        assert report.time_equivalence_checked
        assert report.time_equivalence_engine == "reach"
        assert report.original_detected > 0  # the check is not vacuous

    def test_lemma2_bound_holds_on_the_reachable_sets(self):
        circuit, retiming = self.make_pair()
        stg = reach(circuit)
        stg_retimed = reach(retiming.apply())
        bound = retiming.time_equivalence_bound()
        assert time_equivalence_bound(stg, stg_retimed, max_steps=bound) == 0
