"""Tests for Lemmas 4 and 5: per-atomic-move faulty-circuit synchronization.

* Lemma 4 (forward move): for every fault f' in K' there is a
  corresponding f in K such that a sync sequence of K^f, prefixed with ONE
  arbitrary vector, synchronizes K'^f' to an equivalent state.
* Lemma 5 (backward move): the same WITHOUT any prefix.

Checked functionally (on the faulty machines' state graphs) over the
atomic-move decompositions of real retimings, using the edge-level
correspondence classes.
"""

import random
from collections import deque

import pytest

from repro.equivalence import extract_stg, is_functional_sync_sequence
from repro.equivalence.explicit import all_vectors
from repro.faults import FaultCorrespondence, full_fault_universe
from repro.logic.three_valued import X
from repro.papercircuits import fig1_gate_pair, fig1_stem_pair
from repro.retiming import AtomicMove, apply_move, can_move
from repro.simulation import SequentialSimulator

from tests.helpers import resettable_random_circuit


def _structural_sync(circuit, fault, max_length=5):
    sim = SequentialSimulator(circuit, fault=fault)
    start = sim.unknown_state()
    if X not in start:
        return []
    seen = {start}
    queue = deque([(start, [])])
    alphabet = all_vectors(len(circuit.input_names))
    while queue:
        state, path = queue.popleft()
        if len(path) >= max_length:
            continue
        for vector in alphabet:
            nxt = sim.step(state, vector).next_state
            if X not in nxt:
                return path + [vector]
            if nxt not in seen and len(seen) < 20000:
                seen.add(nxt)
                queue.append((nxt, path + [vector]))
    return None


def _check_move(circuit, move, rng, max_faults=6):
    """Lemma 4/5 on one atomic move applied to ``circuit``."""
    moved = apply_move(circuit, move)
    if moved.num_registers() > 8 or len(circuit.input_names) > 3:
        return 0
    correspondence = FaultCorrespondence(circuit, moved)
    prefix_length = 1 if move.direction == "forward" else 0
    prefix = [(0,) * len(circuit.input_names)] * prefix_length
    checked = 0
    faults = full_fault_universe(moved)
    for fault in rng.sample(faults, min(max_faults, len(faults))):
        # Lemma 4/5 are existential over correspondents: some
        # corresponding fault's sequences must lift.
        lifted = False
        any_sequence = False
        for original_fault in correspondence.originals_of(fault):
            sequence = _structural_sync(circuit, original_fault)
            if not sequence:
                continue
            any_sequence = True
            stg = extract_stg(moved, fault=fault)
            if is_functional_sync_sequence(stg, prefix + sequence):
                lifted = True
                break
        if any_sequence:
            checked += 1
            assert lifted, (move, fault)
    return checked


class TestFig1AtomicMoves:
    def test_lemma4_forward_gate_move(self):
        k1, _, _ = fig1_gate_pair()
        rng = random.Random(0)
        assert _check_move(k1, AtomicMove("G", "forward"), rng) > 0

    def test_lemma4_forward_stem_move(self):
        k1, _, _ = fig1_stem_pair()
        stem = k1.fanout_stems()[0].name
        rng = random.Random(1)
        assert _check_move(k1, AtomicMove(stem, "forward"), rng) > 0

    def test_lemma5_backward_moves(self):
        # Backward moves on the already-moved Fig. 1 circuits.
        k1, k2, _ = fig1_gate_pair()
        rng = random.Random(2)
        assert _check_move(k2, AtomicMove("G", "backward"), rng) > 0


class TestRandomCircuits:
    @pytest.mark.parametrize("seed", range(4))
    def test_lemmas_on_random_moves(self, seed):
        circuit = resettable_random_circuit(
            seed + 9000, num_inputs=1, num_gates=6, num_dffs=2
        )
        rng = random.Random(seed)
        movable = [
            (name, direction)
            for name in circuit.nodes
            for direction in ("forward", "backward")
            if can_move(circuit, name, direction)
        ]
        if not movable:
            pytest.skip("no atomic move available")
        checked = 0
        for name, direction in rng.sample(movable, min(2, len(movable))):
            checked += _check_move(circuit, AtomicMove(name, direction), rng)
        if checked == 0:
            pytest.skip("no synchronizable faulty machines sampled")
