"""Unit tests for the bitset state-set primitives against brute-force set
semantics, plus the ExplicitSTG facade's cached tables and limits."""

import random

import pytest

from repro.equivalence import bitset as bs
from repro.equivalence import extract_stg
from repro.equivalence.explicit import ENGINE_LIMITS, StateSpaceTooLarge
from tests.helpers import random_circuit, shift_register, toggle_counter


class TestBitsetPrimitives:
    def test_iter_bit_indices_matches_bin(self):
        rng = random.Random(3)
        for width in (1, 7, 8, 9, 63, 64, 65, 200):
            bits = rng.getrandbits(width)
            expected = [i for i in range(width) if bits >> i & 1]
            assert list(bs.iter_bit_indices(bits, width)) == expected
        assert list(bs.iter_bit_indices(0, 64)) == []

    def test_bitset_from_indices_roundtrip(self):
        indices = [0, 3, 17, 64, 100]
        bits = bs.bitset_from_indices(indices)
        assert list(bs.iter_bit_indices(bits, 101)) == indices

    def test_image_matches_brute_force_sets(self):
        rng = random.Random(7)
        for num_states in (4, 16, 100):
            row = [rng.randrange(num_states) for _ in range(num_states)]
            for _ in range(20):
                members = {
                    s for s in range(num_states) if rng.random() < rng.random()
                }
                bits = bs.bitset_from_indices(members)
                expected = {row[s] for s in members}
                image = bs.image_bitset(row, bits, num_states)
                assert set(bs.iter_bit_indices(image, num_states)) == expected

    def test_state_plane_matches_per_lane_construction(self):
        for num_registers in (1, 2, 3, 5):
            total = 1 << num_registers
            for register in range(num_registers):
                plane = bs.state_plane(register, num_registers)
                for lane in range(total):
                    # lane s carries state bin(s); register j holds bit r-1-j
                    bit = (lane >> (num_registers - 1 - register)) & 1
                    assert (plane >> lane) & 1 == bit
            rails = bs.all_state_lanes(num_registers)
            mask = (1 << total) - 1
            for ones, zeros in rails:
                assert ones ^ zeros == mask  # binary on every lane

    def test_decode_plane_into_accumulates_weights(self):
        indices = [0] * 8
        bs.decode_plane_into(indices, 0b10110001, 4, 8)
        assert indices == [4, 0, 0, 0, 4, 4, 0, 4]


class TestFacadeBitsetApi:
    def make_stg(self):
        return extract_stg(random_circuit(13, num_dffs=4), use_store=False)

    def test_bitset_roundtrip_and_full(self):
        stg = self.make_stg()
        assert stg.states_of_bitset(stg.full_bitset) == frozenset(stg.states)
        subset = frozenset(list(stg.states)[::3])
        assert stg.states_of_bitset(stg.bitset_of_states(subset)) == subset

    def test_image_bitset_matches_step_set(self):
        stg = self.make_stg()
        rng = random.Random(5)
        for _ in range(25):
            members = frozenset(s for s in stg.states if rng.random() < 0.5)
            if not members:
                continue
            bits = stg.bitset_of_states(members)
            for vector_index, vector in enumerate(stg.alphabet):
                assert stg.states_of_bitset(
                    stg.image_bitset(bits, vector_index)
                ) == stg.step_set(members, vector)

    def test_image_memo_counts_hits(self):
        stg = self.make_stg()
        bits = stg.full_bitset
        stg.image_bitset(bits, 0)
        before = stg.image_cache_stats()
        stg.image_bitset(bits, 0)
        after = stg.image_cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]
        assert after["entries"] == before["entries"]

    def test_successor_table_is_cached_and_consistent(self):
        stg = self.make_stg()
        table = stg.successor_table(0)
        assert stg.successor_table(0) is table
        for state in stg.states:
            assert stg.successors(state) == [
                stg.next_state[(state, vector)] for vector in stg.alphabet
            ]

    def test_states_after_and_reachable_match_dict_semantics(self):
        stg = self.make_stg()
        # brute force over the dict views
        current = frozenset(stg.states)
        for steps in range(4):
            assert stg.states_after(steps) == current
            current = frozenset(
                stg.next_state[(state, vector)]
                for state in current
                for vector in stg.alphabet
            )
        start = stg.states[0]
        seen = {start}
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for vector in stg.alphabet:
                successor = stg.next_state[(state, vector)]
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        assert stg.reachable_from(start) == frozenset(seen)

    def test_run_matches_toggle_counter(self):
        stg = extract_stg(toggle_counter(), use_store=False)
        final, outputs = stg.run(stg.states[0], [stg.alphabet[-1]] * 3)
        # each output is a binary tuple of the machine's width
        assert all(len(out) == stg.num_outputs for out in outputs)
        assert final in stg.states


class TestEngineLimits:
    def test_deprecated_aliases_warn_and_track_bitset_limits(self):
        from repro.equivalence import explicit

        with pytest.deprecated_call(match="ENGINE_LIMITS"):
            assert (
                explicit.MAX_EXPLICIT_REGISTERS
                == ENGINE_LIMITS["bitset"].registers
            )
        with pytest.deprecated_call(match="ENGINE_LIMITS"):
            assert explicit.MAX_EXPLICIT_INPUTS == ENGINE_LIMITS["bitset"].inputs
        with pytest.raises(AttributeError):
            explicit.NOT_A_LIMIT
        assert "MAX_EXPLICIT_REGISTERS" not in explicit.__all__

    def test_register_limit_message_names_engine_and_cost(self):
        with pytest.raises(StateSpaceTooLarge) as excinfo:
            extract_stg(shift_register(depth=20))
        message = str(excinfo.value)
        assert "bitset" in message
        assert str(ENGINE_LIMITS["bitset"].registers) in message
        assert "2^20" in message

    def test_reference_engine_keeps_seed_limits(self):
        assert ENGINE_LIMITS["reference"].registers == 16
        assert ENGINE_LIMITS["reference"].inputs == 10
        with pytest.raises(StateSpaceTooLarge) as excinfo:
            extract_stg(shift_register(depth=17), engine="reference")
        assert "reference" in str(excinfo.value)

    def test_transitions_cap_reports_estimated_cost(self, monkeypatch):
        from repro.equivalence import explicit

        monkeypatch.setitem(
            explicit.ENGINE_LIMITS,
            "bitset",
            explicit.EngineLimits(registers=18, inputs=12, transitions=4),
        )
        with pytest.raises(StateSpaceTooLarge) as excinfo:
            extract_stg(random_circuit(13, num_dffs=4), use_store=False)
        message = str(excinfo.value)
        assert "transitions" in message
        assert "16 states x 8 vectors" in message

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown STG engine"):
            extract_stg(toggle_counter(), engine="warp")

    def test_ternary_alphabet_rejected(self):
        circuit = toggle_counter()
        width = len(circuit.input_names)
        with pytest.raises(ValueError, match="binary alphabet"):
            extract_stg(circuit, alphabet=[(2,) * width], use_store=False)
