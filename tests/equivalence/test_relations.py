"""Unit tests for STG extraction and the containment relations."""

import pytest

from repro.equivalence import (
    StateSpaceTooLarge,
    all_vectors,
    classify,
    extract_stg,
    space_contains,
    space_equivalent,
    states_equivalent,
    time_contains,
    time_equivalence_bound,
)
from repro.retiming import Retiming, min_period_retiming

from tests.helpers import (
    feedback_and,
    random_circuit,
    requires_numpy,
    resettable_counter,
    toggle_counter,
)


class TestExtraction:
    def test_counter_stg_shape(self):
        circuit = resettable_counter()
        stg = extract_stg(circuit)
        assert len(stg.states) == 4
        assert len(stg.alphabet) == 4
        assert len(stg.next_state) == 16

    def test_transitions_are_deterministic_binary(self):
        stg = extract_stg(resettable_counter())
        for value in stg.next_state.values():
            assert all(bit in (0, 1) for bit in value)

    def test_counter_counts(self):
        stg = extract_stg(resettable_counter())
        # Inputs are ordered by sorted name: (en, rst).
        # en=1, rst=0 from state (0,0): q0 toggles.
        assert stg.next_state[((0, 0), (1, 0))] == (1, 0)
        assert stg.next_state[((1, 0), (1, 0))] == (0, 1)
        # rst=1 from anywhere: back to (0,0).
        for state in stg.states:
            assert stg.next_state[(state, (0, 1))] == (0, 0)

    def test_states_after(self):
        stg = extract_stg(resettable_counter())
        assert stg.states_after(0) == frozenset(stg.states)

    def test_reachable_from(self):
        stg = extract_stg(resettable_counter())
        assert stg.reachable_from((0, 0)) == frozenset(stg.states)

    def test_too_many_registers_rejected(self):
        from tests.helpers import shift_register

        with pytest.raises(StateSpaceTooLarge):
            extract_stg(shift_register(depth=20))

    def test_restricted_alphabet(self):
        stg = extract_stg(resettable_counter(), alphabet=[(1, 0), (0, 1)])
        assert len(stg.alphabet) == 2

    def test_run_outputs(self):
        stg = extract_stg(resettable_counter())
        final, outputs = stg.run((0, 0), [(1, 0), (1, 0)])
        assert outputs == [(0, 0), (1, 0)]
        assert final == (0, 1)


class TestClassification:
    def test_self_equivalence(self):
        stg = extract_stg(resettable_counter())
        for state in stg.states:
            assert states_equivalent(stg, state, stg, state)

    def test_counter_states_distinguishable(self):
        stg = extract_stg(resettable_counter())
        classes = classify([stg]).equivalence_classes(0)
        assert len(classes) == 4  # outputs expose the state directly

    def test_shift_register_tail_states_merge(self):
        """States differing only in never-observable bits are equivalent."""
        from repro.circuit import CircuitBuilder

        builder = CircuitBuilder("deadtail")
        builder.input("a")
        builder.dff("q1", "a")
        builder.dff("q2", "q1")
        builder.buf("g", "q1")  # q2 observable nowhere
        builder.output("z", "g")
        # q2 must drive something to be a valid circuit; feed a second
        # output through an AND with constant blocking observation.
        builder.and_("dead", "q2", "k0")
        builder.const0("k0")
        builder.output("z2", "dead")
        circuit = builder.build()
        stg = extract_stg(circuit)
        classes = classify([stg]).equivalence_classes(0)
        # Only q1 matters: exactly 2 classes of 2 states each.
        sizes = sorted(len(v) for v in classes.values())
        assert sizes == [2, 2]

    def test_alphabet_mismatch_rejected(self):
        a = extract_stg(resettable_counter())
        b = extract_stg(feedback_and())
        with pytest.raises(ValueError):
            classify([a, b])


class TestContainment:
    def test_space_equivalence_reflexive(self):
        stg = extract_stg(resettable_counter())
        assert space_equivalent(stg, stg)
        assert space_contains(stg, stg)

    def test_time_containment_monotone(self):
        """K_i superset_s K_{i+1}: containment can only improve with steps."""
        l1_pair = __import__(
            "repro.papercircuits", fromlist=["fig3_pair"]
        ).fig3_pair()
        l1, l2, _ = l1_pair
        stg1, stg2 = extract_stg(l1), extract_stg(l2)
        assert not space_contains(stg1, stg2)
        # After one step the inconsistent states of L2 vanish.
        assert time_contains(stg1, stg2, 1)
        assert time_contains(stg1, stg2, 2)

    @requires_numpy
    def test_lemma2_bound_on_retimed_circuits(self):
        """K ==Nt K' with N = max(F_stem, B_stem) for real retimings."""
        for seed in range(4):
            circuit = random_circuit(
                seed + 80, num_inputs=2, num_gates=7, num_dffs=2
            )
            result = min_period_retiming(circuit)
            retimed = result.retimed_circuit
            if retimed.num_registers() > 10:
                continue
            stg_k = extract_stg(circuit)
            stg_r = extract_stg(retimed)
            bound = result.retiming.time_equivalence_bound()
            found = time_equivalence_bound(stg_k, stg_r, max_steps=bound + 2)
            assert found is not None
            assert found <= bound, (
                f"seed {seed}: Lemma 2 bound {bound} violated (needs {found})"
            )

    def test_time_equivalence_bound_zero_for_identity(self):
        stg = extract_stg(resettable_counter())
        assert time_equivalence_bound(stg, stg, 3) == 0
