"""Smoke tests: the fast example scripts must run to completion."""

import runpy
import sys
from pathlib import Path

import pytest

from tests.helpers import requires_numpy

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    # quickstart retimes its circuit, which needs the numpy [perf] extra.
    pytest.param("quickstart.py", marks=requires_numpy),
    "sync_preservation.py",
    "fault_correspondence_tour.py",
    "compact_and_verify.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_slow_examples_importable():
    """The heavyweight studies must at least parse and expose main()."""
    for script in ["atpg_cost_study.py", "retime_for_testability.py"]:
        namespace = runpy.run_path(str(EXAMPLES / script), run_name="not_main")
        assert "main" in namespace
