"""Tests for cube covers and two-level minimization."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsm.twolevel import (
    cover_from_strings,
    cover_to_strings,
    cube_contains,
    cube_from_string,
    cube_matches_vector,
    cube_to_string,
    eval_cover,
    minimize_cover,
)


class TestCubeBasics:
    def test_string_round_trip(self):
        for text in ["01-", "---", "111", "0-0"]:
            assert cube_to_string(cube_from_string(text), len(text)) == text

    def test_bad_literal(self):
        with pytest.raises(ValueError):
            cube_from_string("01z")

    def test_matches_vector(self):
        cube = cube_from_string("0-1")
        assert cube_matches_vector(cube, 0b100)  # bit0=0, bit1=0, bit2=1
        assert not cube_matches_vector(cube, 0b101)

    def test_containment(self):
        general = cube_from_string("0--")
        specific = cube_from_string("01-")
        assert cube_contains(general, specific)
        assert not cube_contains(specific, general)
        assert cube_contains(general, general)


def _onset(cubes, width):
    return {
        bits
        for bits in range(1 << width)
        if eval_cover(cubes, bits)
    }


class TestMinimization:
    def test_distance_one_merge(self):
        cover = cover_from_strings(["00", "01"])
        assert minimize_cover(cover) == cover_from_strings(["0-"])

    def test_full_block_merge(self):
        cover = cover_from_strings(["00", "01", "10", "11"])
        assert minimize_cover(cover) == cover_from_strings(["--"])

    def test_containment_removed(self):
        cover = cover_from_strings(["0-", "01"])
        assert minimize_cover(cover) == cover_from_strings(["0-"])

    def test_no_spurious_merge(self):
        cover = cover_from_strings(["00", "11"])
        assert sorted(minimize_cover(cover)) == sorted(cover)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(2, 5),
        st.data(),
    )
    def test_onset_preserved(self, width, data):
        texts = data.draw(
            st.lists(
                st.text(alphabet="01-", min_size=width, max_size=width),
                min_size=0,
                max_size=12,
            )
        )
        cover = cover_from_strings(texts)
        minimized = minimize_cover(cover)
        assert _onset(cover, width) == _onset(minimized, width)
        assert len(minimized) <= len(set(cover))

    def test_big_structured_cover_compresses(self):
        """A complete subcube split into minterms collapses to one cube."""
        width = 6
        cover = cover_from_strings(
            ["".join(bits) + "01" for bits in itertools.product("01", repeat=4)]
        )
        minimized = minimize_cover(cover)
        assert minimized == cover_from_strings(["----01"])

    def test_empty_cover(self):
        assert minimize_cover([]) == []

    def test_cover_to_strings(self):
        cover = cover_from_strings(["0-1"])
        assert cover_to_strings(cover, 3) == ["0-1"]
