"""Tests for the FSM model and KISS2 I/O."""

import pytest

from repro.fsm import (
    FSM,
    KissError,
    Transition,
    cube_matches,
    cubes_intersect,
    parse_kiss,
    write_kiss,
)

SAMPLE = """
# tiny machine
.i 2
.o 1
.s 2
.r A
0- A A 0
1- A B 1
-- B A 0
.e
"""


class TestCubes:
    def test_cube_matches(self):
        assert cube_matches("0-1", (0, 1, 1))
        assert not cube_matches("0-1", (1, 1, 1))
        assert cube_matches("---", (0, 0, 1))

    def test_cube_length_checked(self):
        with pytest.raises(ValueError):
            cube_matches("01", (0,))

    def test_bad_literal(self):
        with pytest.raises(ValueError):
            cube_matches("0z", (0, 1))

    def test_cubes_intersect(self):
        assert cubes_intersect("0-", "00")
        assert cubes_intersect("--", "11")
        assert not cubes_intersect("0-", "1-")


class TestModel:
    def test_parse_sample(self):
        fsm = parse_kiss(SAMPLE, "tiny")
        assert fsm.num_inputs == 2
        assert fsm.num_outputs == 1
        assert fsm.num_states == 2
        assert fsm.reset_state == "A"
        assert len(fsm.transitions) == 3

    def test_step(self):
        fsm = parse_kiss(SAMPLE)
        assert fsm.step("A", (1, 0)) == ("B", "1")
        assert fsm.step("A", (0, 1)) == ("A", "0")
        assert fsm.step("B", (1, 1)) == ("A", "0")

    def test_incomplete_step_returns_none(self):
        fsm = FSM("inc", 1, 1, ["S"], [Transition("1", "S", "S", "1")])
        assert fsm.step("S", (0,)) == (None, None)

    def test_determinism(self):
        fsm = parse_kiss(SAMPLE)
        assert fsm.is_deterministic()
        overlapping = FSM(
            "nd",
            1,
            1,
            ["S"],
            [Transition("-", "S", "S", "0"), Transition("1", "S", "S", "1")],
        )
        assert not overlapping.is_deterministic()

    def test_reachability(self):
        fsm = parse_kiss(SAMPLE)
        assert fsm.reachable_states() == {"A", "B"}

    def test_characteristics(self):
        fsm = parse_kiss(SAMPLE)
        assert fsm.characteristics() == {"PI": 2, "PO": 1, "States": 2}

    def test_validation(self):
        with pytest.raises(ValueError):
            FSM("bad", 2, 1, ["A"], [Transition("0", "A", "Z", "1")])
        with pytest.raises(ValueError):
            FSM("bad", 2, 1, ["A"], [Transition("0--", "A", "A", "1")])


class TestKissIO:
    def test_round_trip(self):
        fsm = parse_kiss(SAMPLE, "tiny")
        again = parse_kiss(write_kiss(fsm), "tiny")
        assert again.num_states == fsm.num_states
        assert again.transitions == fsm.transitions
        assert again.reset_state == fsm.reset_state

    def test_missing_directives(self):
        with pytest.raises(KissError):
            parse_kiss("0 A A 0\n.e\n")

    def test_bad_field_count(self):
        with pytest.raises(KissError):
            parse_kiss(".i 1\n.o 1\n0 A A\n.e\n")

    def test_state_count_mismatch(self):
        text = ".i 1\n.o 1\n.s 5\n0 A A 0\n.e\n"
        with pytest.raises(KissError):
            parse_kiss(text)

    def test_unknown_directive(self):
        with pytest.raises(KissError):
            parse_kiss(".q 1\n")
