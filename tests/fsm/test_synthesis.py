"""Tests for encodings, synthesis and the Table I benchmark machines."""

import itertools
import random

import pytest

from repro.circuit import validate
from repro.fsm import (
    EXPLICIT_RESET,
    TABLE1_PROFILES,
    SynthesisError,
    code_width,
    encode,
    mcnc_fsm,
    parse_kiss,
    synthesize,
    table1,
)
from repro.fsm.mcnc import mcnc_encoding, synthesize_benchmark
from repro.simulation import SequentialSimulator

SMALL = """
.i 2
.o 2
.s 4
.r A
0- A B 10
1- A C 01
-- B D 00
-0 C A 11
-1 C D 00
-- D A 01
.e
"""


class TestEncoding:
    def test_code_width(self):
        assert code_width(1) == 1
        assert code_width(2) == 1
        assert code_width(3) == 2
        assert code_width(27) == 5
        assert code_width(121) == 7

    @pytest.mark.parametrize("style", ["natural", "ji", "jo", "jc"])
    def test_codes_unique_and_reset_zero(self, style):
        fsm = parse_kiss(SMALL, "small")
        encoding = encode(fsm, style)
        codes = list(encoding.code_of.values())
        assert len(set(codes)) == len(codes)
        assert encoding.code_of["A"] == (0, 0)

    def test_unknown_style(self):
        fsm = parse_kiss(SMALL)
        with pytest.raises(ValueError):
            encode(fsm, "zz")

    def test_decode(self):
        fsm = parse_kiss(SMALL)
        encoding = encode(fsm, "jc")
        for state, code in encoding.code_of.items():
            assert encoding.decode(code) == state


def _check_fsm_equivalence(fsm, result, seed, cycles=20):
    """Synthesized circuit must track the symbolic machine from reset."""
    circuit = result.circuit
    encoding = result.encoding
    rng = random.Random(seed)
    sim = SequentialSimulator(circuit)
    # Reset: explicit reset line or start from the reset state's encoding
    # (mapped into the circuit's canonical register order).
    symbolic = fsm.reset_state or fsm.states[0]
    state = result.circuit_state(symbolic)
    has_reset = result.explicit_reset
    for _ in range(cycles):
        vector_bits = [rng.randint(0, 1) for _ in range(fsm.num_inputs)]
        next_symbolic, output_cube = fsm.step(symbolic, vector_bits)
        if next_symbolic is None:
            continue  # unspecified: circuit behaviour is free
        inputs = {f"x{i}": bit for i, bit in enumerate(vector_bits)}
        if has_reset:
            inputs["rst"] = 0
        vector = tuple(inputs[name] for name in circuit.input_names)
        step = sim.step(state, vector)
        # Outputs asserted by the cube must be 1; explicit 0s must be 0.
        for k, literal in enumerate(output_cube):
            po = circuit.output_names.index(f"z{k}")
            if literal == "1":
                assert step.outputs[po] == 1, (symbolic, vector_bits, k)
            elif literal == "0":
                assert step.outputs[po] == 0, (symbolic, vector_bits, k)
        state = step.next_state
        assert state == result.circuit_state(next_symbolic)
        symbolic = next_symbolic


class TestSynthesis:
    @pytest.mark.parametrize("style", ["natural", "ji", "jo", "jc"])
    @pytest.mark.parametrize("script", ["delay", "rugged"])
    def test_small_machine_tracks_fsm(self, style, script):
        fsm = parse_kiss(SMALL, "small")
        result = synthesize(fsm, style, script)
        validate(result.circuit)
        assert result.circuit.num_registers() == 2
        _check_fsm_equivalence(fsm, result, seed=7)

    def test_explicit_reset_synchronizes(self):
        fsm = parse_kiss(SMALL, "small")
        result = synthesize(fsm, "jc", "delay", explicit_reset=True)
        circuit = result.circuit
        assert "rst" in circuit.input_names
        sim = SequentialSimulator(circuit)
        vector = tuple(
            1 if name == "rst" else 0 for name in circuit.input_names
        )
        trace = sim.run([vector])
        assert trace.final_state == result.circuit_state(fsm.reset_state)
        assert set(trace.final_state) == {0}

    def test_scripts_differ_on_benchmarks(self):
        # On tiny machines the scripts can tie; the benchmark machines show
        # the intended area/delay trade-off.
        shallow = synthesize_benchmark("s820", "jc", "delay").circuit
        compact = synthesize_benchmark("s820", "jc", "rugged").circuit
        assert shallow.clock_period() < compact.clock_period()
        assert compact.num_gates() < shallow.num_gates()

    def test_gate_cap(self):
        fsm = mcnc_fsm("scf")
        with pytest.raises(SynthesisError):
            synthesize(fsm, "jc", "delay", max_gates=10)

    def test_unknown_script(self):
        fsm = parse_kiss(SMALL)
        with pytest.raises(SynthesisError):
            synthesize(fsm, "jc", "fast")


class TestBenchmarks:
    def test_table1_matches_paper(self):
        rows = {row["FSM"]: row for row in table1()}
        assert rows["dk16"] == {"FSM": "dk16", "PI": 3, "PO": 3, "States": 27}
        assert rows["pma"] == {"FSM": "pma", "PI": 9, "PO": 8, "States": 24}
        assert rows["s510"] == {"FSM": "s510", "PI": 20, "PO": 7, "States": 47}
        assert rows["s820"] == {"FSM": "s820", "PI": 18, "PO": 19, "States": 25}
        assert rows["s832"] == {"FSM": "s832", "PI": 18, "PO": 19, "States": 25}
        assert rows["scf"] == {"FSM": "scf", "PI": 27, "PO": 54, "States": 121}

    @pytest.mark.parametrize("name", sorted(TABLE1_PROFILES))
    def test_machines_deterministic_and_reachable(self, name):
        fsm = mcnc_fsm(name)
        assert fsm.is_deterministic()
        assert fsm.reachable_states() == set(fsm.states)

    def test_generation_deterministic_in_seed(self):
        a = mcnc_fsm("pma", seed=1)
        b = mcnc_fsm("pma", seed=1)
        c = mcnc_fsm("pma", seed=2)
        assert a.transitions == b.transitions
        assert a.transitions != c.transitions

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError):
            mcnc_fsm("s9234")

    def test_dff_counts_match_paper(self):
        """Original circuits carry exactly ceil(log2 states) flip-flops."""
        expected = {"dk16": 5, "pma": 5, "s510": 6, "s820": 5, "s832": 5, "scf": 7}
        for name, dffs in expected.items():
            circuit = synthesize_benchmark(name, "jc", "rugged").circuit
            assert circuit.num_registers() == dffs, name

    def test_sync_input_for_no_reset_machines(self):
        fsm = mcnc_fsm("s820")
        # Asserting input 0 from any state returns to the reset state.
        for state in fsm.states[:5]:
            vector = [1] + [0] * (fsm.num_inputs - 1)
            dst, _ = fsm.step(state, vector)
            assert dst == fsm.states[0]

    def test_cluster_encoding_reset_zero(self):
        fsm = mcnc_fsm("s510")
        for style in ["ji", "jo", "jc"]:
            encoding = mcnc_encoding(fsm, style)
            assert encoding.code_of[fsm.states[0]] == (0,) * encoding.width
            codes = list(encoding.code_of.values())
            assert len(set(codes)) == len(codes)

    def test_benchmark_synthesis_styles_differ(self):
        a = synthesize_benchmark("s820", "ji", "rugged").circuit
        b = synthesize_benchmark("s820", "jo", "rugged").circuit
        assert a.num_gates() != b.num_gates() or a.clock_period() != b.clock_period()
