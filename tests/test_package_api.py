"""Smoke tests of the public package surface."""

import importlib

import pytest

import repro

MODULES = [
    "repro.logic",
    "repro.circuit",
    "repro.simulation",
    "repro.faults",
    "repro.faultsim",
    "repro.retiming",
    "repro.fsm",
    "repro.equivalence",
    "repro.testset",
    "repro.atpg",
    "repro.core",
    "repro.papercircuits",
    "repro.store",
    "repro.pipeline",
    "repro.service",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", MODULES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_version():
    assert repro.__version__


def test_public_symbols_documented():
    """Every public callable/class exported by the subpackages has a docstring."""
    import inspect

    undocumented = []
    for name in MODULES:
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                continue  # constants and type aliases
            if not getattr(obj, "__doc__", None):
                undocumented.append(f"{name}.{symbol}")
    assert not undocumented, undocumented
