"""Tests for the test-set model and serialization."""

import pytest

from repro.testset import TestSet


def sample() -> TestSet:
    return TestSet.from_lists(
        "sample", 2, [[(0, 1), (1, 1)], [(1, 0)], [(2, 0), (0, 0)]]
    )


class TestModel:
    def test_counts(self):
        ts = sample()
        assert ts.num_sequences == 3
        assert ts.num_vectors == 5

    def test_vector_width_checked(self):
        with pytest.raises(ValueError):
            TestSet.from_lists("bad", 2, [[(0, 1, 1)]])

    def test_with_prefix(self):
        ts = sample()
        prefixed = ts.with_prefix([(0, 0)])
        assert prefixed.num_sequences == 3
        assert prefixed.num_vectors == 8
        assert all(seq[0] == (0, 0) for seq in prefixed.sequences)

    def test_prefix_width_checked(self):
        with pytest.raises(ValueError):
            sample().with_prefix([(0,)])

    def test_extended(self):
        ts = sample()
        combined = ts.extended(ts)
        assert combined.num_sequences == 6

    def test_extended_width_mismatch(self):
        other = TestSet.from_lists("o", 3, [[(0, 0, 0)]])
        with pytest.raises(ValueError):
            sample().extended(other)

    def test_as_lists_round_trip(self):
        ts = sample()
        rebuilt = TestSet.from_lists(ts.circuit_name, ts.num_inputs, ts.as_lists())
        assert rebuilt == ts

    def test_str(self):
        assert "3 sequences" in str(sample())


class TestTextFormat:
    def test_round_trip(self):
        ts = sample()
        parsed = TestSet.from_text(ts.to_text())
        assert parsed == ts

    def test_x_values_preserved(self):
        ts = TestSet.from_lists("x", 2, [[(2, 1)]])
        text = ts.to_text()
        assert "x1" in text
        assert TestSet.from_text(text) == ts

    def test_parse_headerless(self):
        parsed = TestSet.from_text("01\n10\n")
        assert parsed.num_inputs == 2
        assert parsed.num_sequences == 1
        assert parsed.sequences[0] == ((0, 1), (1, 0))

    def test_empty(self):
        parsed = TestSet.from_text("# testset t inputs=3\n")
        assert parsed.num_inputs == 3
        assert parsed.num_sequences == 0
