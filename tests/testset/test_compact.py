"""Tests for static test-set compaction."""

import pytest

from repro.atpg import AtpgBudget, run_atpg
from repro.faultsim import fault_simulate
from repro.testset import TestSet, compact_test_set

from tests.helpers import resettable_counter


@pytest.fixture(scope="module")
def circuit_and_tests():
    circuit = resettable_counter()
    result = run_atpg(
        circuit, budget=AtpgBudget(total_seconds=8, random_sequences=24)
    )
    return circuit, result.test_set


class TestCompaction:
    def test_coverage_preserved(self, circuit_and_tests):
        circuit, test_set = circuit_and_tests
        result = compact_test_set(circuit, test_set)
        before = fault_simulate(circuit, test_set.as_lists())
        after = fault_simulate(circuit, result.compacted.as_lists())
        assert set(after.detections) == set(before.detections)

    def test_never_grows(self, circuit_and_tests):
        circuit, test_set = circuit_and_tests
        result = compact_test_set(circuit, test_set)
        assert result.sequences_after <= result.sequences_before
        assert result.vectors_after <= result.vectors_before

    def test_redundant_sequences_dropped(self, circuit_and_tests):
        circuit, test_set = circuit_and_tests
        # Duplicate every sequence: at least half must be dropped.
        doubled = test_set.extended(test_set)
        result = compact_test_set(circuit, doubled)
        assert result.sequences_after <= test_set.num_sequences

    def test_kept_indices_consistent(self, circuit_and_tests):
        circuit, test_set = circuit_and_tests
        result = compact_test_set(circuit, test_set)
        rebuilt = tuple(test_set.sequences[i] for i in result.kept_indices)
        assert rebuilt == result.compacted.sequences

    def test_empty_test_set(self):
        circuit = resettable_counter()
        empty = TestSet(circuit.name, 2, ())
        result = compact_test_set(circuit, empty)
        assert result.sequences_after == 0

    def test_summary(self, circuit_and_tests):
        circuit, test_set = circuit_and_tests
        assert "sequences" in compact_test_set(circuit, test_set).summary()
