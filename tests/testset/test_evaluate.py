"""Tests for test-set evaluation and original-vs-retimed comparison."""

import pytest

from repro.atpg import AtpgBudget, run_atpg
from repro.retiming import performance_retiming
from repro.testset import (
    CoverageComparison,
    TestSet,
    compare_coverage,
    derive_retimed_test_set,
    derived_prefix_length,
    evaluate_test_set,
)

from tests.helpers import resettable_counter


@pytest.fixture(scope="module")
def counter_test_set():
    circuit = resettable_counter()
    result = run_atpg(
        circuit, budget=AtpgBudget(total_seconds=8, random_sequences=16)
    )
    return circuit, result.test_set


class TestEvaluate:
    def test_matches_atpg_coverage(self, counter_test_set):
        circuit, test_set = counter_test_set
        result = evaluate_test_set(circuit, test_set)
        assert result.fault_coverage > 80.0

    def test_restricted_fault_list(self, counter_test_set):
        circuit, test_set = counter_test_set
        from repro.faults import collapse_faults

        some = collapse_faults(circuit).representatives[:5]
        result = evaluate_test_set(circuit, test_set, faults=some)
        assert result.num_faults == 5


class TestCompare:
    def test_table3_style_comparison(self, counter_test_set):
        circuit, test_set = counter_test_set
        retiming = performance_retiming(circuit, backward_passes=1)
        retimed = retiming.retimed_circuit
        derived = derive_retimed_test_set(test_set, retiming.retiming)
        comparison = compare_coverage(circuit, retimed, test_set, derived)
        assert isinstance(comparison, CoverageComparison)
        assert comparison.retimed_faults > comparison.original_faults
        # Theorem 4 shape: derived coverage tracks the original's.
        assert comparison.retimed_coverage >= comparison.original_coverage - 10.0

    def test_coverage_properties(self):
        comparison = CoverageComparison("c", 100, 10, 120, 12)
        assert comparison.original_coverage == 90.0
        assert comparison.retimed_coverage == 90.0

    def test_empty_fault_lists(self):
        comparison = CoverageComparison("c", 0, 0, 0, 0)
        assert comparison.original_coverage == 100.0
        assert comparison.retimed_coverage == 100.0


class TestPrefixLength:
    def test_derived_prefix_length(self):
        circuit = resettable_counter()
        retiming = performance_retiming(
            circuit, backward_passes=1
        ).retiming
        assert derived_prefix_length(retiming) == retiming.max_forward_moves()
