"""Shared circuit fixtures for the test suite."""

from __future__ import annotations

import itertools
import random
from typing import List, Tuple

import pytest

from repro.circuit import Circuit, CircuitBuilder, GateType

try:  # the optional [perf] extra
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

#: Skip marker for tests that exercise numpy-only paths (the word-plane
#: kernel backend and the dense retiming solvers).
requires_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="needs numpy (the optional [perf] extra)"
)


def feedback_and() -> Circuit:
    """``g1 = AND(a, q); q = DFF(g1); z = g1`` -- one stem, one register."""
    builder = CircuitBuilder("feedback_and")
    builder.input("a")
    builder.and_("g1", "a", "q")
    builder.dff("q", "g1")
    builder.output("z", "g1")
    return builder.build()


def toggle_counter() -> Circuit:
    """Two-bit counter with enable: classic small sequential circuit."""
    builder = CircuitBuilder("toggle_counter")
    builder.input("en")
    builder.xor("n0", "en", "q0")
    builder.and_("carry", "en", "q0")
    builder.xor("n1", "carry", "q1")
    builder.dff("q0", "n0")
    builder.dff("q1", "n1")
    builder.output("z0", "q0")
    builder.output("z1", "q1")
    return builder.build()


def resettable_counter() -> Circuit:
    """Two-bit counter with synchronous reset (synchronizable from all-X).

    ``rst=1`` forces both flip-flops to 0 regardless of state, so ``<1>`` on
    ``rst`` is a structural synchronizing sequence.
    """
    builder = CircuitBuilder("resettable_counter")
    builder.input("rst")
    builder.input("en")
    builder.not_("nrst", "rst")
    builder.xor("t0", "en", "q0")
    builder.and_("n0", "nrst", "t0")
    builder.and_("carry", "en", "q0")
    builder.xor("t1", "carry", "q1")
    builder.and_("n1", "nrst", "t1")
    builder.dff("q0", "n0")
    builder.dff("q1", "n1")
    builder.output("z0", "q0")
    builder.output("z1", "q1")
    return builder.build()


def shift_register(depth: int = 3) -> Circuit:
    """A ``depth``-deep shift register: d -> q1 -> ... -> qN -> z."""
    builder = CircuitBuilder(f"shift{depth}")
    builder.input("d")
    previous = "d"
    for stage in range(1, depth + 1):
        previous = builder.dff(f"q{stage}", previous)
    builder.buf("zbuf", previous)
    builder.output("z", "zbuf")
    return builder.build()


def pipelined_logic() -> Circuit:
    """Pipeline with registers between two logic levels and a fanout stem."""
    builder = CircuitBuilder("pipelined_logic")
    builder.input("a")
    builder.input("b")
    builder.input("c")
    builder.and_("g1", "a", "b")
    builder.dff("r1", "g1")
    builder.or_("g2", "r1", "c")
    builder.not_("g3", "r1")
    builder.dff("r2", "g2")
    builder.dff("r3", "g3")
    builder.xor("g4", "r2", "r3")
    builder.output("z", "g4")
    return builder.build()


def random_circuit(
    seed: int,
    num_inputs: int = 3,
    num_gates: int = 10,
    num_dffs: int = 3,
    num_outputs: int = 2,
) -> Circuit:
    """A random valid sequential circuit (deterministic in ``seed``).

    Gates read earlier signals; a subset of gate outputs is registered and
    the register outputs are fed back as additional gate operands, so the
    result is sequential with feedback but never has combinational cycles.
    """
    rng = random.Random(seed)
    builder = CircuitBuilder(f"rand{seed}")
    inputs = [builder.input(f"i{k}") for k in range(num_inputs)]
    # Pre-declare flip-flop output names so gates can reference them.
    dff_names = [f"q{k}" for k in range(num_dffs)]
    available = inputs + dff_names
    gate_types = [
        GateType.AND,
        GateType.OR,
        GateType.NAND,
        GateType.NOR,
        GateType.XOR,
        GateType.NOT,
    ]
    gates: List[str] = []
    for k in range(num_gates):
        gate_type = rng.choice(gate_types)
        arity = 1 if gate_type is GateType.NOT else rng.randint(2, 3)
        operands = [rng.choice(available) for _ in range(arity)]
        name = f"g{k}"
        builder.gate(name, gate_type, operands)
        gates.append(name)
        available.append(name)
    if len(gates) < num_dffs:
        raise ValueError("need at least as many gates as flip-flops")
    sources = rng.sample(gates, num_dffs)
    for name, source in zip(dff_names, sources):
        builder.dff(name, source)
    observed = set()
    for k in range(num_outputs):
        choice = rng.choice(gates)
        builder.output(f"z{k}", choice)
        observed.add(choice)
    # Attach any otherwise-dangling gate to an extra output so the circuit
    # is strictly valid (no dead logic).
    feeding = set()
    for definition in builder._signals.values():
        feeding.update(definition.operands)
    extra = 0
    for signal in gates + dff_names:
        if signal not in feeding and signal not in observed:
            builder.output(f"zx{extra}", signal)
            observed.add(signal)
            extra += 1
    return builder.build()


def resettable_random_circuit(
    seed: int,
    num_inputs: int = 2,
    num_gates: int = 8,
    num_dffs: int = 3,
    num_outputs: int = 2,
) -> Circuit:
    """A random circuit whose flip-flops are gated by a synchronous reset.

    ``rst = 1`` forces every flip-flop to 0, so the circuit is always
    structurally synchronizable -- useful for theorem-level tests that
    need synchronizing sequences to exist.
    """
    rng = random.Random(seed)
    builder = CircuitBuilder(f"rrand{seed}")
    builder.input("rst")
    builder.not_("rst_n", "rst")
    inputs = [builder.input(f"i{k}") for k in range(num_inputs)]
    dff_names = [f"q{k}" for k in range(num_dffs)]
    available = inputs + dff_names
    gate_types = [GateType.AND, GateType.OR, GateType.NAND, GateType.XOR]
    gates: List[str] = []
    for k in range(num_gates):
        gate_type = rng.choice(gate_types)
        operands = [rng.choice(available) for _ in range(2)]
        name = builder.gate(f"g{k}", gate_type, operands)
        gates.append(name)
        available.append(name)
    sources = rng.sample(gates, num_dffs)
    for name, source in zip(dff_names, sources):
        gated = builder.and_(f"{name}_d", "rst_n", source)
        builder.dff(name, gated)
    observed = set()
    for k in range(num_outputs):
        choice = rng.choice(gates)
        builder.output(f"z{k}", choice)
        observed.add(choice)
    feeding = set()
    for definition in builder._signals.values():
        feeding.update(definition.operands)
    extra = 0
    for signal in gates + dff_names:
        if signal not in feeding and signal not in observed:
            builder.output(f"zx{extra}", signal)
            observed.add(signal)
            extra += 1
    return builder.build()


def token_ring(width: int, name: str = "") -> Circuit:
    """A one-hot token ring with synchronous reset: ``width`` flip-flops,
    ``width + 1`` reset-reachable states.

    ``rst=1`` clears the ring; ``start=1`` on an empty ring injects a
    token that then rotates forever (``q_{w-1}`` wraps to ``q0``).  The
    output observes ``q_{w-1}`` through a BUF, and the fanout stem feeding
    that BUF has one register on its in-edge -- so labelling the stem
    ``-1`` is a legal single forward move that the reach engine can verify
    (reachability-bounded Lemma 2) far beyond the bitset engine's
    18-register wall.
    """
    builder = CircuitBuilder(name or f"ring{width}")
    builder.input("rst")
    builder.input("start")
    builder.not_("go", "rst")
    qs = [f"q{i}" for i in range(width)]
    level = list(qs)
    k = 0
    while len(level) > 1:
        paired = []
        for i in range(0, len(level) - 1, 2):
            paired.append(builder.or_(f"ort{k}", level[i], level[i + 1]))
            k += 1
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    builder.not_("none_token", level[0])
    builder.and_("inj", "start", "none_token")
    builder.or_("n0", "inj", qs[-1])
    builder.and_("d0", "go", "n0")
    builder.dff(qs[0], "d0")
    for i in range(1, width):
        builder.and_(f"d{i}", "go", qs[i - 1])
        builder.dff(qs[i], f"d{i}")
    builder.buf("zbuf", qs[-1])
    builder.output("z", "zbuf")
    return builder.build()


def token_ring_stem(circuit: Circuit) -> str:
    """The fanout stem feeding ``zbuf`` (the forward-move target)."""
    (edge,) = [e for e in circuit.edges if e.sink == "zbuf"]
    return edge.source


def all_binary_vectors(width: int) -> List[Tuple[int, ...]]:
    """All 2**width binary vectors, in lexicographic order."""
    return list(itertools.product((0, 1), repeat=width))
