"""Shared fixtures: keep the artifact store hermetic under test.

The persistent store defaults to ``~/.cache/repro-store``; a test run must
neither read a developer's warm cache (it could mask regressions in the
code generators) nor pollute it.  Every test therefore runs against a
throwaway store root unless it explicitly builds its own
:class:`~repro.store.core.ArtifactStore`.
"""

import pytest


@pytest.fixture(autouse=True)
def _hermetic_store(tmp_path, monkeypatch):
    from repro.store.core import set_default_store

    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "repro-store"))
    monkeypatch.delenv("REPRO_STORE_DISABLE", raising=False)
    set_default_store(None)  # force re-creation from the patched env
    yield
    set_default_store(None)
