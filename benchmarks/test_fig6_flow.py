"""Fig. 6: the retime-for-testability ATPG flow (the s510.jo.sr study).

The paper's headline application: instead of running ATPG directly on the
hard performance-retimed circuit, retime it back to a minimum-register
version, generate there, and apply the prefixed test set to the hard
circuit.  Assert the paper's shape: the flow's coverage on the hard
circuit matches (within noise) the coverage ATPG achieves on the easy
circuit, at a fraction of the cost of direct ATPG on the hard circuit.
"""

import pytest

from repro.atpg import run_atpg
from repro.core import build_pair, retime_for_testability_flow
from repro.core.experiments import CircuitSpec


@pytest.fixture(scope="module")
def study_pair():
    # The paper's case study circuit family: s510.jo.sr.
    return build_pair(CircuitSpec("s510", "jo", "rugged", 0))


_flow_cache = {}


def test_fig6_flow(benchmark, study_pair, budget):
    hard = study_pair.retimed

    def run_flow():
        return retime_for_testability_flow(hard, budget=budget)

    flow = benchmark.pedantic(run_flow, rounds=1, iterations=1)
    _flow_cache["flow"] = flow
    print()
    print(flow.summary())

    # The easy circuit is register-minimal: no more DFFs than the hard one.
    assert flow.easy_circuit.num_registers() <= hard.num_registers()
    # The derived test set must carry (almost all of) the coverage across.
    assert flow.hard_coverage >= flow.easy_coverage - 8.0
    assert flow.hard_coverage > 50.0


def test_fig6_flow_beats_direct_atpg(benchmark, study_pair, budget):
    """The flow's cost advantage: direct ATPG on the hard circuit spends
    at least as much CPU for no better coverage."""
    hard = study_pair.retimed
    flow = _flow_cache.get("flow") or retime_for_testability_flow(
        hard, budget=budget
    )

    def run_direct():
        return run_atpg(hard, budget=budget)

    direct = benchmark.pedantic(run_direct, rounds=1, iterations=1)
    print()
    print(f"flow:   {flow.hard_coverage:.1f}% FC in {flow.atpg_result.cpu_seconds:.1f}s (ATPG on easy)")
    print(f"direct: {direct.fault_coverage:.1f}% FC in {direct.cpu_seconds:.1f}s (ATPG on hard)")
    assert direct.cpu_seconds >= 0.8 * flow.atpg_result.cpu_seconds
    assert flow.hard_coverage >= direct.fault_coverage - 5.0
