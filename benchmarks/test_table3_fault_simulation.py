"""Table III: fault simulation of derived test sets.

For each circuit pair: generate a test set for the *original* circuit,
derive the retimed circuit's test set by prefixing the pre-determined
number of arbitrary vectors (Theorem 4), fault-simulate both, and compare
undetected counts.

Paper shape asserted:

* the retimed circuit has more collapsed faults (added flip-flops = more
  lines, Fig. 4);
* the derived test set leaves (nearly) the same number of faults
  undetected -- discrepancies only from the register split/merge effect
  discussed in Section V.C, bounded to a few faults per circuit;
* the prefix lengths match Section V.C: one vector for the three circuits
  with a forward move, zero for the rest.
"""

import pytest

from benchmarks.conftest import table2_specs
from repro.atpg import run_atpg
from repro.core import build_pair, format_table, table3_row

_rows = []


@pytest.mark.parametrize("spec", table2_specs(), ids=lambda s: s.name)
def test_table3_row(benchmark, spec, budget):
    pair = build_pair(spec)
    atpg = run_atpg(pair.original, budget=budget)
    test_set = atpg.test_set

    def run():
        return table3_row(pair, test_set)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows.append(row)
    print()
    print(format_table([row], list(row.keys())))

    # More flip-flops = more lines = more collapsed faults.
    assert row["#Faults.re"] > row["#Faults"]
    # Prefix length per Section V.C.
    assert row["prefix"] == spec.forward_stem_moves
    # Theorem 4 shape: the derived set preserves coverage up to the
    # register-split effect.  Bound the discrepancy relative to how many
    # lines the retiming touched.
    grown_lines = row["#Faults.re"] - row["#Faults"]
    undetected_growth = row["#UnDet.re"] - row["#UnDet"]
    assert undetected_growth <= max(6, grown_lines), row


def test_table3_aggregate(benchmark):
    benchmark(lambda: None)  # participate in --benchmark-only runs
    if not _rows:
        pytest.skip("row benchmarks did not run")
    print()
    print(
        format_table(
            _rows,
            ["Circuit", "#Faults", "#UnDet", "#Faults.re", "#UnDet.re", "prefix"],
        )
    )
    # In the paper, most rows have identical undetected counts and the
    # rest differ by a handful; require the same flavour: the *relative*
    # undetected growth stays small.
    for row in _rows:
        if row["#UnDet"]:
            assert row["#UnDet.re"] <= 2.1 * row["#UnDet"] + 6, row
