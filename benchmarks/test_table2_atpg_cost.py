"""Table II: test pattern generation on original vs retimed circuits.

For each circuit variant, run the sequential ATPG engine on the original
and on its performance-retimed version under identical budgets, reporting
#DFF / %FC / %FE / CPU and the CPU ratio, and assert the paper's shape:

* retimed circuits carry several times more flip-flops;
* ATPG on the retimed circuit costs more (CPU ratio > 1 on the aggregate);
* fault coverage and efficiency on the retimed circuit never beat the
  original's (up to noise).

Absolute magnitudes are compressed relative to the paper (a bounded
search in Python versus HITEC running to 10^6 DECstation seconds);
EXPERIMENTS.md discusses the calibration.
"""

import pytest

from benchmarks.conftest import table2_specs
from repro.core import build_pair, format_table, table2_row

_rows = []


@pytest.mark.parametrize("spec", table2_specs(), ids=lambda s: s.name)
def test_table2_row(benchmark, spec, budget):
    pair = build_pair(spec)
    # Paper shape: flip-flop growth of the retimed version.
    assert pair.retimed.num_registers() >= 2 * pair.original.num_registers()

    def run():
        return table2_row(pair, budget)

    row, original_result, retimed_result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    _rows.append(row)
    print()
    print(format_table([row], list(row.keys())))
    # Per-row shape: the retimed circuit must never be *better* to test.
    assert row["%FC.re"] <= row["%FC"] + 2.0
    assert row["%FE.re"] <= row["%FE"] + 2.0


def test_table2_aggregate_shape(benchmark):
    benchmark(lambda: None)  # participate in --benchmark-only runs
    if not _rows:
        pytest.skip("row benchmarks did not run")
    print()
    print(format_table(_rows, list(_rows[0].keys())))
    # The paper's headline: the retimed circuit is strictly harder to
    # test.  Under a saturating budget the effect shows up either as more
    # CPU (when the original finishes early) or as lower coverage (when
    # both hit the cap, HITEC's own behaviour on s510.jo.sr.re) -- require
    # one of the two on the majority of rows, plus the aggregate CPU sign.
    worse = sum(
        1
        for row in _rows
        if row["CPU Ratio"] > 1.05 or row["%FC.re"] < row["%FC"] - 0.5
    )
    assert worse >= max(1, int(0.6 * len(_rows))), _rows
    total_original = sum(row["CPU"] for row in _rows)
    total_retimed = sum(row["CPU.re"] for row in _rows)
    assert total_retimed >= total_original
