"""Equivalence-engine performance harness.

Times the two explicit-STG engines -- the scalar ``reference`` engine
(per-state ``SequentialSimulator`` sweeps, dict-based refinement,
frozenset BFS) and the bit-packed ``bitset`` engine (all ``2^r`` states
as lanes of one compiled step, array refinement, integer-bitset BFS) --
on extraction, state classification and functional sync-sequence search,
and writes the results to ``BENCH_equiv.json``.

Run from the repository root::

    PYTHONPATH=src python -m benchmarks.perf_equiv --quick
    PYTHONPATH=src python -m benchmarks.perf_equiv --full -o BENCH_equiv.json

Every row cross-checks the two engines -- identical transition tables,
identical classification block ids, identical sync sequence -- so a
benchmark run is also an end-to-end parity check.  Each row records the
parameters needed to regenerate its circuit (``circuit_from_params``),
which is how ``benchmarks.perf_guard --equiv-baseline`` re-measures the
bitset legs against a committed baseline.

This module is *not* collected by pytest (``testpaths = ["tests"]``).
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import statistics
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit import Circuit, CircuitBuilder, GateType
from repro.core.experiments import TABLE2_CIRCUITS, build_pair
from repro.equivalence import classify, extract_stg, find_functional_sync_sequence
from repro.simulation import clear_compile_cache

# Sync-search budgets, shared by both engines so cutoffs are comparable.
SYNC_MAX_LENGTH = 6
SYNC_MAX_VISITED = 2_000

QUICK_PARAMS: Tuple[Dict[str, object], ...] = (
    {"kind": "table2", "spec": "dk16.ji.sd", "variant": "original"},
    {"kind": "random", "seed": 7, "num_inputs": 3, "num_gates": 30, "num_dffs": 8},
    {"kind": "random", "seed": 11, "num_inputs": 4, "num_gates": 45, "num_dffs": 10},
)
FULL_EXTRA_PARAMS: Tuple[Dict[str, object], ...] = (
    {"kind": "random", "seed": 13, "num_inputs": 4, "num_gates": 60, "num_dffs": 12},
    {"kind": "table2", "spec": "pma.jo.sd", "variant": "original"},
)


def _workload_random_circuit(
    seed: int, num_inputs: int, num_gates: int, num_dffs: int
) -> Circuit:
    """A deterministic random sequential circuit for benchmark workloads.

    Gates draw operands from earlier signals plus the registered feedback
    names, so the circuit is sequential with feedback and free of
    combinational cycles; dangling signals are attached to extra outputs
    to keep the netlist strictly valid.
    """
    rng = random.Random(seed)
    builder = CircuitBuilder(f"bench_rand{seed}_{num_dffs}d{num_inputs}i")
    inputs = [builder.input(f"i{k}") for k in range(num_inputs)]
    dff_names = [f"q{k}" for k in range(num_dffs)]
    available = inputs + dff_names
    gate_types = [
        GateType.AND,
        GateType.OR,
        GateType.NAND,
        GateType.NOR,
        GateType.XOR,
        GateType.NOT,
    ]
    gates: List[str] = []
    used = set()
    for k in range(num_gates):
        gate_type = rng.choice(gate_types)
        arity = 1 if gate_type is GateType.NOT else rng.randint(2, 3)
        operands = [rng.choice(available) for _ in range(arity)]
        used.update(operands)
        name = f"g{k}"
        builder.gate(name, gate_type, operands)
        gates.append(name)
        available.append(name)
    if len(gates) < num_dffs:
        raise ValueError("need at least as many gates as flip-flops")
    sources = rng.sample(gates, num_dffs)
    for name, source in zip(dff_names, sources):
        builder.dff(name, source)
        used.add(source)
    observed = set()
    for k in range(2):
        choice = rng.choice(gates)
        builder.output(f"z{k}", choice)
        observed.add(choice)
    extra = 0
    for signal in gates + dff_names:
        if signal not in used and signal not in observed:
            builder.output(f"zx{extra}", signal)
            observed.add(signal)
            extra += 1
    return builder.build()


def circuit_from_params(params: Dict[str, object]) -> Circuit:
    """Regenerate a benchmark-row circuit from its recorded parameters."""
    kind = params["kind"]
    if kind == "table2":
        spec = next(s for s in TABLE2_CIRCUITS if s.name == params["spec"])
        pair = build_pair(spec)
        return pair.retimed if params["variant"] == "retimed" else pair.original
    if kind == "random":
        return _workload_random_circuit(
            int(params["seed"]),
            int(params["num_inputs"]),
            int(params["num_gates"]),
            int(params["num_dffs"]),
        )
    raise ValueError(f"unknown workload kind {kind!r}")


def _time(fn, repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def time_engine_leg(
    circuit: Circuit, engine: str, repeats: int
) -> Tuple[Dict[str, float], object, object, object]:
    """(timings, stg, classification, sequence) for one engine on one row."""
    classify_engine = "array" if engine == "bitset" else "reference"
    extract_s, stg = _time(
        lambda: extract_stg(circuit, engine=engine, use_store=False), repeats
    )
    classify_s, classification = _time(
        lambda: classify([stg], engine=classify_engine), repeats
    )
    sync_s, sequence = _time(
        lambda: find_functional_sync_sequence(
            stg,
            max_length=SYNC_MAX_LENGTH,
            max_visited=SYNC_MAX_VISITED,
            classification=classification,
            engine=engine,
        ),
        repeats,
    )
    timings = {
        "extract_s": extract_s,
        "classify_s": classify_s,
        "sync_s": sync_s,
        "total_s": extract_s + classify_s + sync_s,
    }
    return timings, stg, classification, sequence


def bench_row(params: Dict[str, object], repeats: int) -> Dict[str, object]:
    """One benchmark row: both engines on one circuit, parity asserted."""
    circuit = circuit_from_params(params)
    # The scalar engine costs O(states x vectors x circuit) per repeat;
    # best-of-1 keeps the harness bounded while the bitset side still gets
    # warm-cache best-of-``repeats`` (compile cache shared within the run).
    ref, ref_stg, ref_cls, ref_seq = time_engine_leg(circuit, "reference", 1)
    bit, bit_stg, bit_cls, bit_seq = time_engine_leg(circuit, "bitset", repeats)

    parity = (
        ref_stg.next_index == bit_stg.next_index
        and ref_stg.output_index == bit_stg.output_index
        and ref_cls.class_of == bit_cls.class_of
        and ref_seq == bit_seq
    )
    if not parity:
        raise AssertionError(f"engine parity violated on {circuit.name}")

    num_classes = len(set(bit_cls.class_array(0)))
    row: Dict[str, object] = {
        "circuit": circuit.name,
        "params": params,
        "num_gates": circuit.num_gates(),
        "num_dffs": circuit.num_registers(),
        "num_inputs": len(circuit.input_names),
        "num_states": len(bit_stg.states),
        "num_vectors": len(bit_stg.alphabet),
        "num_classes": num_classes,
        "sync_length": None if bit_seq is None else len(bit_seq),
        "reference": {k: round(v, 4) for k, v in ref.items()},
        "bitset": {k: round(v, 4) for k, v in bit.items()},
        "speedup_extract": round(ref["extract_s"] / max(bit["extract_s"], 1e-9), 2),
        "speedup_classify": round(
            ref["classify_s"] / max(bit["classify_s"], 1e-9), 2
        ),
        "speedup_sync": round(ref["sync_s"] / max(bit["sync_s"], 1e-9), 2),
        "speedup_total": round(ref["total_s"] / max(bit["total_s"], 1e-9), 2),
        "parity": parity,
    }
    return row


def run(args: argparse.Namespace) -> Dict[str, object]:
    from benchmarks.provenance import open_bench_journal, provenance_meta

    clear_compile_cache()
    journal = open_bench_journal("bench-equiv")
    if journal is not None:
        journal.event("run_start", mode="full" if args.full else "quick")
    workload = QUICK_PARAMS + (FULL_EXTRA_PARAMS if args.full else ())
    rows: List[Dict[str, object]] = []
    for params in workload:
        print(f"  {params} ...", flush=True)
        row = bench_row(params, args.repeats)
        rows.append(row)
        print(
            f"    {row['circuit']}: reference {row['reference']['total_s']}s, "
            f"bitset {row['bitset']['total_s']}s "
            f"({row['speedup_total']}x total, "
            f"{row['speedup_extract']}x extract)",
            flush=True,
        )
    totals = [row["speedup_total"] for row in rows]
    report = {
        "meta": {
            "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            "mode": "full" if args.full else "quick",
            "workload": {
                "repeats": args.repeats,
                "sync_max_length": SYNC_MAX_LENGTH,
                "sync_max_visited": SYNC_MAX_VISITED,
            },
            **provenance_meta(journal),
        },
        "circuits": rows,
        "summary": {
            "min_speedup_total": min(totals),
            "geomean_speedup_total": round(statistics.geometric_mean(totals), 2),
            "max_speedup_total": max(totals),
            "geomean_speedup_extract": round(
                statistics.geometric_mean(r["speedup_extract"] for r in rows), 2
            ),
            "all_engines_agree": all(row["parity"] for row in rows),
        },
    }
    if journal is not None:
        journal.close(ok=True)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="extended workload incl. 12-register and input-heavy circuits",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="three-circuit quick set (the default; kept for explicitness)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_equiv.json",
        help="where to write the JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="bitset timing repeats (best-of)"
    )
    args = parser.parse_args(argv)
    if args.full and args.quick:
        parser.error("--quick and --full are mutually exclusive")

    print(f"equivalence-engine benchmark ({'full' if args.full else 'quick'} mode)")
    report = run(args)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    summary = report["summary"]
    print(
        f"speedup bitset vs reference (total): "
        f"min {summary['min_speedup_total']}x / "
        f"geomean {summary['geomean_speedup_total']}x / "
        f"max {summary['max_speedup_total']}x"
    )
    print(f"all engines agree: {summary['all_engines_agree']}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
