"""Equivalence-engine performance harness.

Times the explicit-STG engine tiers -- the scalar ``reference`` engine
(per-state ``SequentialSimulator`` sweeps, dict-based refinement,
frozenset BFS), the bit-packed ``bitset`` engine (all ``2^r`` states as
lanes of one compiled step, array refinement, integer-bitset BFS), and
the reachability-bounded ``reach`` engine (BFS frontier expansion from
the reset state, one compiled sweep per frontier level) -- on extraction,
state classification and functional sync-sequence search, and writes the
results to ``BENCH_equiv.json``.

Run from the repository root::

    PYTHONPATH=src python -m benchmarks.perf_equiv --quick
    PYTHONPATH=src python -m benchmarks.perf_equiv --full -o BENCH_equiv.json

Every row cross-checks the engines -- identical transition tables and
classification block ids on the reference/bitset pair, restricted-table
agreement between the reach engine and the bitset engine's
reset-reachable set, bigint/numpy word-backend identity on the reach
legs -- so a benchmark run is also an end-to-end parity check.  Rows past
the bitset engine's 18-register wall (the ``ring`` workloads) carry
``bitset_rejected: true`` and only the reach legs; they are excluded from
the cross-engine speedup statistics.  Each row records the parameters
needed to regenerate its circuit (``circuit_from_params``), which is how
``benchmarks.perf_guard --equiv-baseline`` re-measures the bitset and
reach legs against a committed baseline.

This module is *not* collected by pytest (``testpaths = ["tests"]``).
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import statistics
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit import Circuit, CircuitBuilder, GateType
from repro.core.experiments import TABLE2_CIRCUITS, build_pair
from repro.equivalence import (
    ENGINE_LIMITS,
    StateSpaceTooLarge,
    classify,
    extract_stg,
    find_functional_sync_sequence,
)
from repro.simulation import clear_compile_cache
from repro.simulation.backends import numpy_available

# Sync-search budgets, shared by both engines so cutoffs are comparable.
SYNC_MAX_LENGTH = 6
SYNC_MAX_VISITED = 2_000

QUICK_PARAMS: Tuple[Dict[str, object], ...] = (
    {"kind": "table2", "spec": "dk16.ji.sd", "variant": "original"},
    {"kind": "random", "seed": 7, "num_inputs": 3, "num_gates": 30, "num_dffs": 8},
    {"kind": "random", "seed": 11, "num_inputs": 4, "num_gates": 45, "num_dffs": 10},
    {"kind": "ring", "width": 12},
    {"kind": "ring", "width": 28},  # past the bitset wall: reach legs only
)
FULL_EXTRA_PARAMS: Tuple[Dict[str, object], ...] = (
    {"kind": "random", "seed": 13, "num_inputs": 4, "num_gates": 60, "num_dffs": 12},
    {"kind": "table2", "spec": "pma.jo.sd", "variant": "original"},
    {"kind": "ring", "width": 16},
)


def _workload_random_circuit(
    seed: int, num_inputs: int, num_gates: int, num_dffs: int
) -> Circuit:
    """A deterministic random sequential circuit for benchmark workloads.

    Gates draw operands from earlier signals plus the registered feedback
    names, so the circuit is sequential with feedback and free of
    combinational cycles; dangling signals are attached to extra outputs
    to keep the netlist strictly valid.
    """
    rng = random.Random(seed)
    builder = CircuitBuilder(f"bench_rand{seed}_{num_dffs}d{num_inputs}i")
    inputs = [builder.input(f"i{k}") for k in range(num_inputs)]
    dff_names = [f"q{k}" for k in range(num_dffs)]
    available = inputs + dff_names
    gate_types = [
        GateType.AND,
        GateType.OR,
        GateType.NAND,
        GateType.NOR,
        GateType.XOR,
        GateType.NOT,
    ]
    gates: List[str] = []
    used = set()
    for k in range(num_gates):
        gate_type = rng.choice(gate_types)
        arity = 1 if gate_type is GateType.NOT else rng.randint(2, 3)
        operands = [rng.choice(available) for _ in range(arity)]
        used.update(operands)
        name = f"g{k}"
        builder.gate(name, gate_type, operands)
        gates.append(name)
        available.append(name)
    if len(gates) < num_dffs:
        raise ValueError("need at least as many gates as flip-flops")
    sources = rng.sample(gates, num_dffs)
    for name, source in zip(dff_names, sources):
        builder.dff(name, source)
        used.add(source)
    observed = set()
    for k in range(2):
        choice = rng.choice(gates)
        builder.output(f"z{k}", choice)
        observed.add(choice)
    extra = 0
    for signal in gates + dff_names:
        if signal not in used and signal not in observed:
            builder.output(f"zx{extra}", signal)
            observed.add(signal)
            extra += 1
    return builder.build()


def _workload_token_ring(width: int) -> Circuit:
    """A one-hot token ring with synchronous reset: ``width`` flip-flops
    but only ``width + 1`` reset-reachable states (empty + one-hots).

    The sparse-reachability workload for the reach engine: at widths past
    18 registers the bitset engine rejects the circuit outright, while the
    reach engine's BFS visits a vanishing fraction of ``2^width``.
    """
    builder = CircuitBuilder(f"bench_ring{width}")
    builder.input("rst")
    builder.input("start")
    builder.not_("go", "rst")
    qs = [f"q{i}" for i in range(width)]
    level = list(qs)
    k = 0
    while len(level) > 1:
        paired = []
        for i in range(0, len(level) - 1, 2):
            paired.append(builder.or_(f"ort{k}", level[i], level[i + 1]))
            k += 1
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    builder.not_("none_token", level[0])
    builder.and_("inj", "start", "none_token")
    builder.or_("n0", "inj", qs[-1])
    builder.and_("d0", "go", "n0")
    builder.dff(qs[0], "d0")
    for i in range(1, width):
        builder.and_(f"d{i}", "go", qs[i - 1])
        builder.dff(qs[i], f"d{i}")
    builder.buf("zbuf", qs[-1])
    builder.output("z", "zbuf")
    return builder.build()


def circuit_from_params(params: Dict[str, object]) -> Circuit:
    """Regenerate a benchmark-row circuit from its recorded parameters."""
    kind = params["kind"]
    if kind == "table2":
        spec = next(s for s in TABLE2_CIRCUITS if s.name == params["spec"])
        pair = build_pair(spec)
        return pair.retimed if params["variant"] == "retimed" else pair.original
    if kind == "random":
        return _workload_random_circuit(
            int(params["seed"]),
            int(params["num_inputs"]),
            int(params["num_gates"]),
            int(params["num_dffs"]),
        )
    if kind == "ring":
        return _workload_token_ring(int(params["width"]))
    raise ValueError(f"unknown workload kind {kind!r}")


def _time(fn, repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def time_engine_leg(
    circuit: Circuit, engine: str, repeats: int, backend: str = "auto"
) -> Tuple[Dict[str, float], object, object, object]:
    """(timings, stg, classification, sequence) for one engine on one row."""
    classify_engine = "reference" if engine == "reference" else "array"
    extract_s, stg = _time(
        lambda: extract_stg(
            circuit, engine=engine, use_store=False, backend=backend
        ),
        repeats,
    )
    classify_s, classification = _time(
        lambda: classify([stg], engine=classify_engine), repeats
    )
    sync_s, sequence = _time(
        lambda: find_functional_sync_sequence(
            stg,
            max_length=SYNC_MAX_LENGTH,
            max_visited=SYNC_MAX_VISITED,
            classification=classification,
            engine=engine,
        ),
        repeats,
    )
    timings = {
        "extract_s": extract_s,
        "classify_s": classify_s,
        "sync_s": sync_s,
        "total_s": extract_s + classify_s + sync_s,
    }
    return timings, stg, classification, sequence


def _assert_restricted_parity(bit_stg, rch_stg, circuit_name: str) -> None:
    """The reach tables must be the bitset tables restricted to the
    reset-reachable set, entry for entry."""
    zeros = (0,) * len(bit_stg.states[0])
    if set(rch_stg.states) != set(bit_stg.reachable_from(zeros)):
        raise AssertionError(f"reach visited set differs on {circuit_name}")
    bit_index = {state: k for k, state in enumerate(bit_stg.states)}
    rch_index = {state: k for k, state in enumerate(rch_stg.states)}
    for v in range(len(bit_stg.alphabet)):
        bit_next, rch_next = bit_stg.next_index[v], rch_stg.next_index[v]
        bit_out, rch_out = bit_stg.output_index[v], rch_stg.output_index[v]
        for state in rch_stg.states:
            b, r = bit_index[state], rch_index[state]
            successor = bit_stg.states[bit_next[b]]
            if rch_next[r] != rch_index[successor] or rch_out[r] != bit_out[b]:
                raise AssertionError(
                    f"reach table restriction differs on {circuit_name}"
                )


def bench_row(params: Dict[str, object], repeats: int) -> Dict[str, object]:
    """One benchmark row: every in-limit engine on one circuit, parity
    asserted.  Rows past the bitset wall get ``bitset_rejected: true``
    and carry only the reach legs."""
    circuit = circuit_from_params(params)
    row: Dict[str, object] = {
        "circuit": circuit.name,
        "params": params,
        "num_gates": circuit.num_gates(),
        "num_dffs": circuit.num_registers(),
        "num_inputs": len(circuit.input_names),
    }

    bit = bit_stg = None
    if circuit.num_registers() <= ENGINE_LIMITS["bitset"].registers:
        # The scalar engine costs O(states x vectors x circuit) per repeat;
        # best-of-1 keeps the harness bounded while the compiled engines
        # still get warm-cache best-of-``repeats``.
        ref, ref_stg, ref_cls, ref_seq = time_engine_leg(circuit, "reference", 1)
        bit, bit_stg, bit_cls, bit_seq = time_engine_leg(
            circuit, "bitset", repeats
        )
        parity = (
            ref_stg.next_index == bit_stg.next_index
            and ref_stg.output_index == bit_stg.output_index
            and ref_cls.class_of == bit_cls.class_of
            and ref_seq == bit_seq
        )
        if not parity:
            raise AssertionError(f"engine parity violated on {circuit.name}")
        row.update(
            {
                "num_states": len(bit_stg.states),
                "num_vectors": len(bit_stg.alphabet),
                "num_classes": len(set(bit_cls.class_array(0))),
                "sync_length": None if bit_seq is None else len(bit_seq),
                "reference": {k: round(v, 4) for k, v in ref.items()},
                "bitset": {k: round(v, 4) for k, v in bit.items()},
                "speedup_extract": round(
                    ref["extract_s"] / max(bit["extract_s"], 1e-9), 2
                ),
                "speedup_classify": round(
                    ref["classify_s"] / max(bit["classify_s"], 1e-9), 2
                ),
                "speedup_sync": round(ref["sync_s"] / max(bit["sync_s"], 1e-9), 2),
                "speedup_total": round(
                    ref["total_s"] / max(bit["total_s"], 1e-9), 2
                ),
                "parity": parity,
            }
        )
    else:
        try:
            extract_stg(circuit, engine="bitset", use_store=False)
        except StateSpaceTooLarge:
            row["bitset_rejected"] = True
        else:
            raise AssertionError(
                f"{circuit.name} was expected to be past the bitset wall"
            )

    rch, rch_stg, rch_cls, rch_seq = time_engine_leg(
        circuit, "reach", repeats, backend="bigint"
    )
    row.update(
        {
            "reach": {k: round(v, 4) for k, v in rch.items()},
            "visited_states": rch_stg.visited_states,
            "peak_frontier": rch_stg.peak_frontier,
            "reach_levels": rch_stg.levels,
            "total_states": rch_stg.total_states,
            "reach_classes": len(set(rch_cls.class_array(0))),
            "reach_sync_length": None if rch_seq is None else len(rch_seq),
        }
    )
    if numpy_available():
        npy, npy_stg, _, _ = time_engine_leg(
            circuit, "reach", repeats, backend="numpy"
        )
        if (
            npy_stg.states != rch_stg.states
            or npy_stg.next_index != rch_stg.next_index
            or npy_stg.output_index != rch_stg.output_index
        ):
            raise AssertionError(
                f"reach backend parity violated on {circuit.name}"
            )
        row["reach_numpy"] = {k: round(v, 4) for k, v in npy.items()}

    reach_parity = True
    if bit_stg is not None:
        if rch_stg.num_registers == circuit.num_registers():
            _assert_restricted_parity(bit_stg, rch_stg, circuit.name)
        else:
            # A non-identity cone relocates the state bits; count checks
            # still apply but tuple-level restriction does not.
            reach_parity = rch_stg.visited_states <= len(bit_stg.states)
        row["speedup_reach_extract"] = round(
            bit["extract_s"] / max(rch["extract_s"], 1e-9), 2
        )
        row["speedup_reach_total"] = round(
            bit["total_s"] / max(rch["total_s"], 1e-9), 2
        )
    row["reach_parity"] = reach_parity
    return row


def run(args: argparse.Namespace) -> Dict[str, object]:
    from benchmarks.provenance import open_bench_journal, provenance_meta

    clear_compile_cache()
    journal = open_bench_journal("bench-equiv")
    if journal is not None:
        journal.event("run_start", mode="full" if args.full else "quick")
    workload = QUICK_PARAMS + (FULL_EXTRA_PARAMS if args.full else ())
    rows: List[Dict[str, object]] = []
    for params in workload:
        print(f"  {params} ...", flush=True)
        row = bench_row(params, args.repeats)
        rows.append(row)
        if row.get("bitset_rejected"):
            print(
                f"    {row['circuit']}: bitset rejected, reach "
                f"{row['reach']['total_s']}s "
                f"({row['visited_states']} of {row['total_states']} states)",
                flush=True,
            )
        else:
            print(
                f"    {row['circuit']}: reference {row['reference']['total_s']}s, "
                f"bitset {row['bitset']['total_s']}s "
                f"({row['speedup_total']}x total, "
                f"{row['speedup_extract']}x extract), "
                f"reach {row['reach']['total_s']}s "
                f"({row['visited_states']} of {row['total_states']} states)",
                flush=True,
            )
    paired = [r for r in rows if "speedup_total" in r]
    totals = [row["speedup_total"] for row in paired]
    reach_totals = [r["speedup_reach_total"] for r in rows if "speedup_reach_total" in r]
    report = {
        "meta": {
            "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            "mode": "full" if args.full else "quick",
            "workload": {
                "repeats": args.repeats,
                "sync_max_length": SYNC_MAX_LENGTH,
                "sync_max_visited": SYNC_MAX_VISITED,
            },
            **provenance_meta(journal),
        },
        "circuits": rows,
        "summary": {
            "min_speedup_total": min(totals),
            "geomean_speedup_total": round(statistics.geometric_mean(totals), 2),
            "max_speedup_total": max(totals),
            "geomean_speedup_extract": round(
                statistics.geometric_mean(r["speedup_extract"] for r in paired), 2
            ),
            # reach vs bitset where both ran; >1 means the frontier BFS beat
            # full 2^r enumeration (expected on sparse-reachability rows).
            "geomean_speedup_reach_total": round(
                statistics.geometric_mean(reach_totals), 2
            )
            if reach_totals
            else None,
            "bitset_rejected_rows": sum(
                1 for r in rows if r.get("bitset_rejected")
            ),
            "all_engines_agree": all(r["parity"] for r in paired)
            and all(row["reach_parity"] for row in rows),
        },
    }
    if journal is not None:
        journal.close(ok=True)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="extended workload incl. 12-register, input-heavy and "
        "16-register ring circuits",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="five-circuit quick set (the default; kept for explicitness)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_equiv.json",
        help="where to write the JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="bitset timing repeats (best-of)"
    )
    args = parser.parse_args(argv)
    if args.full and args.quick:
        parser.error("--quick and --full are mutually exclusive")

    print(f"equivalence-engine benchmark ({'full' if args.full else 'quick'} mode)")
    report = run(args)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    summary = report["summary"]
    print(
        f"speedup bitset vs reference (total): "
        f"min {summary['min_speedup_total']}x / "
        f"geomean {summary['geomean_speedup_total']}x / "
        f"max {summary['max_speedup_total']}x"
    )
    print(
        f"speedup reach vs bitset (total): "
        f"geomean {summary['geomean_speedup_reach_total']}x "
        f"({summary['bitset_rejected_rows']} row(s) past the bitset wall)"
    )
    print(f"all engines agree: {summary['all_engines_agree']}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
