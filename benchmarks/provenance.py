"""Provenance metadata shared by the benchmark harnesses.

A benchmark number without its provenance is unfalsifiable: the commit it
measured, whether the artifact store fed it cached work, and where the run
journal landed all change how a reader should weigh it.  Both harnesses
fold :func:`provenance_meta` into their ``meta`` block so every
``BENCH_*.json`` is traceable back to code and cache state.
"""

from __future__ import annotations

import os
import subprocess
from typing import Dict, Optional


def git_sha() -> Optional[str]:
    """The current commit hash, or ``None`` outside a usable git checkout."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = result.stdout.strip()
    return sha if result.returncode == 0 and sha else None


def backend_meta(backend: str = "auto", width: Optional[int] = None) -> Dict[str, object]:
    """What word implementation a measurement actually ran on.

    ``backend`` is the knob as requested; the resolved backend, the numpy
    version behind it (``None`` on bigint), and -- when ``width`` is given
    -- the effective uint64 word count per plane at that lane width are
    recorded so numbers from different backends never get compared as if
    they were the same engine.
    """
    from repro.simulation.backends import numpy_version, resolve_backend

    resolved = resolve_backend(backend)
    meta: Dict[str, object] = {
        "backend": resolved,
        "backend_requested": backend,
        "numpy_version": numpy_version() if resolved == "numpy" else None,
    }
    if width is not None:
        meta["lane_width"] = width
        meta["words_per_plane"] = (width + 63) >> 6
    return meta


def provenance_meta(journal=None, backend: Optional[str] = None) -> Dict[str, object]:
    """Commit, store-counter and journal fields for a ``meta`` block.

    Store counters are this process's session counters (hits/misses/writes
    against the default artifact store plus the persistent stepper-source
    level), captured at call time -- call after the measured work.  Pass
    ``backend`` to also fold :func:`backend_meta` in.
    """
    from repro.simulation.cache import compile_cache_stats
    from repro.store.core import default_store

    store = default_store()
    cache_stats = compile_cache_stats()
    meta: Dict[str, object] = {
        "git_sha": git_sha(),
        "store": None if store is None else store.stats.as_dict(),
        "stepper_cache": {
            "persistent_hits": cache_stats["persistent_hits"],
            "persistent_misses": cache_stats["persistent_misses"],
            "persistent_writes": cache_stats["persistent_writes"],
        },
        "journal": None if journal is None else journal.path,
    }
    if backend is not None:
        meta.update(backend_meta(backend))
    return meta


def open_bench_journal(label: str):
    """A run journal in the default store's journal directory, or ``None``
    when the store is disabled (benchmarks still run, just unjournaled)."""
    from repro.store.core import default_store
    from repro.store.journal import RunJournal

    store = default_store()
    if store is None:
        return None
    return RunJournal.create(store.journal_dir, label)


__all__ = ["backend_meta", "git_sha", "open_bench_journal", "provenance_meta"]
