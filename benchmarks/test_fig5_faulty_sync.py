"""Fig. 5: faulty-circuit synchronization under a forward gate move.

Regenerates Example 2 (the <001,000> sequence synchronizes faulty N1 to
{001} but leaves faulty N2 at {1x}), Lemma 4 / Theorem 3 (any one-vector
prefix repairs it) and Example 4 / Observation 4 (the structural test T
detects G1-G2 s-a-1 in N1, misses the corresponding G1-Q12 fault in N2,
and the prefixed P+T recovers it).
"""

import itertools

from repro.faultsim import fault_simulate
from repro.logic.three_valued import X
from repro.papercircuits import (
    EXAMPLE2_SEQUENCE,
    EXAMPLE4_TEST,
    fig5_pair,
    n1_g1_g2_fault,
    n2_g1_q12_fault,
    n2_q12_g2_fault,
)
from repro.simulation import SequentialSimulator


def test_fig5_example2(benchmark):
    n1, n2, _ = fig5_pair()

    def simulate():
        sim1 = SequentialSimulator(n1, fault=n1_g1_g2_fault(n1))
        sim2 = SequentialSimulator(n2, fault=n2_g1_q12_fault(n2))
        return (
            sim1.run(EXAMPLE2_SEQUENCE).final_state,
            sim2.run(EXAMPLE2_SEQUENCE).final_state,
        )

    final1, final2 = benchmark(simulate)
    assert final1 == (0, 0, 1)   # the paper's {001}
    assert final2 == (1, X)      # the paper's {1x}


def test_fig5_theorem3_any_prefix(benchmark):
    _, n2, retiming = fig5_pair()
    assert retiming.max_forward_moves() == 1
    sim = SequentialSimulator(n2, fault=n2_g1_q12_fault(n2))

    def check_all():
        return [
            sim.is_synchronizing([prefix] + EXAMPLE2_SEQUENCE)
            for prefix in itertools.product((0, 1), repeat=3)
        ]

    results = benchmark(check_all)
    assert all(results)


def test_fig5_example4(benchmark):
    n1, n2, _ = fig5_pair()

    def simulate():
        return (
            fault_simulate(n1, [EXAMPLE4_TEST], [n1_g1_g2_fault(n1)]).num_detected,
            fault_simulate(n2, [EXAMPLE4_TEST], [n2_g1_q12_fault(n2)]).num_detected,
            fault_simulate(n2, [EXAMPLE4_TEST], [n2_q12_g2_fault(n2)]).num_detected,
            fault_simulate(
                n2, [[(0, 0, 0)] + EXAMPLE4_TEST], [n2_g1_q12_fault(n2)]
            ).num_detected,
        )

    in_n1, in_n2, other_segment, prefixed = benchmark(simulate)
    assert in_n1 == 1          # T detects G1-G2 s-a-1 in N1
    assert in_n2 == 0          # ... but not the corresponding N2 fault
    assert other_segment == 1  # while Q12-G2 s-a-1 is detected
    assert prefixed == 1       # Theorem 4 recovers the miss
