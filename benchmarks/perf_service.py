"""ATPG service benchmark: dedup tiers, keep-alive throughput, saturation.

Boots the :mod:`repro.service` server in-process against a *fresh* store
root, then drives it over real HTTP:

* **fresh / cached / coalesced** -- the dedup-tier latencies per Table II
  circuit, with every cached response compared byte-for-byte against its
  fresh counterpart (the service adds transport, not variance);
* **keep-alive vs close** -- a series of cached submissions over one
  persistent connection versus one connection per request; the per-row
  ``keepalive_speedup`` is the ratio of median per-request latency, the
  headline number of the persistent-connection work;
* **saturation** -- N threads, each with its own keep-alive client,
  hammering cached submissions concurrently: requests/sec, nearest-rank
  p50/p90/p99 latency, and a drop/corruption audit (every response must
  be a well-formed ``done`` job document);
* **backpressure** -- a second server with the queue high-water mark
  forced to zero: fresh submissions must bounce with 429 + ``Retry-After``
  while cached submissions keep flowing;
* **restart** -- a third server over the *same* store root: the persistent
  job index must list every pre-restart job and resubmissions must land
  in the store-cached tier.

The server's own ``/v1/stats`` metrics -- dedup hit counts, HTTP
connection counters, latency percentiles per tier -- are folded into the
report as ``service_meta``.  Results land in ``BENCH_service.json``.

Run from the repository root::

    PYTHONPATH=src python -m benchmarks.perf_service --quick
    PYTHONPATH=src python -m benchmarks.perf_service --full -o BENCH_service.json

Not collected by pytest (``testpaths = ["tests"]``); a standalone CLI so
CI can smoke the service end-to-end on both numpy and no-numpy legs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import socket
import statistics
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.core.experiments import TABLE2_CIRCUITS
from repro.service import BackgroundServer, ServiceClient, ServiceError
from repro.store.core import ArtifactStore

QUICK_NAMES = ("dk16.ji.sd", "s510.jo.sr", "s820.jo.sd")


def _specs(full: bool):
    if full:
        return TABLE2_CIRCUITS
    return tuple(s for s in TABLE2_CIRCUITS if s.name in QUICK_NAMES)


def _request(spec, total_seconds: float) -> Dict[str, object]:
    fsm, style, script = spec.name.split(".")
    return {
        "circuit": {"format": "table2", "fsm": fsm, "style": style, "script": script},
        "budget": {"total_seconds": total_seconds},
    }


def _percentile(sorted_values: List[float], q: float) -> float:
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _timed_submit_and_wait(client: ServiceClient, request, timeout: float):
    """(job doc, wall seconds from POST to terminal status, result bytes)."""
    start = time.perf_counter()
    job = client.submit(request)
    final = client.wait(job["id"], timeout=timeout)
    elapsed = time.perf_counter() - start
    result = client.artifact(job["id"], "result")
    return job, final, elapsed, result


def _encode_post(request: Dict[str, object], close: bool) -> bytes:
    body = json.dumps(request).encode("utf-8")
    connection = "Connection: close\r\n" if close else ""
    return (
        f"POST /v1/jobs HTTP/1.1\r\nHost: bench\r\n{connection}"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode("ascii") + body


def _read_http_response(sock: socket.socket, leftover: bytes = b""):
    """(status, body, trailing) for one response off a raw socket."""
    data = leftover
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("EOF mid-headers")
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    lines = head.split(b"\r\n")
    status = int(lines[0].split()[1])
    length = 0
    for line in lines[1:]:
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("EOF mid-body")
        rest += chunk
    return status, rest[:length], rest[length:]


def _raw_cached_series(
    port: int, request: Dict[str, object], series: int, close_per_request: bool
) -> List[float]:
    """Per-request wall seconds for ``series`` cached submissions through
    a minimal socket-level load generator (the benchmark's ``wrk``): the
    same HTTP bytes either down one persistent connection or through a
    fresh connect/close cycle per request.  ``http.client`` is not used
    here on purpose -- its per-request Python overhead exceeds the whole
    server round trip and would tax both modes equally, masking the
    connection-discipline effect under test.  Every response is audited:
    status 200, body present, cached/done disposition."""
    raw = _encode_post(request, close=close_per_request)
    samples: List[float] = []
    reference: Optional[bytes] = None

    def audit(status: int, body: bytes) -> None:
        nonlocal reference
        if status != 200 or b'"disposition": "cached"' not in body:
            raise RuntimeError(
                f"series expected a cached 200, got {status}: {body[:120]!r}"
            )
        if reference is None:
            reference = body
        elif body != reference:
            raise RuntimeError("cached submit responses diverged mid-series")

    if close_per_request:
        for _ in range(series):
            start = time.perf_counter()
            sock = socket.create_connection(("127.0.0.1", port), timeout=30)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                sock.sendall(raw)
                status, body, _ = _read_http_response(sock)
            finally:
                sock.close()
            samples.append(time.perf_counter() - start)
            audit(status, body)
    else:
        sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        leftover = b""
        try:
            for _ in range(series):
                start = time.perf_counter()
                sock.sendall(raw)
                status, body, leftover = _read_http_response(sock, leftover)
                samples.append(time.perf_counter() - start)
                audit(status, body)
        finally:
            sock.close()
    return samples


def bench_circuit(
    client: ServiceClient,
    port: int,
    spec,
    total_seconds: float,
    duplicates: int,
    series: int,
    timeout: float,
) -> Dict[str, object]:
    """One row: fresh run, cached + coalesced tiers, keep-alive series."""
    request = _request(spec, total_seconds)

    fresh_job, fresh_final, fresh_s, fresh_bytes = _timed_submit_and_wait(
        client, request, timeout
    )
    fresh_ok = fresh_job["disposition"] == "fresh" and fresh_final["status"] == "done"

    cached_job, cached_final, cached_s, cached_bytes = _timed_submit_and_wait(
        client, request, timeout
    )
    cached_ok = (
        cached_job["disposition"] == "cached"
        and cached_final["status"] == "done"
        and cached_bytes == fresh_bytes
    )

    # Keep-alive vs Connection: close on the cached series -- same
    # request, same dedup tier, only the connection discipline differs.
    # Both modes warm up first, then the measurement runs as interleaved
    # blocks (ka, close, ka, close, ...) and each mode reports the
    # minimum of its per-block medians: a block polluted by unrelated
    # machine activity (GC, another process stealing the one CPU) is
    # discarded rather than averaged in, the same best-estimate rule
    # pyperf uses.  Interleaving keeps slow drift on both sides of the
    # ratio.
    warmup = max(2, series // 10)
    _raw_cached_series(port, request, warmup, False)
    _raw_cached_series(port, request, warmup, True)
    blocks = 4
    block = max(1, series // blocks)
    keepalive_medians: List[float] = []
    close_medians: List[float] = []
    for _ in range(blocks):
        samples = _raw_cached_series(port, request, block, False)
        keepalive_medians.append(statistics.median(samples))
        samples = _raw_cached_series(port, request, block, True)
        close_medians.append(statistics.median(samples))
    keepalive_median = min(keepalive_medians)
    close_median = min(close_medians)

    # The reusing HTTP client, for reference: same series through
    # ServiceClient's persistent HTTPConnection.
    reuse_client = ServiceClient(port=port, timeout=timeout, keep_alive=True)
    client_samples: List[float] = []
    for _ in range(max(5, series // 4)):
        start = time.perf_counter()
        doc = reuse_client.submit(request)
        client_samples.append(time.perf_counter() - start)
        assert doc["disposition"] == "cached"
    reuse_client.close()

    # Coalescing needs in-flight work: a longer budget is a different
    # fingerprint, so these duplicates race a genuinely fresh job.
    coalesce_request = _request(spec, total_seconds + 0.125)
    racer = client.submit(coalesce_request)
    duplicate_ids = [client.submit(coalesce_request)["id"] for _ in range(duplicates)]
    racer_final = client.wait(racer["id"], timeout=timeout)
    coalesced_ok = (
        racer["disposition"] == "fresh"
        and all(job_id == racer["id"] for job_id in duplicate_ids)
        and racer_final["coalesced_hits"] >= duplicates
    )

    return {
        "circuit": spec.name,
        "fresh_s": round(fresh_s, 4),
        "cached_s": round(cached_s, 4),
        "cache_speedup": round(fresh_s / max(cached_s, 1e-9), 1),
        "keepalive_median_ms": round(keepalive_median * 1000, 3),
        "close_median_ms": round(close_median * 1000, 3),
        "keepalive_speedup": round(close_median / max(keepalive_median, 1e-9), 2),
        "client_reuse_median_ms": round(
            statistics.median(client_samples) * 1000, 3
        ),
        "series": blocks * block,
        "result_bytes": len(fresh_bytes),
        "fault_coverage": json.loads(fresh_bytes)["atpg"]["fault_coverage"],
        "fresh_ok": fresh_ok,
        "cached_ok": cached_ok,
        "cached_bytes_identical": cached_bytes == fresh_bytes,
        "coalesced_ok": coalesced_ok,
    }


def bench_saturation(
    port: int,
    request: Dict[str, object],
    clients: int,
    requests_each: int,
    timeout: float,
) -> Dict[str, object]:
    """N threads x one keep-alive client each, all submitting one cached
    request as fast as they can.  Audits every response."""
    latencies: List[List[float]] = [[] for _ in range(clients)]
    bad: List[str] = []
    barrier = threading.Barrier(clients + 1)

    def worker(slot: int) -> None:
        client = ServiceClient(port=port, timeout=timeout, keep_alive=True)
        barrier.wait()
        for _ in range(requests_each):
            start = time.perf_counter()
            try:
                job = client.submit(request)
            except Exception as error:  # audited, not fatal
                bad.append(f"{type(error).__name__}: {error}")
                continue
            latencies[slot].append(time.perf_counter() - start)
            if job.get("disposition") != "cached" or job.get("status") != "done":
                bad.append(
                    f"bad response: {job.get('disposition')}/{job.get('status')}"
                )
        client.close()

    threads = [
        threading.Thread(target=worker, args=(slot,), daemon=True)
        for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    flat = sorted(sample for bucket in latencies for sample in bucket)
    total = len(flat)
    return {
        "clients": clients,
        "requests_each": requests_each,
        "completed": total,
        "dropped_or_corrupted": len(bad),
        "errors": bad[:10],
        "wall_s": round(wall, 4),
        "requests_per_second": round(total / max(wall, 1e-9), 1),
        "p50_ms": round(_percentile(flat, 0.50) * 1000, 3) if flat else None,
        "p90_ms": round(_percentile(flat, 0.90) * 1000, 3) if flat else None,
        "p99_ms": round(_percentile(flat, 0.99) * 1000, 3) if flat else None,
        "max_ms": round(flat[-1] * 1000, 3) if flat else None,
    }


def bench_backpressure(
    store_root: str, request: Dict[str, object], timeout: float
) -> Dict[str, object]:
    """A fully-shedding server (high water 0): fresh work must 429 with a
    Retry-After, cached work must keep flowing."""
    store = ArtifactStore(root=store_root)
    with BackgroundServer(store=store, pool=1, queue_high_water=0) as server:
        client = ServiceClient(port=server.port, timeout=timeout)
        rejected = 0
        retry_afters: List[float] = []
        fresh_request = {**request, "tenant": "bench-backpressure"}
        for _ in range(5):
            try:
                client.submit(fresh_request)
            except ServiceError as error:
                if error.status == 429:
                    rejected += 1
                    if error.retry_after is not None:
                        retry_afters.append(error.retry_after)
        cached = client.submit(request)
        cached_served = (
            cached["disposition"] == "cached" and cached["status"] == "done"
        )
        stats = client.stats()
        return {
            "queue_high_water": 0,
            "fresh_attempts": 5,
            "rejected_429": rejected,
            "retry_after_s": retry_afters[:1],
            "cached_served_while_shedding": cached_served,
            "server_rejected_counter": stats["metrics"]["rejected"],
        }


def bench_restart(
    store_root: str,
    requests: List[Dict[str, object]],
    expected_jobs: int,
    timeout: float,
) -> Dict[str, object]:
    """A new server over the same root: the persistent index must list the
    pre-restart jobs and resubmits must hit the store-cached tier."""
    store = ArtifactStore(root=store_root)
    with BackgroundServer(store=store, pool=1) as server:
        client = ServiceClient(port=server.port, timeout=timeout)
        listed = client.jobs()["jobs"]
        restored = [doc for doc in listed if doc.get("restored")]
        resubmit_dispositions = [
            client.submit(request)["disposition"] for request in requests
        ]
        return {
            "jobs_listed": len(listed),
            "jobs_restored": len(restored),
            "expected_at_least": expected_jobs,
            "restored_all_listed": len(restored) >= expected_jobs,
            "resubmit_dispositions": resubmit_dispositions,
            "resubmits_all_cached": all(
                disposition == "cached" for disposition in resubmit_dispositions
            ),
        }


def run(args: argparse.Namespace) -> Dict[str, object]:
    from benchmarks.provenance import git_sha

    root = args.store_root or tempfile.mkdtemp(prefix="repro-bench-service-")
    owns_root = args.store_root is None
    store = ArtifactStore(root=root)
    rows: List[Dict[str, object]] = []
    specs = _specs(args.full)
    try:
        with BackgroundServer(store=store, pool=args.pool) as server:
            client = ServiceClient(port=server.port, timeout=args.timeout)
            assert client.health() == {"ok": True}
            for spec in specs:
                print(f"  {spec.name} ...", flush=True)
                row = bench_circuit(
                    client,
                    server.port,
                    spec,
                    args.total_seconds,
                    args.duplicates,
                    args.series,
                    args.timeout,
                )
                rows.append(row)
                print(
                    f"    fresh {row['fresh_s']}s, cached {row['cached_s']}s "
                    f"({row['cache_speedup']}x), keep-alive "
                    f"{row['keepalive_median_ms']}ms vs close "
                    f"{row['close_median_ms']}ms "
                    f"({row['keepalive_speedup']}x), identical="
                    f"{row['cached_bytes_identical']}, "
                    f"coalesced={row['coalesced_ok']}",
                    flush=True,
                )
            print(
                f"  saturation: {args.saturation_clients} clients x "
                f"{args.saturation_requests} requests ...",
                flush=True,
            )
            saturation = bench_saturation(
                server.port,
                _request(specs[0], args.total_seconds),
                args.saturation_clients,
                args.saturation_requests,
                args.timeout,
            )
            print(
                f"    {saturation['requests_per_second']} req/s, p50 "
                f"{saturation['p50_ms']}ms, p99 {saturation['p99_ms']}ms, "
                f"bad {saturation['dropped_or_corrupted']}",
                flush=True,
            )
            stats = client.stats()

        # The first server is *down* now -- these sections each boot
        # their own over the same root.
        print("  backpressure burst ...", flush=True)
        backpressure = bench_backpressure(
            root, _request(specs[0], args.total_seconds), args.timeout
        )
        print("  restart recovery ...", flush=True)
        restart = bench_restart(
            root,
            [_request(spec, args.total_seconds) for spec in specs],
            expected_jobs=len(specs),
            timeout=args.timeout,
        )
        print(
            f"    listed {restart['jobs_listed']} jobs after restart, "
            f"resubmits cached: {restart['resubmits_all_cached']}",
            flush=True,
        )
    finally:
        if owns_root:
            shutil.rmtree(root, ignore_errors=True)

    cache_speedups = [row["cache_speedup"] for row in rows]
    keepalive_speedups = [row["keepalive_speedup"] for row in rows]
    return {
        "meta": {
            "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "mode": "full" if args.full else "quick",
            "pool": args.pool,
            "duplicates": args.duplicates,
            "series": args.series,
            "total_seconds": args.total_seconds,
            "git_sha": git_sha(),
            "store_root": None if owns_root else root,
        },
        "circuits": rows,
        "saturation": saturation,
        "backpressure": backpressure,
        "restart": restart,
        "service_meta": {
            "queue_peak": stats["metrics"]["queue_peak"],
            "dedup": stats["metrics"]["dedup"],
            "latency_seconds": stats["metrics"]["latency_seconds"],
            "jobs": stats["jobs"],
            "http": stats["http"],
            "store_session": stats["store"]["session"],
        },
        "summary": {
            "min_cache_speedup": min(cache_speedups),
            "median_cache_speedup": round(statistics.median(cache_speedups), 1),
            "max_cache_speedup": max(cache_speedups),
            "min_keepalive_speedup": min(keepalive_speedups),
            "median_keepalive_speedup": round(
                statistics.median(keepalive_speedups), 2
            ),
            "max_keepalive_speedup": max(keepalive_speedups),
            "saturation_rps": saturation["requests_per_second"],
            "saturation_dropped_or_corrupted": saturation["dropped_or_corrupted"],
            "backpressure_rejected_429": backpressure["rejected_429"],
            "restart_resubmits_all_cached": restart["resubmits_all_cached"],
            "all_cached_bytes_identical": all(
                row["cached_bytes_identical"] for row in rows
            ),
            "all_dispositions_correct": all(
                row["fresh_ok"] and row["cached_ok"] and row["coalesced_ok"]
                for row in rows
            ),
        },
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="all sixteen Table II circuits (default: three-circuit quick set)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="three-circuit quick set (the default; kept for explicitness)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_service.json",
        help="where to write the JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--pool", type=int, default=2, help="worker-pool width (default: 2)"
    )
    parser.add_argument(
        "--duplicates",
        type=int,
        default=3,
        help="racing duplicate submissions per circuit (default: 3)",
    )
    parser.add_argument(
        "--series",
        type=int,
        default=60,
        help="cached requests per keep-alive/close series (default: 60)",
    )
    parser.add_argument(
        "--saturation-clients",
        type=int,
        default=8,
        help="concurrent keep-alive clients in saturation mode (default: 8)",
    )
    parser.add_argument(
        "--saturation-requests",
        type=int,
        default=50,
        help="requests per saturation client (default: 50)",
    )
    parser.add_argument(
        "--total-seconds",
        type=float,
        default=2.0,
        help="ATPG budget per fresh job (default: 2.0)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="client-side wait timeout per job (default: 300)",
    )
    parser.add_argument(
        "--store-root",
        default=None,
        help="reuse this store root instead of a throwaway temp dir",
    )
    args = parser.parse_args(argv)
    if args.full and args.quick:
        parser.error("--quick and --full are mutually exclusive")

    print(
        f"ATPG service benchmark ({'full' if args.full else 'quick'} mode, "
        f"pool {args.pool}, {os.cpu_count()} cpus)"
    )
    report = run(args)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    summary = report["summary"]
    print(
        f"cache speedup fresh -> cached: min {summary['min_cache_speedup']}x / "
        f"median {summary['median_cache_speedup']}x / "
        f"max {summary['max_cache_speedup']}x"
    )
    print(
        f"keep-alive speedup over close: min {summary['min_keepalive_speedup']}x / "
        f"median {summary['median_keepalive_speedup']}x / "
        f"max {summary['max_keepalive_speedup']}x"
    )
    print(
        f"saturation: {summary['saturation_rps']} req/s, "
        f"dropped/corrupted {summary['saturation_dropped_or_corrupted']}"
    )
    print(f"backpressure 429s: {summary['backpressure_rejected_429']}")
    print(f"restart resubmits cached: {summary['restart_resubmits_all_cached']}")
    print(f"cached bytes identical: {summary['all_cached_bytes_identical']}")
    print(f"dispositions correct: {summary['all_dispositions_correct']}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
