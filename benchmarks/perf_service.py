"""ATPG service benchmark: job latency across the three dedup tiers.

Boots the :mod:`repro.service` server in-process against a *fresh* store
root, then drives it over real HTTP three ways on the Table II quick set:

* **fresh** -- first submission of each circuit; the flow pipeline runs;
* **cached** -- byte-identical resubmission; the answer must come from the
  artifact store with zero stages executed;
* **coalesced** -- duplicate submissions raced while the first is still
  in flight; all must collapse onto one job id.

Every cached response is compared byte-for-byte against its fresh
counterpart (the service adds transport, not variance), and the server's
own ``/v1/stats`` metrics -- queue depth peak, dedup hit counts and
nearest-rank latency percentiles per tier -- are folded into the report as
``service_meta``.  Results land in ``BENCH_service.json``.

Run from the repository root::

    PYTHONPATH=src python -m benchmarks.perf_service --quick
    PYTHONPATH=src python -m benchmarks.perf_service --full -o BENCH_service.json

Not collected by pytest (``testpaths = ["tests"]``); a standalone CLI so
CI can smoke the service end-to-end on both numpy and no-numpy legs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import statistics
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from repro.core.experiments import TABLE2_CIRCUITS
from repro.service import BackgroundServer, ServiceClient
from repro.store.core import ArtifactStore

QUICK_NAMES = ("dk16.ji.sd", "s510.jo.sr", "s820.jo.sd")


def _specs(full: bool):
    if full:
        return TABLE2_CIRCUITS
    return tuple(s for s in TABLE2_CIRCUITS if s.name in QUICK_NAMES)


def _request(spec, total_seconds: float) -> Dict[str, object]:
    fsm, style, script = spec.name.split(".")
    return {
        "circuit": {"format": "table2", "fsm": fsm, "style": style, "script": script},
        "budget": {"total_seconds": total_seconds},
    }


def _timed_submit_and_wait(client: ServiceClient, request, timeout: float):
    """(job doc, wall seconds from POST to terminal status, result bytes)."""
    start = time.perf_counter()
    job = client.submit(request)
    final = client.wait(job["id"], timeout=timeout)
    elapsed = time.perf_counter() - start
    result = client.artifact(job["id"], "result")
    return job, final, elapsed, result


def bench_circuit(
    client: ServiceClient,
    spec,
    total_seconds: float,
    duplicates: int,
    timeout: float,
) -> Dict[str, object]:
    """One row: fresh run, coalesced duplicates, cached resubmission."""
    request = _request(spec, total_seconds)

    fresh_job, fresh_final, fresh_s, fresh_bytes = _timed_submit_and_wait(
        client, request, timeout
    )
    fresh_ok = fresh_job["disposition"] == "fresh" and fresh_final["status"] == "done"

    cached_job, cached_final, cached_s, cached_bytes = _timed_submit_and_wait(
        client, request, timeout
    )
    cached_ok = (
        cached_job["disposition"] == "cached"
        and cached_final["status"] == "done"
        and cached_bytes == fresh_bytes
    )

    # Coalescing needs in-flight work: a longer budget is a different
    # fingerprint, so these duplicates race a genuinely fresh job.
    coalesce_request = _request(spec, total_seconds + 0.125)
    racer = client.submit(coalesce_request)
    duplicate_ids = [client.submit(coalesce_request)["id"] for _ in range(duplicates)]
    racer_final = client.wait(racer["id"], timeout=timeout)
    coalesced_ok = (
        racer["disposition"] == "fresh"
        and all(job_id == racer["id"] for job_id in duplicate_ids)
        and racer_final["coalesced_hits"] >= duplicates
    )

    return {
        "circuit": spec.name,
        "fresh_s": round(fresh_s, 4),
        "cached_s": round(cached_s, 4),
        "cache_speedup": round(fresh_s / max(cached_s, 1e-9), 1),
        "result_bytes": len(fresh_bytes),
        "fault_coverage": json.loads(fresh_bytes)["atpg"]["fault_coverage"],
        "fresh_ok": fresh_ok,
        "cached_ok": cached_ok,
        "cached_bytes_identical": cached_bytes == fresh_bytes,
        "coalesced_ok": coalesced_ok,
    }


def run(args: argparse.Namespace) -> Dict[str, object]:
    from benchmarks.provenance import git_sha

    root = args.store_root or tempfile.mkdtemp(prefix="repro-bench-service-")
    owns_root = args.store_root is None
    store = ArtifactStore(root=root)
    rows: List[Dict[str, object]] = []
    try:
        with BackgroundServer(store=store, pool=args.pool) as server:
            client = ServiceClient(port=server.port, timeout=args.timeout)
            assert client.health() == {"ok": True}
            for spec in _specs(args.full):
                print(f"  {spec.name} ...", flush=True)
                row = bench_circuit(
                    client, spec, args.total_seconds, args.duplicates, args.timeout
                )
                rows.append(row)
                print(
                    f"    fresh {row['fresh_s']}s, cached {row['cached_s']}s "
                    f"({row['cache_speedup']}x), identical="
                    f"{row['cached_bytes_identical']}, "
                    f"coalesced={row['coalesced_ok']}",
                    flush=True,
                )
            stats = client.stats()
    finally:
        if owns_root:
            shutil.rmtree(root, ignore_errors=True)

    cache_speedups = [row["cache_speedup"] for row in rows]
    return {
        "meta": {
            "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "mode": "full" if args.full else "quick",
            "pool": args.pool,
            "duplicates": args.duplicates,
            "total_seconds": args.total_seconds,
            "git_sha": git_sha(),
            "store_root": None if owns_root else root,
        },
        "circuits": rows,
        "service_meta": {
            "queue_peak": stats["metrics"]["queue_peak"],
            "dedup": stats["metrics"]["dedup"],
            "latency_seconds": stats["metrics"]["latency_seconds"],
            "jobs": stats["jobs"],
            "store_session": stats["store"]["session"],
        },
        "summary": {
            "min_cache_speedup": min(cache_speedups),
            "median_cache_speedup": round(statistics.median(cache_speedups), 1),
            "max_cache_speedup": max(cache_speedups),
            "all_cached_bytes_identical": all(
                row["cached_bytes_identical"] for row in rows
            ),
            "all_dispositions_correct": all(
                row["fresh_ok"] and row["cached_ok"] and row["coalesced_ok"]
                for row in rows
            ),
        },
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="all sixteen Table II circuits (default: three-circuit quick set)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="three-circuit quick set (the default; kept for explicitness)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_service.json",
        help="where to write the JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--pool", type=int, default=2, help="worker-pool width (default: 2)"
    )
    parser.add_argument(
        "--duplicates",
        type=int,
        default=3,
        help="racing duplicate submissions per circuit (default: 3)",
    )
    parser.add_argument(
        "--total-seconds",
        type=float,
        default=2.0,
        help="ATPG budget per fresh job (default: 2.0)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="client-side wait timeout per job (default: 300)",
    )
    parser.add_argument(
        "--store-root",
        default=None,
        help="reuse this store root instead of a throwaway temp dir",
    )
    args = parser.parse_args(argv)
    if args.full and args.quick:
        parser.error("--quick and --full are mutually exclusive")

    print(
        f"ATPG service benchmark ({'full' if args.full else 'quick'} mode, "
        f"pool {args.pool}, {os.cpu_count()} cpus)"
    )
    report = run(args)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    summary = report["summary"]
    print(
        f"cache speedup fresh -> cached: min {summary['min_cache_speedup']}x / "
        f"median {summary['median_cache_speedup']}x / "
        f"max {summary['max_cache_speedup']}x"
    )
    print(f"cached bytes identical: {summary['all_cached_bytes_identical']}")
    print(f"dispositions correct: {summary['all_dispositions_correct']}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
