"""Fig. 2: retiming creates equivalent states; C1 ==s C2 (Lemma 1).

Regenerates the C1 -> C2 example: the clock period improves from 4 to 3,
the flip-flop count grows from 1 to 2, the retimed machine gains the
equivalent-state class {01, 10, 11}, and the two machines are
space-equivalent; <11> synchronizes both to equivalent states (Theorem 1).
"""

import pytest

from repro.equivalence import classify, extract_stg, space_equivalent, states_equivalent
from repro.papercircuits import fig2_pair
from repro.simulation import SequentialSimulator


def test_fig2_characteristics(benchmark):
    c1, c2, retiming = benchmark(fig2_pair)
    assert c1.clock_period() == 4
    assert c2.clock_period() == 3
    assert c1.num_registers() == 1
    assert c2.num_registers() == 2


@pytest.mark.parametrize("engine", ["bitset", "reference"])
def test_fig2_state_space(benchmark, engine):
    c1, c2, _ = fig2_pair()

    def analyse():
        stg1 = extract_stg(c1, engine=engine, use_store=False)
        stg2 = extract_stg(c2, engine=engine, use_store=False)
        equivalent = space_equivalent(stg1, stg2)
        classes = classify([stg2]).equivalence_classes(0)
        return stg1, stg2, equivalent, classes

    stg1, stg2, equivalent, classes = benchmark(analyse)
    assert equivalent  # Lemma 1
    sizes = sorted(len(v) for v in classes.values())
    assert sizes == [1, 3]  # the paper's {00} vs {01, 10, 11}


def test_fig2_theorem1_sync(benchmark):
    c1, c2, _ = fig2_pair()

    def synchronize():
        final1 = SequentialSimulator(c1).run([(1, 1)]).final_state
        final2 = SequentialSimulator(c2).run([(1, 1)]).final_state
        return final1, final2

    final1, final2 = benchmark(synchronize)
    assert 2 not in final1 and 2 not in final2  # structural sync preserved
    assert states_equivalent(extract_stg(c1), final1, extract_stg(c2), final2)
