"""Ablations on the substrates: fault-sim engines, simulators, retimers.

* PROOFS-style parallel fault simulation vs the serial reference
  (identical results, measured speedup);
* code-generated stepper vs interpreted simulator (identical results,
  measured speedup);
* bit-packed vs scalar explicit-STG extraction and classification
  (identical machines, measured speedup);
* min-register vs performance retiming on a benchmark circuit (register
  counts bracket the original);
* synthesis script/encoding sweep (the area/delay trade-off Table II's
  circuit family is built on).
"""

import random

import pytest

from repro.core import build_pair, format_table
from repro.core.experiments import CircuitSpec
from repro.faults import collapse_faults
from repro.faultsim import parallel_fault_simulate, serial_fault_simulate
from repro.fsm.mcnc import TABLE1_PROFILES, synthesize_benchmark
from repro.retiming import min_register_retiming
from repro.simulation import SequentialSimulator
from repro.simulation.codegen import FastStepper


@pytest.fixture(scope="module")
def circuit():
    return build_pair(CircuitSpec("s820", "jc", "rugged", 0)).original


@pytest.fixture(scope="module")
def sequences(circuit):
    rng = random.Random(42)
    return [
        [
            tuple(rng.randint(0, 1) for _ in circuit.input_names)
            for _ in range(48)
        ]
        for _ in range(2)
    ]


def test_parallel_fault_sim(benchmark, circuit, sequences):
    faults = collapse_faults(circuit).representatives

    def run():
        return parallel_fault_simulate(circuit, sequences, faults)

    result = benchmark(run)
    assert result.num_detected > 0


def test_serial_fault_sim_agrees(benchmark, circuit, sequences):
    faults = collapse_faults(circuit).representatives[:120]

    def run():
        return serial_fault_simulate(circuit, sequences, faults)

    serial = benchmark(run)
    parallel = parallel_fault_simulate(circuit, sequences, faults)
    assert set(serial.detections) == set(parallel.detections)


def test_interpreted_step(benchmark, circuit):
    simulator = SequentialSimulator(circuit)
    state = simulator.unknown_state()
    vector = tuple(0 for _ in circuit.input_names)
    benchmark(simulator.step, state, vector)


def test_codegen_step(benchmark, circuit):
    stepper = FastStepper(circuit)
    state = stepper.unknown_state()
    vector = tuple(0 for _ in circuit.input_names)
    outputs, next_state, values = benchmark(stepper.step, state, vector)
    reference = SequentialSimulator(circuit).step(state, vector)
    assert outputs == reference.outputs
    assert next_state == reference.next_state


@pytest.fixture(scope="module")
def small_circuit():
    # s820 has 18 primary inputs -- beyond every STG engine's vector
    # limit -- so the state-space ablation runs on dk16 (5 dffs, 4 PIs).
    from repro.core.experiments import TABLE2_CIRCUITS

    spec = next(s for s in TABLE2_CIRCUITS if s.name == "dk16.ji.sd")
    return build_pair(spec).original


@pytest.mark.parametrize("engine", ["bitset", "reference"])
def test_stg_engine(benchmark, small_circuit, engine):
    from repro.equivalence import classify, extract_stg

    def analyse():
        stg = extract_stg(small_circuit, engine=engine, use_store=False)
        return stg, classify([stg])

    stg, classification = benchmark(analyse)
    assert len(stg.states) == 1 << small_circuit.num_registers()
    # Both engines land on the same partition (cross-checked in depth by
    # tests/equivalence/test_engine_parity.py; this pins the headline
    # number the speedup claim is anchored to).
    assert len(set(classification.class_array(0))) == 28


def test_min_register_vs_performance(benchmark, circuit):
    def run():
        return min_register_retiming(circuit)

    result = benchmark(run)
    # The synthesized circuit is already register-minimal (one DFF per
    # state bit), so min-register retiming cannot beat it by much -- while
    # the performance retiming multiplies registers.
    pair = build_pair(CircuitSpec("s820", "jc", "rugged", 0))
    assert result.registers_after <= circuit.num_registers()
    assert pair.retimed.num_registers() >= 2 * result.registers_after


def test_synthesis_tradeoff_sweep(benchmark):
    def sweep():
        rows = []
        for style in ("ji", "jo", "jc"):
            for script in ("delay", "rugged"):
                c = synthesize_benchmark("s510", style, script).circuit
                rows.append(
                    {
                        "circuit": c.name,
                        "gates": c.num_gates(),
                        "period": c.clock_period(),
                        "dffs": c.num_registers(),
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows, ["circuit", "gates", "period", "dffs"]))
    by_script = {}
    for row in rows:
        by_script.setdefault(row["circuit"].rsplit(".", 1)[1], []).append(row)
    # script.delay: shallower; script.rugged: smaller -- on average.
    avg = lambda rows, key: sum(r[key] for r in rows) / len(rows)
    assert avg(by_script["sd"], "period") < avg(by_script["sr"], "period")
    assert avg(by_script["sr"], "gates") < avg(by_script["sd"], "gates")
