"""CI perf guard: dual-kernel throughput vs the committed baseline.

Re-runs the deterministic PODEM phase (serial engine, dual kernel) on the
quick circuit set under the *baseline's own recorded budget* and compares
the achieved ``dual_frames_per_sec`` against the matching rows of the
committed ``BENCH_atpg.json``.  The run fails when the geometric mean of
the per-circuit ratios falls below ``--min-ratio`` (default 0.7, i.e. a
>30% frames/sec regression).

Run from the repository root::

    PYTHONPATH=src python -m benchmarks.perf_guard --baseline BENCH_atpg.json

The geometric mean -- not the worst row -- is guarded so one noisy row on
a shared runner cannot fail the build by itself; a real kernel regression
moves every row.  Absolute frames/sec is machine-dependent, so cross-
machine comparisons are only indicative: the guard is calibrated for CI
runners comparable to the baseline generator and the threshold is
deliberately loose.  Regenerate the baseline (``python -m
benchmarks.perf_atpg --full``) whenever the kernel legitimately changes
speed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from typing import Dict, Optional, Sequence

from repro.atpg import AtpgBudget, run_atpg
from repro.core.experiments import TABLE2_CIRCUITS, build_pair
from repro.faults.collapse import collapse_faults
from repro.simulation import clear_compile_cache

QUICK_NAMES = ("dk16.ji.sd", "s510.jo.sr", "s820.jo.sd")


def _baseline_budget(meta: Dict[str, object]) -> AtpgBudget:
    budget = meta["budget"]
    return AtpgBudget(
        total_seconds=float(budget["total_seconds"]),
        seconds_per_fault=5.0,
        backtracks_per_fault=int(budget["backtracks_per_fault"]),
        frames_cap=int(budget["frames_cap"]),
        random_sequences=int(budget["random_sequences"]),
        random_length=24,
    )


def measure_frames_per_sec(
    circuit, budget: AtpgBudget, max_faults: int
) -> float:
    faults = collapse_faults(circuit).representatives
    if max_faults and len(faults) > max_faults:
        faults = faults[:max_faults]
    result = run_atpg(
        circuit, faults=faults, budget=budget, engine="serial", kernel="dual"
    )
    det = max(result.deterministic_seconds, 1e-9)
    return result.frames_simulated / det


def run_guard(baseline_path: str, min_ratio: float) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    rows = {
        row["circuit"]: row
        for row in baseline["circuits"]
        if "dual_frames_per_sec" in row
    }
    names = [
        name
        for base in QUICK_NAMES
        for name in (base, base + ".re")
        if name in rows
    ]
    if not names:
        print(
            "baseline has no dual_frames_per_sec rows for the quick set; "
            "regenerate it with benchmarks.perf_atpg",
            file=sys.stderr,
        )
        return 2
    clear_compile_cache()
    budget = _baseline_budget(baseline["meta"])
    max_faults = int(baseline["meta"].get("max_faults_per_circuit", 0))
    ratios = []
    for name in names:
        spec_name = name[:-3] if name.endswith(".re") else name
        spec = next(s for s in TABLE2_CIRCUITS if s.name == spec_name)
        pair = build_pair(spec)
        circuit = pair.retimed if name.endswith(".re") else pair.original
        current = measure_frames_per_sec(circuit, budget, max_faults)
        base = float(rows[name]["dual_frames_per_sec"])
        ratio = current / max(base, 1e-9)
        ratios.append(ratio)
        print(
            f"  {name}: baseline {base:.0f} frames/s, "
            f"current {current:.0f} frames/s (ratio {ratio:.2f})",
            flush=True,
        )
    geomean = statistics.geometric_mean(ratios)
    print(f"geomean throughput ratio: {geomean:.2f} (min allowed {min_ratio})")
    if geomean < min_ratio:
        print(
            f"FAIL: dual-kernel frames/sec regressed more than "
            f"{(1.0 - min_ratio) * 100:.0f}% vs {baseline_path}",
            file=sys.stderr,
        )
        return 1
    print("perf guard passed")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="BENCH_atpg.json",
        help="committed benchmark report to guard against (default: %(default)s)",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.7,
        help="minimum allowed current/baseline frames-per-sec geomean "
        "(default: %(default)s, i.e. fail on a >30%% regression)",
    )
    args = parser.parse_args(argv)
    return run_guard(args.baseline, args.min_ratio)


if __name__ == "__main__":
    raise SystemExit(main())
