"""CI perf guard: kernel throughput vs the committed baselines.

Re-runs the deterministic PODEM phase (serial engine, dual kernel) on the
quick circuit set under the *baseline's own recorded budget* and compares
the achieved ``dual_frames_per_sec`` against the matching rows of the
committed ``BENCH_atpg.json``.  The run fails when the geometric mean of
the per-circuit ratios falls below ``--min-ratio`` (default 0.7, i.e. a
>30% frames/sec regression).

With ``--equiv-baseline BENCH_equiv.json`` it additionally regenerates
each equivalence-benchmark circuit from the row's recorded parameters,
re-times the extract + classify + sync-search leg **per STG engine**
(bitset, and reach where the baseline has reach rows), and fails when
any engine's geomean of baseline-time / current-time ratios falls below
``--equiv-min-ratio`` (default 0.5) -- the reach series is guarded
separately so a frontier-BFS regression cannot hide behind bitset
headroom.  Rows marked ``bitset_rejected`` (past the 18-register wall)
are guarded on the reach leg only.  Deterministic row facts (class
counts, sync-sequence lengths, visited-state and peak-frontier counts)
are also re-checked, so a semantic regression of either engine fails
the guard even when it got faster.

With ``--faultsim-baseline BENCH_faultsim.json`` it re-times the
compiled fault-simulation kernel **per word backend** (bigint always;
numpy when installed) under the baseline's recorded workload and guards
each backend's geomean baseline-time / current-time ratio separately
against ``--faultsim-min-ratio`` (default 0.5) -- a regression in one
backend cannot hide behind the other's headroom.  The run also
cross-checks that both backends still detect the identical fault set.

With ``--service-baseline BENCH_service.json`` it boots the ATPG job
service in-process, re-measures the cached-request keep-alive-vs-close
series per quick-set circuit through the benchmark's socket-level load
generator, and fails when the geomean of current/baseline speedup ratios
falls below ``--service-min-ratio`` (default 0.4) *or* when keep-alive
is not strictly faster than connection-per-request on any row.

With ``--guidance-baseline BENCH_atpg.json`` it re-runs the quick-set
deterministic phase twice -- unguided and SCOAP-guided -- under the
baseline's recorded budget and fails when the geomean guided/unguided
*effort* ratio (backtracks + frames simulated, lower is better) exceeds
``--guidance-max-ratio`` (default 0.85).  Effort counters are
machine-independent, so unlike the throughput guard this check runs
identically on any runner, including the no-numpy CI leg; pair it with
``--skip-throughput`` there.

Run from the repository root::

    PYTHONPATH=src python -m benchmarks.perf_guard --baseline BENCH_atpg.json \
        --equiv-baseline BENCH_equiv.json

The geometric mean -- not the worst row -- is guarded so one noisy row on
a shared runner cannot fail the build by itself; a real kernel regression
moves every row.  Absolute frames/sec is machine-dependent, so cross-
machine comparisons are only indicative: the guard is calibrated for CI
runners comparable to the baseline generator and the threshold is
deliberately loose.  Regenerate the baseline (``python -m
benchmarks.perf_atpg --full``) whenever the kernel legitimately changes
speed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from typing import Dict, Optional, Sequence

from repro.atpg import AtpgBudget, run_atpg
from repro.core.experiments import TABLE2_CIRCUITS, build_pair
from repro.faults.collapse import collapse_faults
from repro.simulation import clear_compile_cache

QUICK_NAMES = ("dk16.ji.sd", "s510.jo.sr", "s820.jo.sd")


def _baseline_budget(meta: Dict[str, object]) -> AtpgBudget:
    budget = meta["budget"]
    return AtpgBudget(
        total_seconds=float(budget["total_seconds"]),
        seconds_per_fault=5.0,
        backtracks_per_fault=int(budget["backtracks_per_fault"]),
        frames_cap=int(budget["frames_cap"]),
        random_sequences=int(budget["random_sequences"]),
        random_length=24,
    )


def measure_frames_per_sec(
    circuit, budget: AtpgBudget, max_faults: int
) -> float:
    faults = collapse_faults(circuit).representatives
    if max_faults and len(faults) > max_faults:
        faults = faults[:max_faults]
    result = run_atpg(
        circuit, faults=faults, budget=budget, engine="serial", kernel="dual"
    )
    det = max(result.deterministic_seconds, 1e-9)
    return result.frames_simulated / det


def run_guard(baseline_path: str, min_ratio: float) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    rows = {
        row["circuit"]: row
        for row in baseline["circuits"]
        if "dual_frames_per_sec" in row
    }
    names = [
        name
        for base in QUICK_NAMES
        for name in (base, base + ".re")
        if name in rows
    ]
    if not names:
        print(
            "baseline has no dual_frames_per_sec rows for the quick set; "
            "regenerate it with benchmarks.perf_atpg",
            file=sys.stderr,
        )
        return 2
    clear_compile_cache()
    budget = _baseline_budget(baseline["meta"])
    max_faults = int(baseline["meta"].get("max_faults_per_circuit", 0))
    ratios = []
    for name in names:
        spec_name = name[:-3] if name.endswith(".re") else name
        spec = next(s for s in TABLE2_CIRCUITS if s.name == spec_name)
        pair = build_pair(spec)
        circuit = pair.retimed if name.endswith(".re") else pair.original
        current = measure_frames_per_sec(circuit, budget, max_faults)
        base = float(rows[name]["dual_frames_per_sec"])
        ratio = current / max(base, 1e-9)
        ratios.append(ratio)
        print(
            f"  {name}: baseline {base:.0f} frames/s, "
            f"current {current:.0f} frames/s (ratio {ratio:.2f})",
            flush=True,
        )
    geomean = statistics.geometric_mean(ratios)
    print(f"geomean throughput ratio: {geomean:.2f} (min allowed {min_ratio})")
    if geomean < min_ratio:
        print(
            f"FAIL: dual-kernel frames/sec regressed more than "
            f"{(1.0 - min_ratio) * 100:.0f}% vs {baseline_path}",
            file=sys.stderr,
        )
        return 1
    print("perf guard passed")
    return 0


def run_guidance_guard(baseline_path: str, max_ratio: float) -> int:
    """Guard the SCOAP guidance layer: guided deterministic effort must
    stay well below unguided effort on the quick set.

    Both runs happen fresh on this machine under the baseline's recorded
    budget, so the ratio is a pure algorithmic comparison -- backtracks
    plus frames simulated, no wall-clock anywhere.  ``max_ratio`` is
    deliberately looser than the geomean recorded in the committed
    baseline: the guard catches "guidance stopped helping", not ordinary
    row-to-row drift from fault-list or budget tweaks.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    clear_compile_cache()
    budget = _baseline_budget(baseline["meta"])
    max_faults = int(baseline["meta"].get("max_faults_per_circuit", 0))
    known = {row["circuit"] for row in baseline["circuits"]}
    names = [
        name
        for base in QUICK_NAMES
        for name in (base, base + ".re")
        if name in known
    ]
    if not names:
        print(
            "baseline has no quick-set rows; regenerate it with "
            "benchmarks.perf_atpg",
            file=sys.stderr,
        )
        return 2
    ratios = []
    for name in names:
        spec_name = name[:-3] if name.endswith(".re") else name
        spec = next(s for s in TABLE2_CIRCUITS if s.name == spec_name)
        pair = build_pair(spec)
        circuit = pair.retimed if name.endswith(".re") else pair.original
        faults = collapse_faults(circuit).representatives
        if max_faults and len(faults) > max_faults:
            faults = faults[:max_faults]
        results = {}
        for mode in ("off", "scoap"):
            result = run_atpg(
                circuit,
                faults=faults,
                budget=budget,
                engine="serial",
                kernel="dual",
                guidance=mode,
            )
            results[mode] = result
        effort_off = max(
            sum(
                row.backtracks + row.frames_simulated
                for row in results["off"].fault_rows
            ),
            1,
        )
        effort_scoap = sum(
            row.backtracks + row.frames_simulated
            for row in results["scoap"].fault_rows
        )
        if results["scoap"].detected < results["off"].detected:
            print(
                f"FAIL: {name}: scoap guidance lost coverage "
                f"({results['scoap'].detected} vs "
                f"{results['off'].detected} detected)",
                file=sys.stderr,
            )
            return 1
        ratio = effort_scoap / effort_off
        ratios.append(ratio)
        print(
            f"  {name}: unguided effort {effort_off}, "
            f"scoap {effort_scoap} (ratio {ratio:.2f})",
            flush=True,
        )
    geomean = statistics.geometric_mean(ratios)
    print(
        f"geomean guided/unguided effort ratio: {geomean:.2f} "
        f"(max allowed {max_ratio})"
    )
    if geomean > max_ratio:
        print(
            f"FAIL: SCOAP guidance no longer cuts deterministic effort "
            f"below {max_ratio:.0%} of unguided on the quick set",
            file=sys.stderr,
        )
        return 1
    print("guidance guard passed")
    return 0


def run_equiv_guard(baseline_path: str, min_ratio: float) -> int:
    """Guard the bitset and reach STG engines, one ratio series per
    engine.  Rows marked ``bitset_rejected`` (past the 18-register wall)
    skip the bitset leg; rows from a pre-reach baseline skip the reach
    leg."""
    from benchmarks.perf_equiv import circuit_from_params, time_engine_leg

    with open(baseline_path) as handle:
        baseline = json.load(handle)
    repeats = int(baseline["meta"]["workload"].get("repeats", 2))
    clear_compile_cache()
    ratios: Dict[str, list] = {"bitset": [], "reach": []}
    for row in baseline["circuits"]:
        circuit = circuit_from_params(row["params"])
        if not row.get("bitset_rejected"):
            timings, _, classification, sequence = time_engine_leg(
                circuit, "bitset", repeats
            )
            num_classes = len(set(classification.class_array(0)))
            sync_length = None if sequence is None else len(sequence)
            if (num_classes, sync_length) != (
                row["num_classes"],
                row["sync_length"],
            ):
                print(
                    f"FAIL: {row['circuit']}: bitset engine results diverge "
                    f"from {baseline_path} (classes {num_classes} vs "
                    f"{row['num_classes']}, sync length {sync_length} vs "
                    f"{row['sync_length']})",
                    file=sys.stderr,
                )
                return 1
            base = float(row["bitset"]["total_s"])
            ratio = base / max(timings["total_s"], 1e-9)
            ratios["bitset"].append(ratio)
            print(
                f"  {row['circuit']} [bitset]: baseline {base:.4f}s, "
                f"current {timings['total_s']:.4f}s (ratio {ratio:.2f})",
                flush=True,
            )
        if "reach" in row:
            # The baseline's ``reach`` timings are the bigint leg; pin the
            # backend so the ratio compares like with like.
            timings, stg, classification, sequence = time_engine_leg(
                circuit, "reach", repeats, backend="bigint"
            )
            sync_length = None if sequence is None else len(sequence)
            current = (
                stg.visited_states,
                stg.peak_frontier,
                len(set(classification.class_array(0))),
                sync_length,
            )
            expected = (
                row["visited_states"],
                row["peak_frontier"],
                row["reach_classes"],
                row["reach_sync_length"],
            )
            if current != expected:
                print(
                    f"FAIL: {row['circuit']}: reach engine results diverge "
                    f"from {baseline_path} "
                    f"((visited, peak, classes, sync) {current} vs "
                    f"{expected})",
                    file=sys.stderr,
                )
                return 1
            base = float(row["reach"]["total_s"])
            ratio = base / max(timings["total_s"], 1e-9)
            ratios["reach"].append(ratio)
            print(
                f"  {row['circuit']} [reach]: baseline {base:.4f}s, "
                f"current {timings['total_s']:.4f}s (ratio {ratio:.2f})",
                flush=True,
            )
    status = 0
    for engine, series in ratios.items():
        if not series:
            continue
        geomean = statistics.geometric_mean(series)
        print(
            f"geomean equiv-engine time ratio [{engine}]: {geomean:.2f} "
            f"(min allowed {min_ratio})"
        )
        if geomean < min_ratio:
            print(
                f"FAIL: {engine} STG engine slowed down more than "
                f"{(1.0 / min_ratio):.1f}x vs {baseline_path}",
                file=sys.stderr,
            )
            status = 1
    if status == 0:
        print("equiv perf guard passed")
    return status


def run_faultsim_guard(baseline_path: str, min_ratio: float) -> int:
    """Guard the compiled fault-sim kernel, one ratio series per backend."""
    from benchmarks.perf_faultsim import _random_sequences, _time
    from repro.faults.collapse import collapse_faults as collapse
    from repro.faultsim import parallel_fault_simulate
    from repro.simulation.backends import numpy_available

    with open(baseline_path) as handle:
        baseline = json.load(handle)
    workload = baseline["meta"]["workload"]
    repeats = int(workload.get("repeats", 2))
    baseline_rows = {row["circuit"]: row for row in baseline["circuits"]}
    names = [
        name
        for base in QUICK_NAMES
        for name in (base, base + ".re")
        if name in baseline_rows
    ]
    if not names:
        print(
            "baseline has no quick-set rows; regenerate it with "
            "benchmarks.perf_faultsim",
            file=sys.stderr,
        )
        return 2
    backends = ["bigint"] + (["numpy"] if numpy_available() else [])
    baseline_field = {"bigint": "compiled_s", "numpy": "numpy_s"}
    clear_compile_cache()
    ratios: Dict[str, list] = {backend: [] for backend in backends}
    for name in names:
        spec_name = name[:-3] if name.endswith(".re") else name
        spec = next(s for s in TABLE2_CIRCUITS if s.name == spec_name)
        pair = build_pair(spec)
        circuit = pair.retimed if name.endswith(".re") else pair.original
        faults = collapse(circuit).representatives
        sequences = _random_sequences(
            circuit,
            int(workload["seed"]),
            int(workload["sequences"]),
            int(workload["length"]),
        )
        detections = {}
        for backend in backends:
            field = baseline_field[backend]
            if field not in baseline_rows[name]:
                continue  # baseline predates this backend's rows
            elapsed, result = _time(
                lambda: parallel_fault_simulate(
                    circuit, sequences, faults, backend=backend
                ),
                repeats,
            )
            detections[backend] = result.detections
            base = float(baseline_rows[name][field])
            ratio = base / max(elapsed, 1e-9)
            ratios[backend].append(ratio)
            print(
                f"  {name} [{backend}]: baseline {base:.4f}s, "
                f"current {elapsed:.4f}s (ratio {ratio:.2f})",
                flush=True,
            )
        if len(detections) == 2 and detections["bigint"] != detections["numpy"]:
            print(
                f"FAIL: {name}: numpy and bigint backends disagree on "
                "detections",
                file=sys.stderr,
            )
            return 1
    status = 0
    for backend, series in ratios.items():
        if not series:
            continue
        geomean = statistics.geometric_mean(series)
        print(
            f"geomean fault-sim time ratio [{backend}]: {geomean:.2f} "
            f"(min allowed {min_ratio})"
        )
        if geomean < min_ratio:
            print(
                f"FAIL: {backend} fault-sim backend slowed down more than "
                f"{(1.0 / min_ratio):.1f}x vs {baseline_path}",
                file=sys.stderr,
            )
            status = 1
    if status == 0:
        print("fault-sim perf guard passed")
    return status


def run_service_guard(baseline_path: str, min_ratio: float) -> int:
    """Guard the service's keep-alive advantage: re-measure the cached
    keep-alive-vs-close series per quick-set circuit and compare each
    speedup against the committed baseline row.

    Two failure modes: the geomean of current/baseline speedup ratios
    dropping below ``min_ratio`` (the persistent-connection machinery
    regressed relative to the recorded run), and any absolute speedup at
    or below 1.0 (keep-alive slower than connection-per-request -- wrong
    on any machine, however noisy).
    """
    import statistics as stats
    import shutil
    import tempfile

    from benchmarks.perf_service import _raw_cached_series, _request
    from repro.service import BackgroundServer, ServiceClient
    from repro.store.core import ArtifactStore

    with open(baseline_path) as handle:
        baseline = json.load(handle)
    meta = baseline["meta"]
    series = int(meta.get("series", 60))
    total_seconds = float(meta.get("total_seconds", 2.0))
    rows = {
        row["circuit"]: row
        for row in baseline["circuits"]
        if "keepalive_speedup" in row
    }
    names = [name for name in QUICK_NAMES if name in rows]
    if not names:
        print(
            "baseline has no keepalive_speedup rows for the quick set; "
            "regenerate it with benchmarks.perf_service",
            file=sys.stderr,
        )
        return 2
    root = tempfile.mkdtemp(prefix="repro-service-guard-")
    ratios = []
    status = 0
    try:
        store = ArtifactStore(root=root)
        with BackgroundServer(store=store, pool=2) as server:
            client = ServiceClient(port=server.port)
            for name in names:
                spec = next(s for s in TABLE2_CIRCUITS if s.name == name)
                request = _request(spec, total_seconds)
                job = client.submit(request)
                client.wait(job["id"], timeout=300)
                # Same measurement rule as the benchmark: warm both modes,
                # interleave blocks, take the min of per-block medians so a
                # block polluted by unrelated machine activity is discarded.
                _raw_cached_series(server.port, request, max(2, series // 10), False)
                _raw_cached_series(server.port, request, max(2, series // 10), True)
                block = max(1, series // 2)
                keepalive_medians = []
                close_medians = []
                for _ in range(2):
                    keepalive_medians.append(stats.median(
                        _raw_cached_series(server.port, request, block, False)
                    ))
                    close_medians.append(stats.median(
                        _raw_cached_series(server.port, request, block, True)
                    ))
                keepalive = min(keepalive_medians)
                close = min(close_medians)
                speedup = close / max(keepalive, 1e-9)
                base = float(rows[name]["keepalive_speedup"])
                ratio = speedup / max(base, 1e-9)
                ratios.append(ratio)
                print(
                    f"  {name}: baseline keep-alive speedup {base:.2f}x, "
                    f"current {speedup:.2f}x (ratio {ratio:.2f})",
                    flush=True,
                )
                if speedup <= 1.0:
                    print(
                        f"FAIL: {name}: keep-alive is not faster than "
                        f"connection-per-request ({speedup:.2f}x)",
                        file=sys.stderr,
                    )
                    status = 1
    finally:
        shutil.rmtree(root, ignore_errors=True)
    geomean = statistics.geometric_mean(ratios)
    print(
        f"geomean keep-alive speedup ratio: {geomean:.2f} "
        f"(min allowed {min_ratio})"
    )
    if geomean < min_ratio:
        print(
            f"FAIL: keep-alive-vs-close speedup regressed below "
            f"{min_ratio:.0%} of {baseline_path}",
            file=sys.stderr,
        )
        status = 1
    if status == 0:
        print("service perf guard passed")
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="BENCH_atpg.json",
        help="committed benchmark report to guard against (default: %(default)s)",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.7,
        help="minimum allowed current/baseline frames-per-sec geomean "
        "(default: %(default)s, i.e. fail on a >30%% regression)",
    )
    parser.add_argument(
        "--skip-throughput",
        action="store_true",
        help="skip the machine-dependent frames/sec guard (use on runners "
        "that are not comparable to the baseline generator, e.g. the "
        "no-numpy CI leg running only the guidance guard)",
    )
    parser.add_argument(
        "--guidance-baseline",
        default=None,
        help="ATPG baseline (BENCH_atpg.json) whose budget parameterises "
        "the machine-independent guided-vs-unguided effort guard",
    )
    parser.add_argument(
        "--guidance-max-ratio",
        type=float,
        default=0.85,
        help="maximum allowed guided/unguided deterministic-effort geomean "
        "(default: %(default)s; the committed baseline records ~0.73)",
    )
    parser.add_argument(
        "--equiv-baseline",
        default=None,
        help="equivalence-engine baseline (BENCH_equiv.json) to also guard",
    )
    parser.add_argument(
        "--equiv-min-ratio",
        type=float,
        default=0.5,
        help="minimum allowed baseline/current equiv-time geomean "
        "(default: %(default)s, i.e. fail on a >2x slowdown)",
    )
    parser.add_argument(
        "--faultsim-baseline",
        default=None,
        help="fault-sim baseline (BENCH_faultsim.json) to also guard, "
        "per word backend",
    )
    parser.add_argument(
        "--faultsim-min-ratio",
        type=float,
        default=0.5,
        help="minimum allowed baseline/current fault-sim time geomean per "
        "backend (default: %(default)s, i.e. fail on a >2x slowdown)",
    )
    parser.add_argument(
        "--service-baseline",
        default=None,
        help="service baseline (BENCH_service.json) whose keep-alive-vs-"
        "close speedup rows to also guard",
    )
    parser.add_argument(
        "--service-min-ratio",
        type=float,
        default=0.4,
        help="minimum allowed current/baseline keep-alive speedup geomean "
        "(default: %(default)s; sub-millisecond loopback series are noisy, "
        "and keep-alive slower than close fails regardless)",
    )
    args = parser.parse_args(argv)
    status = 0
    if not args.skip_throughput:
        status = run_guard(args.baseline, args.min_ratio)
    if args.guidance_baseline is not None:
        guidance_status = run_guidance_guard(
            args.guidance_baseline, args.guidance_max_ratio
        )
        status = status or guidance_status
    if args.equiv_baseline is not None:
        equiv_status = run_equiv_guard(args.equiv_baseline, args.equiv_min_ratio)
        status = status or equiv_status
    if args.faultsim_baseline is not None:
        faultsim_status = run_faultsim_guard(
            args.faultsim_baseline, args.faultsim_min_ratio
        )
        status = status or faultsim_status
    if args.service_baseline is not None:
        service_status = run_service_guard(
            args.service_baseline, args.service_min_ratio
        )
        status = status or service_status
    return status


if __name__ == "__main__":
    raise SystemExit(main())
