"""Fig. 3: functional synchronizing sequences under a forward stem move.

Regenerates Observation 1 / Example 1 (the <11> sequence synchronizes L1
but not L2) and Theorem 2 (any one-vector prefix repairs it), plus
Observation 3 / Example 3 (the output stuck-at-0 test that functional
reasoning validates on L1 fails on L2).
"""

import itertools

import pytest

from repro.circuit import LineRef
from repro.equivalence import (
    extract_stg,
    functional_final_states,
    is_functional_sync_sequence,
    is_structural_sync_sequence,
)
from repro.faults import StuckAtFault
from repro.papercircuits import fig3_pair


@pytest.mark.parametrize("engine", ["bitset", "reference"])
def test_fig3_observation1(benchmark, engine):
    l1, l2, _ = fig3_pair()

    def analyse():
        stg1 = extract_stg(l1, engine=engine, use_store=False)
        stg2 = extract_stg(l2, engine=engine, use_store=False)
        return (
            is_functional_sync_sequence(stg1, [(1, 1)], engine=engine),
            is_structural_sync_sequence(l1, [(1, 1)]),
            is_functional_sync_sequence(stg2, [(1, 1)], engine=engine),
        )

    functional_l1, structural_l1, functional_l2 = benchmark(analyse)
    assert functional_l1          # <11> synchronizes L1 ...
    assert not structural_l1      # ... but only functionally,
    assert not functional_l2      # and not the retimed L2 at all.


def test_fig3_theorem2_prefix(benchmark):
    _, l2, retiming = fig3_pair()
    assert retiming.max_forward_moves_across_stems() == 1
    stg2 = extract_stg(l2)

    def check_all_prefixes():
        results = []
        for prefix in itertools.product((0, 1), repeat=2):
            sequence = [prefix, (1, 1)]
            results.append(
                (
                    is_functional_sync_sequence(stg2, sequence),
                    functional_final_states(stg2, sequence),
                )
            )
        return results

    results = benchmark(check_all_prefixes)
    for synchronizes, final in results:
        assert synchronizes          # ANY one-vector prefix works
        assert final == frozenset({(1, 1)})


def test_fig3_observation3(benchmark):
    l1, l2, _ = fig3_pair()

    def analyse():
        fault1 = StuckAtFault(LineRef(l1.in_edges("Z")[0].index, 1), 0)
        fault2 = StuckAtFault(LineRef(l2.in_edges("Z")[0].index, 1), 0)
        good1, bad1 = extract_stg(l1), extract_stg(l1, fault=fault1)
        good2, bad2 = extract_stg(l2), extract_stg(l2, fault=fault2)
        return good1, bad1, good2, bad2

    good1, bad1, good2, bad2 = benchmark(analyse)
    # On L1 the functional test <11> separates good (always 1) from faulty
    # (always 0) ...
    assert all(good1.run(s, [(1, 1)])[1][0] == (1,) for s in good1.states)
    assert all(bad1.run(s, [(1, 1)])[1][0] == (0,) for s in bad1.states)
    # ... but on L2 the inconsistent state (0,1) already outputs 0 in the
    # fault-free circuit: not detected for that initial state.
    assert good2.run((0, 1), [(1, 1)])[1][0] == (0,)
