"""Fig. 1: the atomic retiming moves and their state-space effects.

Regenerates the figure's four situations (forward/backward across a
single-output gate and across a fanout stem) and checks the properties the
paper derives from them: register-count changes, reversibility, Lemma 1
for gate moves, and the containment asymmetry for stem moves.
"""

from repro.equivalence import extract_stg, space_contains, space_equivalent
from repro.papercircuits import fig1_gate_pair, fig1_stem_pair
from repro.retiming.moves import AtomicMove, apply_move


def test_fig1_gate_move(benchmark):
    def run():
        k1, k2, retiming = fig1_gate_pair()
        return k1, k2, retiming

    k1, k2, retiming = benchmark(run)
    assert k1.num_registers() == 2
    assert k2.num_registers() == 1
    assert retiming.inverse(k2).apply().weights() == k1.weights()
    # Lemma 1 on the atomic move.
    assert space_equivalent(extract_stg(k1), extract_stg(k2))


def test_fig1_stem_move(benchmark):
    def run():
        k1, k2, retiming = fig1_stem_pair()
        return k1, k2, retiming

    k1, k2, retiming = benchmark(run)
    assert k1.num_registers() == 1
    assert k2.num_registers() == 2
    stg1, stg2 = extract_stg(k1), extract_stg(k2)
    # Forward stem moves create inconsistent states: K' superset_s K but
    # not the converse.
    assert space_contains(stg2, stg1)
    assert not space_contains(stg1, stg2)


def test_fig1_move_sequences_compose(benchmark):
    def run():
        k1, _, _ = fig1_stem_pair()
        stem = k1.fanout_stems()[0].name
        forward = apply_move(k1, AtomicMove(stem, "forward"))
        back = apply_move(forward, AtomicMove(stem, "backward"))
        return k1, back

    k1, back = benchmark(run)
    assert back.weights() == k1.weights()
