"""Shared configuration for the benchmark harness.

Every module regenerates one of the paper's tables or figures.  Budgets
are sized so the default run finishes in minutes; set ``REPRO_FULL=1`` to
run the complete Table II/III circuit list with larger budgets (closer to
the paper's exhaustive runs, tens of minutes).
"""

import os

import pytest

from repro.atpg import AtpgBudget
from repro.core.experiments import TABLE2_CIRCUITS

FULL = bool(int(os.environ.get("REPRO_FULL", "0")))

# A paper-representative subset for the default run: both scripts, both
# reset styles, all three encodings, including the three forward-move
# circuits' family.
QUICK_SUBSET = tuple(
    spec
    for spec in TABLE2_CIRCUITS
    if spec.name
    in {
        "dk16.ji.sd",
        "pma.jo.sd",
        "s820.jc.sr",
        "s820.jo.sd",
        "s832.jc.sr",
        "s510.jo.sr",
    }
)


def table2_specs():
    return TABLE2_CIRCUITS if FULL else QUICK_SUBSET


def atpg_budget() -> AtpgBudget:
    if FULL:
        return AtpgBudget(
            total_seconds=240.0,
            seconds_per_fault=3.0,
            backtracks_per_fault=150,
            max_frames=8,
            random_sequences=64,
            random_length=96,
            random_stale_limit=15,
        )
    return AtpgBudget(
        total_seconds=45.0,
        seconds_per_fault=1.0,
        backtracks_per_fault=60,
        max_frames=8,
        random_sequences=48,
        random_length=96,
        random_stale_limit=12,
    )


@pytest.fixture(scope="session")
def budget():
    return atpg_budget()
