"""Fault-simulation performance harness.

Times the three fault-simulation engines -- scalar serial, interpreted
bit-parallel (``VectorSimulator``) and the code-generated bit-parallel
kernel (``VectorFastStepper``) -- on the paper's Table II circuit pairs,
sweeps the fault-group width on the largest circuit of the run, and
writes the results to ``BENCH_faultsim.json``.  The compiled kernel is
timed on **both word backends** (bigint reference and, when installed,
the numpy word-plane; see :mod:`repro.simulation.backends`), with a
bit-for-bit detection cross-check between them on every row.

Run from the repository root::

    PYTHONPATH=src python -m benchmarks.perf_faultsim --quick
    PYTHONPATH=src python -m benchmarks.perf_faultsim --full -o BENCH_faultsim.json

This module is *not* collected by pytest (``testpaths = ["tests"]``); it
is a standalone CLI so CI and local runs can track the kernel's speedup
trajectory over time.  Every row cross-checks the compiled kernel's
detection records against the serial reference, so a benchmark run is
also an end-to-end equivalence check.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import statistics
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.experiments import TABLE2_CIRCUITS, build_pair
from repro.faults.collapse import collapse_faults
from repro.faultsim import DEFAULT_GROUP_SIZE, parallel_fault_simulate
from repro.faultsim.serial import serial_fault_simulate
from repro.simulation import clear_compile_cache
from repro.simulation.backends import numpy_available

QUICK_NAMES = ("dk16.ji.sd", "s510.jo.sr", "s820.jo.sd")
GROUP_SIZES = (64, 256, 1024)


def _specs(full: bool):
    if full:
        return TABLE2_CIRCUITS
    return tuple(s for s in TABLE2_CIRCUITS if s.name in QUICK_NAMES)


def _random_sequences(
    circuit, seed: int, count: int, length: int
) -> List[List[Tuple[int, ...]]]:
    rng = random.Random(seed)
    num_inputs = len(circuit.input_names)
    return [
        [tuple(rng.randint(0, 1) for _ in range(num_inputs)) for _ in range(length)]
        for _ in range(count)
    ]


def _time(fn, repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_circuit(
    name: str,
    circuit,
    seed: int,
    count: int,
    length: int,
    repeats: int,
    serial_faults: int,
) -> Dict[str, object]:
    """One benchmark row: all engines on one circuit, same workload."""
    faults = collapse_faults(circuit).representatives
    sequences = _random_sequences(circuit, seed, count, length)

    # The bigint backend is the reference: always available, and the
    # compiled-vs-interpreted trend stays comparable across hosts with and
    # without the numpy extra.
    compiled_s, compiled = _time(
        lambda: parallel_fault_simulate(
            circuit, sequences, faults, kernel="compiled", backend="bigint"
        ),
        repeats,
    )
    interpreted_s, interpreted = _time(
        lambda: parallel_fault_simulate(
            circuit, sequences, faults, kernel="interpreted"
        ),
        repeats,
    )
    row: Dict[str, object] = {
        "circuit": name,
        "num_gates": circuit.num_gates(),
        "num_dffs": circuit.num_registers(),
        "num_faults": len(faults),
        "num_vectors": count * length,
        "detected": compiled.num_detected,
        "compiled_s": round(compiled_s, 4),
        "interpreted_s": round(interpreted_s, 4),
        "speedup_compiled_vs_interpreted": round(interpreted_s / compiled_s, 2),
        "kernels_agree": compiled.detections == interpreted.detections,
    }
    if numpy_available():
        numpy_s, numpy_result = _time(
            lambda: parallel_fault_simulate(
                circuit, sequences, faults, kernel="compiled", backend="numpy"
            ),
            repeats,
        )
        row["numpy_s"] = round(numpy_s, 4)
        row["speedup_numpy_vs_bigint"] = round(compiled_s / numpy_s, 2)
        row["backends_agree"] = (
            numpy_result.detections == compiled.detections
            and numpy_result.potential == compiled.potential
        )
    if serial_faults:
        # The scalar engine costs O(faults x vectors x circuit); timing the
        # full fault list would dominate the harness by minutes per row, so
        # it runs on a fault subsample and the speedup is per-fault
        # normalized.  The compiled kernel re-runs on the same subsample so
        # the bit-for-bit cross-check stays exact.
        sample = faults[:serial_faults]
        serial_s, serial = _time(
            lambda: serial_fault_simulate(circuit, sequences, sample), 1
        )
        compiled_sample_s, compiled_sample = _time(
            lambda: parallel_fault_simulate(circuit, sequences, sample), 1
        )
        row["serial_fault_sample"] = len(sample)
        row["serial_s"] = round(serial_s, 4)
        row["speedup_compiled_vs_serial"] = round(serial_s / compiled_sample_s, 2)
        row["serial_agrees"] = serial.detections == compiled_sample.detections
    return row


def sweep_group_size(
    circuit, seed: int, count: int, length: int, repeats: int
) -> List[Dict[str, object]]:
    """Compiled-kernel wall time as a function of fault-group width.

    Each width is timed per backend so the default-group-size choice can
    be read off for both word implementations (the numpy word-plane's
    dispatch floor is amortized by width; bigints are not).
    """
    faults = collapse_faults(circuit).representatives
    sequences = _random_sequences(circuit, seed, count, length)
    backends = ("bigint", "numpy") if numpy_available() else ("bigint",)
    rows = []
    for group_size in GROUP_SIZES:
        row: Dict[str, object] = {
            "group_size": group_size,
            "words_per_plane": (group_size + 63) >> 6,
        }
        detections = {}
        for backend in backends:
            elapsed, result = _time(
                lambda: parallel_fault_simulate(
                    circuit,
                    sequences,
                    faults,
                    group_size=group_size,
                    backend=backend,
                ),
                repeats,
            )
            row[f"{backend}_s"] = round(elapsed, 4)
            row["detected"] = result.num_detected
            detections[backend] = result.detections
        # Back-compat: "seconds" stays the reference-backend time.
        row["seconds"] = row["bigint_s"]
        if "numpy" in backends:
            row["speedup_numpy_vs_bigint"] = round(
                row["bigint_s"] / row["numpy_s"], 2
            )
            row["backends_agree"] = detections["numpy"] == detections["bigint"]
        rows.append(row)
    return rows


def run(args: argparse.Namespace) -> Dict[str, object]:
    from benchmarks.provenance import open_bench_journal, provenance_meta

    clear_compile_cache()
    journal = open_bench_journal("bench-faultsim")
    if journal is not None:
        journal.event("run_start", mode="full" if args.full else "quick")
    rows: List[Dict[str, object]] = []
    sweep_target = None
    for spec in _specs(args.full):
        pair = build_pair(spec)
        for suffix, circuit in (("", pair.original), (".re", pair.retimed)):
            name = spec.name + suffix
            print(f"  {name} ...", flush=True)
            row = bench_circuit(
                name,
                circuit,
                seed=args.seed,
                count=args.sequences,
                length=args.length,
                repeats=args.repeats,
                serial_faults=0 if args.no_serial else args.serial_faults,
            )
            rows.append(row)
            numpy_note = (
                f", numpy {row['numpy_s']}s ({row['speedup_numpy_vs_bigint']}x)"
                if "numpy_s" in row
                else ""
            )
            print(
                f"    compiled {row['compiled_s']}s, "
                f"interpreted {row['interpreted_s']}s "
                f"({row['speedup_compiled_vs_interpreted']}x)"
                f"{numpy_note}",
                flush=True,
            )
            if sweep_target is None or row["num_faults"] > sweep_target[1]:
                sweep_target = (name, row["num_faults"], circuit)

    sweep = {
        "circuit": sweep_target[0],
        "rows": sweep_group_size(
            sweep_target[2], args.seed, args.sequences, args.length, args.repeats
        ),
    }
    speedups = [row["speedup_compiled_vs_interpreted"] for row in rows]
    report = {
        "meta": {
            "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            "mode": "full" if args.full else "quick",
            "workload": {
                "sequences": args.sequences,
                "length": args.length,
                "seed": args.seed,
                "repeats": args.repeats,
            },
            "default_group_size": DEFAULT_GROUP_SIZE,
            **provenance_meta(journal, backend="auto"),
        },
        "circuits": rows,
        "group_size_sweep": sweep,
        "summary": {
            "min_speedup_compiled_vs_interpreted": min(speedups),
            "median_speedup_compiled_vs_interpreted": round(
                statistics.median(speedups), 2
            ),
            "max_speedup_compiled_vs_interpreted": max(speedups),
            "all_engines_agree": all(
                row["kernels_agree"]
                and row.get("serial_agrees", True)
                and row.get("backends_agree", True)
                for row in rows
            ),
        },
    }
    backend_speedups = [
        row["speedup_numpy_vs_bigint"]
        for row in rows
        if "speedup_numpy_vs_bigint" in row
    ]
    if backend_speedups:
        report["summary"]["geomean_speedup_numpy_vs_bigint"] = round(
            statistics.geometric_mean(backend_speedups), 2
        )
    if journal is not None:
        journal.close(ok=True)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="all sixteen Table II pairs (default: three-circuit quick set)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="three-circuit quick set (the default; kept for explicitness)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_faultsim.json",
        help="where to write the JSON report (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--sequences", type=int, default=8, help="random sequences per circuit"
    )
    parser.add_argument(
        "--length", type=int, default=48, help="vectors per sequence"
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="timing repeats (best-of)"
    )
    parser.add_argument(
        "--no-serial",
        action="store_true",
        help="skip the scalar serial engine (slowest by far)",
    )
    parser.add_argument(
        "--serial-faults",
        type=int,
        default=80,
        help="fault subsample for the serial engine (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.full and args.quick:
        parser.error("--quick and --full are mutually exclusive")

    print(f"fault-simulation benchmark ({'full' if args.full else 'quick'} mode)")
    report = run(args)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    summary = report["summary"]
    print(
        f"speedup compiled vs interpreted: "
        f"min {summary['min_speedup_compiled_vs_interpreted']}x / "
        f"median {summary['median_speedup_compiled_vs_interpreted']}x / "
        f"max {summary['max_speedup_compiled_vs_interpreted']}x"
    )
    if "geomean_speedup_numpy_vs_bigint" in summary:
        print(
            f"speedup numpy vs bigint (geomean): "
            f"{summary['geomean_speedup_numpy_vs_bigint']}x"
        )
    print(f"all engines agree: {summary['all_engines_agree']}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
