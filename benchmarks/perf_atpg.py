"""ATPG orchestration and kernel performance harness.

Times the deterministic PODEM phase of :func:`repro.atpg.run_atpg` three
ways on the paper's Table II circuit pairs:

* serial engine, **scalar** kernel (the tuple-of-Trit baseline);
* serial engine, **dual** kernel (the bit-packed dual-machine kernel);
* multiprocess engine (``engine="process"``), dual kernel;

cross-checks that every run produces **identical** fault coverage, fault
efficiency, detected/aborted partitions and bit-identical test-set vectors,
and writes the results to ``BENCH_atpg.json``.  ``kernel_speedup`` is the
scalar/dual deterministic-phase ratio; the kernel's effort counters
(simulation calls, frames simulated, lanes evaluated) and the derived
``dual_frames_per_sec`` throughput feed the CI perf guard
(``benchmarks/perf_guard.py``).  Each row also records which engine the
adaptive selector (:func:`repro.atpg.engine.choose_engine`) would pick on
this host, and why.

On top of the unguided runs, each row measures the **guidance layer**
(:mod:`repro.atpg.guidance`): a SCOAP-guided serial run, a SCOAP-guided
process run (asserted bit-identical to the guided serial run -- the
policy is deterministic, so the pool must not change the answer), and a
learned-mode run whose predictor is self-trained from the unguided run's
own per-fault effort rows.  The guided comparison metric is the
**machine-independent deterministic-phase effort** -- backtracks plus
frames simulated, summed over the per-fault effort rows -- and the
summary records its geomean guided/unguided ratio per mode
(``geomean_effort_ratio_scoap`` / ``_learned``), which the perf guard
re-derives and bounds on every CI leg, numpy or not.  Guided runs must
also never detect fewer faults than the unguided run on any row
(``guided_coverage_not_worse``).

Run from the repository root::

    PYTHONPATH=src python -m benchmarks.perf_atpg --quick --workers 2
    PYTHONPATH=src python -m benchmarks.perf_atpg --full --workers 4 -o BENCH_atpg.json

This module is *not* collected by pytest (``testpaths = ["tests"]``); it is
a standalone CLI so CI and local runs can track the orchestration layer's
speedup trajectory.  Because every row asserts serial/process agreement, a
benchmark run is also an end-to-end determinism check of the pool.

The deterministic phase is pure CPU-bound Python search, so the wall-clock
speedup at N workers tracks the machine's usable core count; ``meta.cpus``
records it alongside the numbers (a single-core container cannot show a
parallel speedup no matter the pool size -- the pool's scaling must be read
against the cores actually available).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import time
from typing import Dict, List, Optional, Sequence

from repro.atpg import AtpgBudget, policy_from_effort_rows, run_atpg
from repro.atpg.engine import choose_engine
from repro.core.experiments import TABLE2_CIRCUITS, build_pair
from repro.faults.collapse import collapse_faults
from repro.simulation import clear_compile_cache

QUICK_NAMES = ("dk16.ji.sd", "s510.jo.sr", "s820.jo.sd")


def det_effort(result) -> int:
    """Deterministic-phase effort: backtracks + frames simulated, summed
    over the run's per-fault effort rows.  Pure search-work counters, so
    the number is identical on any machine/backend for a given seed
    whenever the wall-clock caps do not bind."""
    return sum(
        row.backtracks + row.frames_simulated for row in result.fault_rows
    )


def _specs(full: bool):
    if full:
        return TABLE2_CIRCUITS
    return tuple(s for s in TABLE2_CIRCUITS if s.name in QUICK_NAMES)


def _budget(args: argparse.Namespace) -> AtpgBudget:
    """A bench budget whose *deterministic* limits (backtracks, frames) are
    the binding ones: the wall-clock caps are deliberately generous so the
    serial and process engines abort exactly the same faults and the
    agreement checks can demand bit-for-bit identity."""
    return AtpgBudget(
        total_seconds=float(args.total_seconds),
        seconds_per_fault=5.0,
        backtracks_per_fault=args.backtracks,
        frames_cap=args.frames_cap,
        random_sequences=args.random_sequences,
        random_length=24,
    )


def bench_circuit(
    name: str,
    circuit,
    budget: AtpgBudget,
    workers: int,
    max_faults: int,
) -> Dict[str, object]:
    """One benchmark row: scalar vs dual kernel, serial vs process pool."""
    faults = collapse_faults(circuit).representatives
    if max_faults and len(faults) > max_faults:
        faults = faults[:max_faults]
    scalar = run_atpg(
        circuit, faults=faults, budget=budget, engine="serial", kernel="scalar"
    )
    serial = run_atpg(
        circuit, faults=faults, budget=budget, engine="serial", kernel="dual"
    )
    pooled = run_atpg(
        circuit, faults=faults, budget=budget, engine="process", workers=workers
    )
    runs = (scalar, serial, pooled)
    agree = all(
        other.detected == serial.detected
        and other.aborted == serial.aborted
        and other.untestable == serial.untestable
        and other.fault_coverage == serial.fault_coverage
        and other.fault_efficiency == serial.fault_efficiency
        for other in runs
    )
    sequences_identical = all(
        other.test_set.as_lists() == serial.test_set.as_lists()
        for other in runs
    )
    det_scalar = max(scalar.deterministic_seconds, 1e-9)
    det_serial = max(serial.deterministic_seconds, 1e-9)
    det_pooled = max(pooled.deterministic_seconds, 1e-9)
    engine_selected, engine_reason = choose_engine(len(faults), workers)

    # Guided series: SCOAP serial, SCOAP pooled (parity check), learned
    # self-trained from the unguided run's own effort telemetry.
    scoap_serial = run_atpg(
        circuit,
        faults=faults,
        budget=budget,
        engine="serial",
        kernel="dual",
        guidance="scoap",
    )
    scoap_pooled = run_atpg(
        circuit,
        faults=faults,
        budget=budget,
        engine="process",
        workers=workers,
        guidance="scoap",
    )
    learned = run_atpg(
        circuit,
        faults=faults,
        budget=budget,
        engine="serial",
        kernel="dual",
        guidance=policy_from_effort_rows(circuit, serial.fault_rows),
    )
    guided_parity = (
        scoap_serial.detected == scoap_pooled.detected
        and scoap_serial.aborted == scoap_pooled.aborted
        and scoap_serial.test_set.as_lists() == scoap_pooled.test_set.as_lists()
    )
    effort_off = max(det_effort(serial), 1)
    effort_scoap = det_effort(scoap_serial)
    effort_learned = det_effort(learned)
    guided_coverage_ok = (
        len(scoap_serial.detected) >= len(serial.detected)
        and len(learned.detected) >= len(serial.detected)
    )
    return {
        "circuit": name,
        "num_gates": circuit.num_gates(),
        "num_dffs": circuit.num_registers(),
        "num_faults": len(faults),
        "fault_coverage": round(serial.fault_coverage, 2),
        "fault_efficiency": round(serial.fault_efficiency, 2),
        "aborted": len(serial.aborted),
        "backtracks": serial.backtracks,
        "random_s": round(serial.random_seconds, 4),
        "det_scalar_s": round(det_scalar, 4),
        "det_serial_s": round(det_serial, 4),
        "det_process_s": round(det_pooled, 4),
        "kernel_speedup": round(det_scalar / det_serial, 2),
        "det_speedup": round(det_serial / det_pooled, 2),
        "total_serial_s": round(serial.cpu_seconds, 4),
        "total_process_s": round(pooled.cpu_seconds, 4),
        "simulations": serial.simulations,
        "frames_simulated": serial.frames_simulated,
        "lanes_evaluated": serial.lanes_evaluated,
        "dual_frames_per_sec": round(serial.frames_simulated / det_serial, 1),
        "engine_selected": engine_selected,
        "engine_reason": engine_reason,
        "engines_agree": agree and sequences_identical,
        "sequences_identical": sequences_identical,
        "det_effort_off": effort_off,
        "det_effort_scoap": effort_scoap,
        "det_effort_learned": effort_learned,
        "effort_ratio_scoap": round(effort_scoap / effort_off, 3),
        "effort_ratio_learned": round(effort_learned / effort_off, 3),
        "fault_coverage_scoap": round(scoap_serial.fault_coverage, 2),
        "fault_coverage_learned": round(learned.fault_coverage, 2),
        "objective_choices_scoap": scoap_serial.objective_choices,
        "guided_parity": guided_parity,
        "guided_coverage_ok": guided_coverage_ok,
    }


def run(args: argparse.Namespace) -> Dict[str, object]:
    from benchmarks.provenance import open_bench_journal, provenance_meta

    clear_compile_cache()
    journal = open_bench_journal("bench-atpg")
    if journal is not None:
        journal.event("run_start", mode="full" if args.full else "quick")
    budget = _budget(args)
    rows: List[Dict[str, object]] = []
    for spec in _specs(args.full):
        pair = build_pair(spec)
        for suffix, circuit in (("", pair.original), (".re", pair.retimed)):
            name = spec.name + suffix
            print(f"  {name} ...", flush=True)
            row = bench_circuit(name, circuit, budget, args.workers, args.max_faults)
            rows.append(row)
            print(
                f"    det scalar {row['det_scalar_s']}s, "
                f"dual {row['det_serial_s']}s ({row['kernel_speedup']}x), "
                f"process[{args.workers}] {row['det_process_s']}s "
                f"({row['det_speedup']}x), agree={row['engines_agree']}",
                flush=True,
            )
            print(
                f"    guided effort {row['det_effort_off']} -> "
                f"scoap {row['det_effort_scoap']} "
                f"({row['effort_ratio_scoap']}), "
                f"learned {row['det_effort_learned']} "
                f"({row['effort_ratio_learned']}), "
                f"parity={row['guided_parity']}",
                flush=True,
            )
    speedups = [row["det_speedup"] for row in rows]
    kernel_speedups = [row["kernel_speedup"] for row in rows]
    geomean_kernel = statistics.geometric_mean(kernel_speedups)
    geomean_scoap = statistics.geometric_mean(
        [row["effort_ratio_scoap"] for row in rows]
    )
    geomean_learned = statistics.geometric_mean(
        [row["effort_ratio_learned"] for row in rows]
    )
    report = {
        "meta": {
            "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "mode": "full" if args.full else "quick",
            "workers": args.workers,
            "budget": {
                "backtracks_per_fault": budget.backtracks_per_fault,
                "frames_cap": budget.frames_cap,
                "random_sequences": budget.random_sequences,
                "total_seconds": budget.total_seconds,
                "seed": budget.seed,
            },
            "max_faults_per_circuit": args.max_faults,
            **provenance_meta(journal),
        },
        "circuits": rows,
        "summary": {
            "min_det_speedup": min(speedups),
            "median_det_speedup": round(statistics.median(speedups), 2),
            "max_det_speedup": max(speedups),
            "min_kernel_speedup": min(kernel_speedups),
            "geomean_kernel_speedup": round(geomean_kernel, 2),
            "max_kernel_speedup": max(kernel_speedups),
            "all_engines_agree": all(row["engines_agree"] for row in rows),
            "all_sequences_identical": all(
                row["sequences_identical"] for row in rows
            ),
            "geomean_effort_ratio_scoap": round(geomean_scoap, 3),
            "geomean_effort_ratio_learned": round(geomean_learned, 3),
            "all_guided_parity": all(row["guided_parity"] for row in rows),
            "guided_coverage_not_worse": all(
                row["guided_coverage_ok"] for row in rows
            ),
        },
    }
    if journal is not None:
        journal.close(ok=True)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="all sixteen Table II pairs (default: three-circuit quick set)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="three-circuit quick set (the default; kept for explicitness)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_atpg.json",
        help="where to write the JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="process-pool width (default: 4)"
    )
    parser.add_argument(
        "--backtracks",
        type=int,
        default=12,
        help="PODEM backtrack limit per fault per depth level (default: 12)",
    )
    parser.add_argument(
        "--frames-cap",
        type=int,
        default=8,
        help="time-frame unroll cap (default: 8)",
    )
    parser.add_argument(
        "--random-sequences",
        type=int,
        default=8,
        help="random-phase sequence budget (default: 8 -- most faults reach PODEM)",
    )
    parser.add_argument(
        "--max-faults",
        type=int,
        default=220,
        help="cap the collapsed fault list per circuit, 0 = all (default: 220)",
    )
    parser.add_argument(
        "--total-seconds",
        type=float,
        default=1800.0,
        help="wall budget per run; generous so it never binds (default: 1800)",
    )
    args = parser.parse_args(argv)
    if args.full and args.quick:
        parser.error("--quick and --full are mutually exclusive")

    print(
        f"ATPG orchestration benchmark ({'full' if args.full else 'quick'} mode, "
        f"{args.workers} workers, {os.cpu_count()} cpus)"
    )
    report = run(args)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    summary = report["summary"]
    print(
        f"kernel speedup scalar -> dual (serial det phase): "
        f"min {summary['min_kernel_speedup']}x / "
        f"geomean {summary['geomean_kernel_speedup']}x / "
        f"max {summary['max_kernel_speedup']}x"
    )
    print(
        f"deterministic-phase speedup serial -> process[{args.workers}]: "
        f"min {summary['min_det_speedup']}x / "
        f"median {summary['median_det_speedup']}x / "
        f"max {summary['max_det_speedup']}x"
    )
    print(f"engines agree: {summary['all_engines_agree']}")
    print(
        f"guided effort ratio (guided/unguided, lower is better): "
        f"scoap {summary['geomean_effort_ratio_scoap']} / "
        f"learned {summary['geomean_effort_ratio_learned']}"
    )
    print(
        f"guided parity: {summary['all_guided_parity']}, "
        f"coverage not worse: {summary['guided_coverage_not_worse']}"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
