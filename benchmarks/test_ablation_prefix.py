"""Ablation: prefix-length sensitivity (Theorem 4's |P|).

The paper proves |P| = max forward moves is sufficient and shows (Obs. 2-4)
that 0 is not.  This ablation sweeps prefix lengths 0, required, required+2
on the Fig. 5 pair and on a benchmark circuit with a forward stem move,
confirming:

* length 0 loses the forward-affected faults;
* the required length recovers them;
* extra arbitrary vectors never hurt.
"""

import pytest

from repro.atpg import run_atpg
from repro.core import build_pair
from repro.core.experiments import CircuitSpec
from repro.faults import collapse_faults
from repro.faultsim import fault_simulate
from repro.papercircuits import EXAMPLE4_TEST, fig5_pair, n2_g1_q12_fault
from repro.retiming import arbitrary_prefix
from repro.testset import TestSet


def _coverage_with_prefix(circuit, test_set, length):
    prefixed = (
        test_set
        if length == 0
        else test_set.with_prefix(arbitrary_prefix(test_set.num_inputs, length))
    )
    faults = collapse_faults(circuit).representatives
    return fault_simulate(circuit, prefixed.as_lists(), faults)


def test_prefix_sweep_fig5(benchmark):
    _, n2, retiming = fig5_pair()
    required = retiming.max_forward_moves()
    assert required == 1
    test_set = TestSet.from_lists("n1", 3, [EXAMPLE4_TEST])
    target = n2_g1_q12_fault(n2)

    def sweep():
        results = {}
        for length in (0, required, required + 2):
            prefixed = (
                test_set
                if length == 0
                else test_set.with_prefix(arbitrary_prefix(3, length))
            )
            sim = fault_simulate(n2, prefixed.as_lists(), [target])
            results[length] = sim.num_detected
        return results

    results = benchmark(sweep)
    assert results[0] == 0           # no prefix: the fault escapes
    assert results[required] == 1    # the theorem's length recovers it
    assert results[required + 2] == 1  # longer prefixes stay sufficient


def test_prefix_sweep_benchmark_circuit(benchmark, budget):
    """On pma.jo.sd (one forward stem move), coverage with the required
    prefix never drops below the unprefixed coverage."""
    pair = build_pair(CircuitSpec("pma", "jo", "delay", 1))
    assert pair.prefix_length == 1
    atpg = run_atpg(pair.original, budget=budget)
    test_set = atpg.test_set

    def sweep():
        return {
            length: _coverage_with_prefix(pair.retimed, test_set, length)
            for length in (0, 1, 3)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for length, sim in sorted(results.items()):
        print(f"  prefix {length}: {sim.fault_coverage:.2f}% FC on {pair.retimed.name}")
    assert results[1].fault_coverage >= results[0].fault_coverage - 1e-9
    assert results[3].fault_coverage >= results[1].fault_coverage - 1.0
