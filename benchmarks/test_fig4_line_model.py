"""Fig. 4: the line model of a weighted edge and fault correspondence.

An edge of weight n consists of n+1 lines; retiming changes edge weights,
growing/shrinking the fault universe, with every retimed fault owning at
least one corresponding original fault (Section IV-B).  Regenerated over
the whole benchmark circuit family.
"""

import pytest

from benchmarks.conftest import table2_specs
from repro.core import build_pair
from repro.faults import FaultCorrespondence, full_fault_universe


@pytest.mark.parametrize("spec", table2_specs()[:3], ids=lambda s: s.name)
def test_fig4_line_arithmetic(benchmark, spec):
    pair = build_pair(spec)

    def analyse():
        universe_original = full_fault_universe(pair.original)
        universe_retimed = full_fault_universe(pair.retimed)
        correspondence = FaultCorrespondence(pair.original, pair.retimed)
        return universe_original, universe_retimed, correspondence

    universe_original, universe_retimed, correspondence = benchmark(analyse)

    # #lines = #edges + #registers; two faults per line.
    for circuit, universe in [
        (pair.original, universe_original),
        (pair.retimed, universe_retimed),
    ]:
        assert len(universe) == 2 * (len(circuit.edges) + circuit.num_registers())

    # The retimed circuit gained registers => gained faults.
    gained_registers = pair.retimed.num_registers() - pair.original.num_registers()
    assert len(universe_retimed) - len(universe_original) == 2 * gained_registers

    # Every retimed fault has at least one corresponding original fault,
    # and unchanged edges map one-to-one.
    for fault in universe_retimed[:: max(1, len(universe_retimed) // 200)]:
        corresponding = correspondence.originals_of(fault)
        assert corresponding
        if correspondence.is_one_to_one(fault):
            assert corresponding == [fault]
