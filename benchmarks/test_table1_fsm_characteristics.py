"""Table I: characteristics of the finite-state machines.

Regenerates the paper's Table I (PI / PO / state counts of the six MCNC
benchmark machines) from the benchmark generator and checks the numbers
match the paper exactly.
"""

from repro.core import format_table
from repro.fsm import TABLE1_PROFILES, mcnc_fsm, table1

PAPER_TABLE1 = {
    "dk16": (3, 3, 27),
    "pma": (9, 8, 24),
    "s510": (20, 7, 47),
    "s820": (18, 19, 25),
    "s832": (18, 19, 25),
    "scf": (27, 54, 121),
}


def test_table1_regeneration(benchmark):
    rows = benchmark(table1)
    print()
    print(format_table(rows, ["FSM", "PI", "PO", "States"]))
    for row in rows:
        expected = PAPER_TABLE1[row["FSM"]]
        assert (row["PI"], row["PO"], row["States"]) == expected


def test_machines_are_well_formed(benchmark):
    def build_all():
        return [mcnc_fsm(name) for name in TABLE1_PROFILES]

    machines = benchmark(build_all)
    for fsm in machines:
        assert fsm.is_deterministic()
        assert fsm.reachable_states() == set(fsm.states)
