"""Signal-level construction of circuit graphs.

Users describe circuits the way netlists are written -- named signals,
gates over signals, D flip-flops between signals -- and the builder compiles
that description into the paper's graph model:

* every D flip-flop becomes one unit of weight on the appropriate edge;
* every signal consumed by more than one sink gets an explicit fanout stem
  vertex, with registers distributed onto the correct side of each branch
  point (a register *before* a fanout point is shared; registers *after* it
  are per-branch).

Example::

    builder = CircuitBuilder("c1")
    builder.input("a")
    builder.input("b")
    builder.gate("g1", GateType.AND, ["a", "q"])
    builder.dff("q", "g1")          # q is the flip-flop output
    builder.output("z", "g1")
    circuit = builder.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit, CircuitError, Edge, Node
from repro.circuit.types import GateType, NodeKind


@dataclass
class _SignalDef:
    """How a signal is produced."""

    name: str
    kind: str  # "input" | "gate" | "dff" | "const0" | "const1"
    gate_type: Optional[GateType] = None
    operands: List[str] = field(default_factory=list)


@dataclass
class _Forest:
    """Consumers of one signal: direct terminals plus register subtrees.

    Each child is ``(dff_name, subforest)``: the flip-flop whose output
    feeds the subforest's consumers.
    """

    terminals: List[Tuple[str, int]] = field(default_factory=list)
    children: List[Tuple[str, "_Forest"]] = field(default_factory=list)

    def sink_count(self) -> int:
        return len(self.terminals) + sum(c.sink_count() for _, c in self.children)


class CircuitBuilder:
    """Accumulates a signal-level description and compiles a :class:`Circuit`."""

    def __init__(self, name: str):
        self.name = name
        self._signals: Dict[str, _SignalDef] = {}
        self._outputs: List[Tuple[str, str]] = []  # (po name, signal)
        self._order: List[str] = []

    # -- declaration API ----------------------------------------------------

    def input(self, name: str) -> str:
        """Declare a primary input signal."""
        self._define(_SignalDef(name, "input"))
        return name

    def gate(self, name: str, gate_type: GateType, operands: Sequence[str]) -> str:
        """Declare a gate whose output signal is ``name``."""
        operands = list(operands)
        if not gate_type.min_arity <= len(operands) <= gate_type.max_arity:
            raise CircuitError(
                f"gate {name!r}: {gate_type.value} cannot take {len(operands)} inputs"
            )
        self._define(_SignalDef(name, "gate", gate_type, operands))
        return name

    def dff(self, name: str, data: str) -> str:
        """Declare a D flip-flop: signal ``name`` is ``data`` delayed one cycle."""
        self._define(_SignalDef(name, "dff", operands=[data]))
        return name

    def const0(self, name: str) -> str:
        """Declare a constant-0 signal."""
        self._define(_SignalDef(name, "const0"))
        return name

    def const1(self, name: str) -> str:
        """Declare a constant-1 signal."""
        self._define(_SignalDef(name, "const1"))
        return name

    def output(self, name: str, signal: str) -> None:
        """Declare a primary output observing ``signal``."""
        if name in self._signals or any(name == po for po, _ in self._outputs):
            raise CircuitError(f"duplicate name {name!r}")
        self._outputs.append((name, signal))

    # convenience single-gate wrappers -------------------------------------

    def and_(self, name: str, *operands: str) -> str:
        return self.gate(name, GateType.AND, operands)

    def or_(self, name: str, *operands: str) -> str:
        return self.gate(name, GateType.OR, operands)

    def nand(self, name: str, *operands: str) -> str:
        return self.gate(name, GateType.NAND, operands)

    def nor(self, name: str, *operands: str) -> str:
        return self.gate(name, GateType.NOR, operands)

    def xor(self, name: str, *operands: str) -> str:
        return self.gate(name, GateType.XOR, operands)

    def xnor(self, name: str, *operands: str) -> str:
        return self.gate(name, GateType.XNOR, operands)

    def not_(self, name: str, operand: str) -> str:
        return self.gate(name, GateType.NOT, [operand])

    def buf(self, name: str, operand: str) -> str:
        return self.gate(name, GateType.BUF, [operand])

    # -- compilation ----------------------------------------------------------

    def build(self, allow_dangling: bool = False) -> Circuit:
        """Compile the accumulated description into a :class:`Circuit`.

        Raises :class:`CircuitError` for undefined signals, dangling logic
        (unless ``allow_dangling``), or structural violations.
        """
        self._check_references()
        nodes: Dict[str, Node] = {}
        consumers: Dict[str, List[Tuple[str, int]]] = {s: [] for s in self._signals}
        dff_readers: Dict[str, List[str]] = {s: [] for s in self._signals}

        for signal in self._order:
            definition = self._signals[signal]
            if definition.kind == "input":
                nodes[signal] = Node(signal, NodeKind.INPUT)
            elif definition.kind == "gate":
                nodes[signal] = Node(signal, NodeKind.GATE, definition.gate_type)
                for pin, operand in enumerate(definition.operands):
                    consumers[operand].append((signal, pin))
            elif definition.kind == "dff":
                dff_readers[definition.operands[0]].append(signal)
            elif definition.kind == "const0":
                nodes[signal] = Node(signal, NodeKind.CONST0)
            elif definition.kind == "const1":
                nodes[signal] = Node(signal, NodeKind.CONST1)

        for po_name, signal in self._outputs:
            nodes[po_name] = Node(po_name, NodeKind.OUTPUT)
            consumers[signal].append((po_name, 0))

        edges: List[Edge] = []
        stem_counter = [0]
        register_names: Dict[Tuple[int, int], str] = {}

        def forest_of(signal: str) -> _Forest:
            forest = _Forest(terminals=list(consumers[signal]))
            for dff_out in dff_readers[signal]:
                forest.children.append((dff_out, forest_of(dff_out)))
            return forest

        def new_stem(base: str) -> str:
            stem_counter[0] += 1
            name = f"{base}#fo{stem_counter[0]}"
            while name in nodes:
                stem_counter[0] += 1
                name = f"{base}#fo{stem_counter[0]}"
            nodes[name] = Node(name, NodeKind.FANOUT)
            return name

        def note_registers(edge_index: int, chain: List[str]) -> None:
            for position, dff_name in enumerate(chain, start=1):
                register_names[(edge_index, position)] = dff_name

        def emit(source: str, forest: _Forest, chain: List[str]) -> None:
            sinks = forest.sink_count()
            if sinks == 0:
                return
            if sinks == 1:
                if forest.terminals:
                    sink, pin = forest.terminals[0]
                    edges.append(Edge(len(edges), source, sink, pin, len(chain)))
                    note_registers(edges[-1].index, chain)
                else:
                    dff_name, only_child = next(
                        (n, c) for n, c in forest.children if c.sink_count()
                    )
                    emit(source, only_child, chain + [dff_name])
                return
            # Collapse pure register chains before the first real branch point.
            if not forest.terminals:
                live = [(n, c) for n, c in forest.children if c.sink_count()]
                if len(live) == 1:
                    emit(source, live[0][1], chain + [live[0][0]])
                    return
            stem = new_stem(source)
            edges.append(Edge(len(edges), source, stem, 0, len(chain)))
            note_registers(edges[-1].index, chain)
            for sink, pin in forest.terminals:
                edges.append(Edge(len(edges), stem, sink, pin, 0))
            for dff_name, child in forest.children:
                if child.sink_count():
                    emit(stem, child, [dff_name])

        for signal in self._order:
            if self._signals[signal].kind == "dff":
                continue  # covered by its driver's forest
            forest = forest_of(signal)
            if forest.sink_count() == 0:
                # Unused primary inputs are tolerated (benchmark netlists
                # contain them); dangling logic is an error unless allowed.
                if self._signals[signal].kind == "input" or allow_dangling:
                    continue
                raise CircuitError(f"signal {signal!r} drives nothing")
            emit(signal, forest, [])

        if not allow_dangling:
            self._check_dangling_dffs()
        circuit = Circuit(self.name, nodes, edges)
        circuit.topo_order()  # fail fast on combinational cycles
        # Record which declared flip-flop each register instance realizes:
        # RegisterRef(edge, position) -> dff signal name.  Exposed both on
        # the builder and (as plain metadata) on the circuit.
        from repro.circuit.netlist import RegisterRef

        self.register_names = {
            RegisterRef(edge_index, position): name
            for (edge_index, position), name in register_names.items()
        }
        circuit.register_names = dict(self.register_names)
        return circuit

    # -- internal -------------------------------------------------------------

    def _define(self, definition: _SignalDef) -> None:
        if definition.name in self._signals:
            raise CircuitError(f"duplicate signal {definition.name!r}")
        if "#" in definition.name:
            raise CircuitError(f"signal names may not contain '#': {definition.name!r}")
        self._signals[definition.name] = definition
        self._order.append(definition.name)

    def _check_references(self) -> None:
        for definition in self._signals.values():
            for operand in definition.operands:
                if operand not in self._signals:
                    raise CircuitError(
                        f"{definition.name!r} references undefined signal {operand!r}"
                    )
        for po_name, signal in self._outputs:
            if signal not in self._signals:
                raise CircuitError(
                    f"output {po_name!r} references undefined signal {signal!r}"
                )
        if not self._outputs:
            raise CircuitError("circuit has no primary outputs")

    def _check_dangling_dffs(self) -> None:
        used = set()
        for definition in self._signals.values():
            used.update(definition.operands)
        used.update(signal for _, signal in self._outputs)
        for definition in self._signals.values():
            if definition.kind == "dff" and definition.name not in used:
                raise CircuitError(f"flip-flop {definition.name!r} drives nothing")


__all__ = ["CircuitBuilder"]
