"""Node and gate type vocabulary for the circuit graph model.

The paper (Section III) models a synchronous sequential circuit as a finite
edge-weighted directed graph ``G = (V, E, W)`` whose vertices are I/O pins,
single-output combinational gates and fanout stems, and whose edge weights
count the D flip-flops along each interconnection.  This module defines the
vertex kinds and the combinational gate functions over both the scalar
three-valued algebra and the bit-parallel encoding.
"""

from __future__ import annotations

import enum
from typing import Callable, Sequence

from repro.logic.bitparallel import BitVec
from repro.logic.three_valued import (
    ONE,
    Trit,
    ZERO,
    t_and,
    t_nand,
    t_nor,
    t_not,
    t_or,
    t_xnor,
    t_xor,
)


class NodeKind(enum.Enum):
    """Kind of a vertex in the circuit graph."""

    INPUT = "input"
    OUTPUT = "output"
    GATE = "gate"
    FANOUT = "fanout"
    CONST0 = "const0"
    CONST1 = "const1"


class GateType(enum.Enum):
    """Single-output combinational gate functions."""

    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    NOT = "not"
    BUF = "buf"

    @property
    def min_arity(self) -> int:
        return 1

    @property
    def max_arity(self) -> int:
        if self in (GateType.NOT, GateType.BUF):
            return 1
        return 64

    @property
    def inverting(self) -> bool:
        """True for gates whose output is an inversion of the base function."""
        return self in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT)

    @property
    def controlling_value(self):
        """The input value that determines the output alone, or ``None``.

        For AND/NAND it is 0; for OR/NOR it is 1; XOR-family and unary gates
        have no controlling value.
        """
        if self in (GateType.AND, GateType.NAND):
            return ZERO
        if self in (GateType.OR, GateType.NOR):
            return ONE
        return None

    @property
    def controlled_response(self):
        """Output produced when some input carries the controlling value."""
        if self is GateType.AND:
            return ZERO
        if self is GateType.NAND:
            return ONE
        if self is GateType.OR:
            return ONE
        if self is GateType.NOR:
            return ZERO
        return None


_SCALAR_EVAL: dict = {
    GateType.AND: t_and,
    GateType.OR: t_or,
    GateType.NAND: t_nand,
    GateType.NOR: t_nor,
    GateType.XOR: t_xor,
    GateType.XNOR: t_xnor,
    GateType.NOT: lambda a: t_not(a),
    GateType.BUF: lambda a: a,
}


def eval_gate(gate_type: GateType, inputs: Sequence[Trit]) -> Trit:
    """Evaluate a gate over scalar three-valued inputs."""
    return _SCALAR_EVAL[gate_type](*inputs)


def _bv_and(inputs: Sequence[BitVec]) -> BitVec:
    result = inputs[0]
    for value in inputs[1:]:
        result = result & value
    return result


def _bv_or(inputs: Sequence[BitVec]) -> BitVec:
    result = inputs[0]
    for value in inputs[1:]:
        result = result | value
    return result


def _bv_xor(inputs: Sequence[BitVec]) -> BitVec:
    result = inputs[0]
    for value in inputs[1:]:
        result = result ^ value
    return result


_VECTOR_EVAL: dict = {
    GateType.AND: _bv_and,
    GateType.OR: _bv_or,
    GateType.NAND: lambda inputs: ~_bv_and(inputs),
    GateType.NOR: lambda inputs: ~_bv_or(inputs),
    GateType.XOR: _bv_xor,
    GateType.XNOR: lambda inputs: ~_bv_xor(inputs),
    GateType.NOT: lambda inputs: ~inputs[0],
    GateType.BUF: lambda inputs: inputs[0],
}


def eval_gate_vector(gate_type: GateType, inputs: Sequence[BitVec]) -> BitVec:
    """Evaluate a gate over bit-parallel dual-rail inputs."""
    return _VECTOR_EVAL[gate_type](inputs)


def gate_delay(gate_type: GateType, arity: int) -> int:
    """Delay model from the paper's Fig. 2 example.

    The paper assumes "the delay of a combinational gate is related to the
    number of its inputs"; we take delay = arity for multi-input gates and 1
    for inverters/buffers.
    """
    if gate_type in (GateType.NOT, GateType.BUF):
        return 1
    return arity


EvalFn = Callable[[Sequence[Trit]], Trit]

__all__ = [
    "NodeKind",
    "GateType",
    "eval_gate",
    "eval_gate_vector",
    "gate_delay",
]
