"""Structural validation of circuit graphs.

Checks the invariants of the paper's graph model:

* primary inputs, gates and constants have exactly one output edge
  (all sharing goes through explicit fanout stems);
* fanout stems have exactly one input edge and at least two output edges;
* primary outputs have exactly one input edge and none out;
* gate arities are legal for their gate types;
* every directed cycle carries at least one register (no combinational
  loops) -- this is the global well-formedness condition retiming must
  maintain (all retimed weights non-negative and cycle weights invariant).
"""

from __future__ import annotations

from typing import List

from repro.circuit.netlist import Circuit, CircuitError
from repro.circuit.types import NodeKind


def validate(circuit: Circuit) -> None:
    """Raise :class:`CircuitError` on the first structural violation."""
    problems = check(circuit)
    if problems:
        raise CircuitError(f"{circuit.name}: " + "; ".join(problems[:5]))


def check(circuit: Circuit) -> List[str]:
    """Return a list of human-readable structural problems (empty if valid)."""
    problems: List[str] = []
    for node in circuit.nodes.values():
        fan_in = len(circuit.in_edges(node.name))
        fan_out = len(circuit.out_edges(node.name))
        if node.kind is NodeKind.INPUT:
            if fan_in != 0:
                problems.append(f"input {node.name!r} has {fan_in} input edges")
            if fan_out > 1:
                problems.append(f"input {node.name!r} has {fan_out} output edges")
        elif node.kind is NodeKind.OUTPUT:
            if fan_in != 1:
                problems.append(f"output {node.name!r} has {fan_in} input edges")
            if fan_out != 0:
                problems.append(f"output {node.name!r} has {fan_out} output edges")
        elif node.kind is NodeKind.GATE:
            if fan_out != 1:
                problems.append(f"gate {node.name!r} has {fan_out} output edges")
            if not node.gate_type.min_arity <= fan_in <= node.gate_type.max_arity:
                problems.append(
                    f"gate {node.name!r} ({node.gate_type.value}) has arity {fan_in}"
                )
        elif node.kind is NodeKind.FANOUT:
            if fan_in != 1:
                problems.append(f"stem {node.name!r} has {fan_in} input edges")
            if fan_out < 2:
                problems.append(f"stem {node.name!r} has fanout {fan_out}")
        elif node.kind in (NodeKind.CONST0, NodeKind.CONST1):
            if fan_in != 0:
                problems.append(f"constant {node.name!r} has {fan_in} input edges")
            if fan_out != 1:
                problems.append(f"constant {node.name!r} has {fan_out} output edges")
    for edge in circuit.edges:
        if edge.weight < 0:
            problems.append(f"edge {edge.index} has negative weight {edge.weight}")
    try:
        circuit.topo_order()
    except CircuitError as error:
        problems.append(str(error))
    return problems


def is_valid(circuit: Circuit) -> bool:
    """True when :func:`check` finds no problems."""
    return not check(circuit)


__all__ = ["validate", "check", "is_valid"]
