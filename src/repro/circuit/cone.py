"""Cone-of-influence reduction: drop logic outside every output's support.

The reachability-bounded STG engine (``engine="reach"``) only needs the
machine *as observed at the primary outputs*: a register whose value can
never reach an output (and never feeds a kept register's next-state
function) contributes nothing to the transition/output tables the paper's
Section II machinery inspects, yet doubles the state space.  This pass
computes the backward closure of the output vertices over all
interconnections -- registered edges included, so the full load cone of
every kept register is retained -- and rebuilds the circuit with only the
closure's edges.

Because the closure is transitively closed over in-edges, every kept
node keeps *all* of its in-edges: sink pins stay contiguous and the kept
sub-machine's dynamics are autonomous (stepping the reduced circuit equals
stepping the original and projecting onto the kept registers).  Primary
inputs are always kept so the reduced circuit accepts the original input
vectors unchanged.

The reduced circuit is an internal simulation artifact: it can violate the
strict structural invariants of :mod:`repro.circuit.validate` (a fanout
stem may be left with a single branch when its other branches fed dropped
logic), which the simulators tolerate.  Do not feed it back into ATPG or
retiming.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.circuit.netlist import Circuit, Edge
from repro.circuit.types import NodeKind


@dataclass(frozen=True)
class ConeReduction:
    """Result of :func:`cone_of_influence`.

    ``circuit`` is the reduced circuit (the original object itself when
    nothing was droppable); ``edge_map`` maps original edge indices to
    reduced edge indices (dropped edges are absent);
    ``kept_register_positions`` gives, for each reduced register in the
    reduced circuit's canonical order, the index of the corresponding
    register in ``original.registers()`` -- the projection used to map
    full-width states onto cone states.
    """

    original: Circuit
    circuit: Circuit
    edge_map: Dict[int, int] = field(repr=False)
    kept_register_positions: Tuple[int, ...] = field(repr=False)
    dropped_registers: int = 0
    dropped_nodes: int = 0

    @property
    def is_identity(self) -> bool:
        return self.circuit is self.original

    def project_state(self, state) -> Tuple[int, ...]:
        """Project a full-width register state onto the kept registers."""
        return tuple(state[position] for position in self.kept_register_positions)


def cone_of_influence(circuit: Circuit) -> ConeReduction:
    """Reduce ``circuit`` to the union of its outputs' cones of influence.

    Keeps every node backward-reachable from a primary output (crossing
    registered edges), plus all primary inputs; keeps exactly the in-edges
    of kept nodes.  Edge indices are renumbered densely preserving the
    original relative order, so ``circuit.registers()`` of the reduction is
    the original register list filtered to kept edges.
    """
    closure = set()
    worklist = [
        node.name for node in circuit.nodes.values() if node.kind is NodeKind.OUTPUT
    ]
    closure.update(worklist)
    while worklist:
        name = worklist.pop()
        for edge in circuit.in_edges(name):
            if edge.source not in closure:
                closure.add(edge.source)
                worklist.append(edge.source)

    kept_edge_indices = [
        edge.index for edge in circuit.edges if edge.sink in closure
    ]
    if len(kept_edge_indices) == len(circuit.edges):
        identity_map = {edge.index: edge.index for edge in circuit.edges}
        return ConeReduction(
            original=circuit,
            circuit=circuit,
            edge_map=identity_map,
            kept_register_positions=tuple(range(circuit.num_registers())),
            dropped_registers=0,
            dropped_nodes=0,
        )

    kept_nodes = {
        name: node
        for name, node in circuit.nodes.items()
        if name in closure or node.kind is NodeKind.INPUT
    }
    edge_map: Dict[int, int] = {}
    new_edges = []
    for original_index in kept_edge_indices:
        edge = circuit.edges[original_index]
        new_index = len(new_edges)
        edge_map[original_index] = new_index
        new_edges.append(
            Edge(new_index, edge.source, edge.sink, edge.sink_pin, edge.weight)
        )

    kept_edge_set = set(kept_edge_indices)
    kept_positions = tuple(
        position
        for position, ref in enumerate(circuit.registers())
        if ref.edge_index in kept_edge_set
    )
    reduced = Circuit(f"{circuit.name}|cone", kept_nodes, new_edges)
    return ConeReduction(
        original=circuit,
        circuit=reduced,
        edge_map=edge_map,
        kept_register_positions=kept_positions,
        dropped_registers=circuit.num_registers() - reduced.num_registers(),
        dropped_nodes=len(circuit.nodes) - len(kept_nodes),
    )


__all__ = ["ConeReduction", "cone_of_influence"]
