"""Canonical serialization and content digest for circuits.

The artifact store (:mod:`repro.store`) addresses every derived artifact --
compiled stepper source, collapsed fault lists, ATPG results -- by the
identity of the circuit it was computed from.  Python object identity dies
with the process and raw node names are not stable across a BENCH
write/read round trip (primary outputs are renamed ``po_<driver>`` and
fanout stems are renumbered by emission order), so this module defines a
*canonical* serialization that is invariant under those renamings and
hashes it with SHA-256:

* primary inputs, gates and constants keep their names (the round trip
  preserves them);
* fanout stems are renamed top-down along each stem tree, ordering sibling
  stems by a structural fingerprint of their subtrees;
* primary outputs are renamed by the canonical name and register weight of
  their driving edge;
* edges are emitted as a sorted multiset, so edge *numbering* does not
  participate.

Two circuits share a digest exactly when they are isomorphic under stem/PO
renaming -- same interface, same gates, same register placement, hence the
same behaviour *and* the same fault universe up to line renumbering.
Artifacts that record :class:`~repro.circuit.netlist.LineRef` coordinates
additionally validate :func:`structural_identity` (a hash over the raw,
ordered edge list) before being trusted; see ``repro.store.artifacts``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.types import NodeKind

#: Bump when the canonical serialization below changes shape; participates
#: in the artifact store's schema version (stale digests must not collide
#: with new ones).
DIGEST_VERSION = 1


def _stem_fingerprints(circuit: Circuit) -> Dict[str, str]:
    """A structural fingerprint per fanout stem, computed bottom-up.

    The fingerprint covers the stem's in-path (root driver plus the weight
    of every hop from it) and the sorted multiset of its sinks, recursing
    into sub-stems.  Stems with equal fingerprints are interchangeable:
    they hang off the same driver with identical weights and identical
    subtrees, so any consistent ordering of them yields the same canonical
    edge multiset.
    """
    nodes = circuit.nodes

    def is_stem(name: str) -> bool:
        return nodes[name].kind is NodeKind.FANOUT

    def in_path(stem: str) -> Tuple[str, Tuple[int, ...]]:
        weights: List[int] = []
        current = stem
        while True:
            edge = circuit.in_edges(current)[0]
            weights.append(edge.weight)
            if not is_stem(edge.source):
                return edge.source, tuple(reversed(weights))
            current = edge.source

    fingerprints: Dict[str, str] = {}

    def fingerprint(stem: str) -> str:
        cached = fingerprints.get(stem)
        if cached is not None:
            return cached
        sinks = []
        for edge in circuit.out_edges(stem):
            if is_stem(edge.sink):
                token = fingerprint(edge.sink)
            elif nodes[edge.sink].kind is NodeKind.OUTPUT:
                token = "<po>"
            else:
                token = edge.sink
            sinks.append(f"{token}@{edge.sink_pin}+{edge.weight}")
        root, weights = in_path(stem)
        fingerprints[stem] = (
            f"fo({root}/{','.join(map(str, weights))}|{';'.join(sorted(sinks))})"
        )
        return fingerprints[stem]

    for name in nodes:
        if is_stem(name):
            fingerprint(name)
    return fingerprints


def _canonical_names(circuit: Circuit) -> Dict[str, str]:
    """Canonical name per node: identity for inputs/gates/constants,
    fingerprint-ordered tree positions for stems, driver-derived names for
    primary outputs."""
    nodes = circuit.nodes
    fingerprints = _stem_fingerprints(circuit)
    canon: Dict[str, str] = {}
    for name, node in nodes.items():
        if node.kind not in (NodeKind.FANOUT, NodeKind.OUTPUT):
            canon[name] = name

    def assign_stems(parent: str, parent_canon: str) -> None:
        children = [
            edge.sink
            for edge in circuit.out_edges(parent)
            if nodes[edge.sink].kind is NodeKind.FANOUT
        ]
        for index, stem in enumerate(
            sorted(children, key=lambda s: fingerprints[s])
        ):
            canon[stem] = f"{parent_canon}#f{index}"
            assign_stems(stem, canon[stem])

    for name, node in nodes.items():
        if node.kind not in (NodeKind.FANOUT, NodeKind.OUTPUT):
            assign_stems(name, canon[name])

    po_keys = []
    for po in circuit.output_names:
        edge = circuit.in_edges(po)[0]
        po_keys.append(((canon[edge.source], edge.weight), po))
    # Ties share a driver and weight, making the outputs interchangeable;
    # the secondary sort on the raw name is only there for determinism
    # within one process and cannot affect the emitted multiset.
    for index, (_, po) in enumerate(sorted(po_keys)):
        canon[po] = f"<po:{index}>"
    return canon


def canonical_circuit_text(circuit: Circuit) -> str:
    """The canonical, name-stable serialization the digest hashes.

    Line one is a format tag carrying :data:`DIGEST_VERSION`; then one line
    per node (kind, canonical name, gate type) and one per edge (canonical
    endpoints, sink pin, register weight), each section sorted.  The
    circuit's display name is deliberately excluded: retiming helpers
    suffix names (``.easy``, ``.re``) without changing identity-relevant
    structure.
    """
    canon = _canonical_names(circuit)
    node_lines = sorted(
        f"n {node.kind.value} {canon[name]}"
        + (f" {node.gate_type.value}" if node.gate_type is not None else "")
        for name, node in circuit.nodes.items()
    )
    edge_lines = sorted(
        f"e {canon[edge.source]} {canon[edge.sink]} {edge.sink_pin} {edge.weight}"
        for edge in circuit.edges
    )
    return "\n".join([f"canon-circuit v{DIGEST_VERSION}"] + node_lines + edge_lines) + "\n"


def circuit_digest(circuit: Circuit) -> str:
    """SHA-256 hex digest of the canonical serialization.

    Stable across processes, BENCH round trips and circuit renames; cached
    on the instance (circuits are immutable by convention, and the cache is
    dropped by ``__getstate__`` alongside the compile cache).
    """
    cached = getattr(circuit, "_circuit_digest", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256(
        canonical_circuit_text(circuit).encode("utf-8")
    ).hexdigest()
    circuit._circuit_digest = digest
    return digest


def structural_identity(circuit: Circuit) -> str:
    """SHA-256 over the *raw* ordered structure (names, edge numbering).

    Unlike :func:`circuit_digest` this changes when edge indices or node
    names change, even behaviour-preservingly.  Store artifacts that carry
    edge-indexed coordinates (fault lists, test-set detections, stepper
    source with baked-in slot numbers) record it and are only loaded into a
    circuit whose raw structure matches exactly.
    """
    parts: List[str] = []
    for name in sorted(circuit.nodes):
        node = circuit.nodes[name]
        parts.append(
            f"n {node.kind.value} {name}"
            + (f" {node.gate_type.value}" if node.gate_type is not None else "")
        )
    for edge in circuit.edges:
        parts.append(f"e {edge.index} {edge.source} {edge.sink} {edge.sink_pin} {edge.weight}")
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


__all__ = [
    "DIGEST_VERSION",
    "canonical_circuit_text",
    "circuit_digest",
    "structural_identity",
]
