"""Gate-level sequential circuit substrate.

Implements the paper's circuit model (Sections II-III): synchronous
sequential circuits of combinational gates and edge-triggered D flip-flops,
represented as edge-weighted directed graphs whose weights count the
flip-flops on each interconnection and whose edges decompose into *lines*
(the stuck-at fault sites of Fig. 4).
"""

from repro.circuit.builder import CircuitBuilder
from repro.circuit.bench_io import parse_bench, read_bench, write_bench
from repro.circuit.cone import ConeReduction, cone_of_influence
from repro.circuit.digest import (
    canonical_circuit_text,
    circuit_digest,
    structural_identity,
)
from repro.circuit.netlist import (
    Circuit,
    CircuitError,
    Edge,
    LineRef,
    Node,
    RegisterRef,
)
from repro.circuit.types import GateType, NodeKind, eval_gate, eval_gate_vector
from repro.circuit.verilog_io import parse_verilog, read_verilog, write_verilog
from repro.circuit.validate import check, is_valid, validate

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "CircuitError",
    "Edge",
    "Node",
    "LineRef",
    "RegisterRef",
    "GateType",
    "NodeKind",
    "eval_gate",
    "eval_gate_vector",
    "parse_bench",
    "read_bench",
    "write_bench",
    "canonical_circuit_text",
    "circuit_digest",
    "structural_identity",
    "parse_verilog",
    "read_verilog",
    "write_verilog",
    "ConeReduction",
    "cone_of_influence",
    "validate",
    "check",
    "is_valid",
]
