"""The circuit graph model: vertices, weighted edges, registers and lines.

A :class:`Circuit` is the paper's ``G = (V, E, W)``:

* vertices (:class:`Node`) are primary inputs, primary outputs, single-output
  combinational gates, fanout stems and constants;
* edges (:class:`Edge`) are interconnections, each carrying a non-negative
  integer weight = the number of D flip-flops in series on that
  interconnection;
* an edge of weight ``w`` consists of ``w + 1`` *lines* (paper Fig. 4),
  numbered ``1 .. w+1`` from the source side; line ``i`` (``i >= 2``) is
  driven by register ``i-1`` on the edge.  Lines are the stuck-at fault
  sites.

Retiming never changes the vertex/edge structure -- only the weights -- so a
circuit and all of its retimed versions share node names and edge indices.
That shared identity is what makes the paper's *corresponding fault* relation
(Section IV-B) directly computable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.circuit.types import GateType, NodeKind, gate_delay


@dataclass(frozen=True)
class Node:
    """A vertex of the circuit graph."""

    name: str
    kind: NodeKind
    gate_type: Optional[GateType] = None

    def __post_init__(self) -> None:
        if self.kind is NodeKind.GATE and self.gate_type is None:
            raise ValueError(f"gate node {self.name!r} requires a gate_type")
        if self.kind is not NodeKind.GATE and self.gate_type is not None:
            raise ValueError(f"non-gate node {self.name!r} cannot have a gate_type")


@dataclass(frozen=True)
class Edge:
    """A weighted interconnection from ``source`` to pin ``sink_pin`` of ``sink``."""

    index: int
    source: str
    sink: str
    sink_pin: int
    weight: int

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"edge {self.index} has negative weight {self.weight}")

    @property
    def num_lines(self) -> int:
        """An edge of weight ``w`` is divided into ``w + 1`` lines (Fig. 4)."""
        return self.weight + 1


@dataclass(frozen=True, order=True)
class RegisterRef:
    """Register ``position`` (1-based, counted from the source) on an edge."""

    edge_index: int
    position: int


@dataclass(frozen=True, order=True)
class LineRef:
    """Line ``segment`` (1-based, counted from the source) of an edge.

    Segment 1 is driven by the edge's source vertex; segment ``i >= 2`` is
    driven by register ``i - 1``; segment ``weight + 1`` feeds the sink.
    """

    edge_index: int
    segment: int


class CircuitError(ValueError):
    """Raised for structural violations of the circuit model."""


@dataclass
class Circuit:
    """An immutable-by-convention synchronous sequential circuit.

    Instances are normally produced by :class:`repro.circuit.builder.
    CircuitBuilder` or by the retiming engine.  After construction the
    structure must not be mutated; retiming produces new instances via
    :meth:`with_weights`.
    """

    name: str
    nodes: Dict[str, Node] = field(default_factory=dict)
    edges: List[Edge] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._in_edges: Dict[str, List[int]] = {}
        self._out_edges: Dict[str, List[int]] = {}
        self._input_names: List[str] = []
        self._output_names: List[str] = []
        self._rebuild_indexes()

    # -- construction helpers (used by builders, not end users) ----------

    def _rebuild_indexes(self) -> None:
        self._in_edges = {name: [] for name in self.nodes}
        self._out_edges = {name: [] for name in self.nodes}
        for edge in self.edges:
            if edge.source not in self.nodes:
                raise CircuitError(f"edge {edge.index}: unknown source {edge.source!r}")
            if edge.sink not in self.nodes:
                raise CircuitError(f"edge {edge.index}: unknown sink {edge.sink!r}")
            self._in_edges[edge.sink].append(edge.index)
            self._out_edges[edge.source].append(edge.index)
        for name, indexes in self._in_edges.items():
            indexes.sort(key=lambda i: self.edges[i].sink_pin)
            pins = [self.edges[i].sink_pin for i in indexes]
            if pins != list(range(len(pins))):
                raise CircuitError(f"node {name!r} has non-contiguous input pins {pins}")
        self._input_names = sorted(
            (n.name for n in self.nodes.values() if n.kind is NodeKind.INPUT)
        )
        self._output_names = sorted(
            (n.name for n in self.nodes.values() if n.kind is NodeKind.OUTPUT)
        )
        self._topo_cache: Optional[List[str]] = None

    # -- basic queries -----------------------------------------------------

    @property
    def input_names(self) -> List[str]:
        """Primary input names, sorted (stable vector ordering)."""
        return list(self._input_names)

    @property
    def output_names(self) -> List[str]:
        """Primary output names, sorted (stable vector ordering)."""
        return list(self._output_names)

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def edge(self, index: int) -> Edge:
        return self.edges[index]

    def in_edges(self, name: str) -> List[Edge]:
        """Input edges of a node, ordered by sink pin."""
        return [self.edges[i] for i in self._in_edges[name]]

    def out_edges(self, name: str) -> List[Edge]:
        return [self.edges[i] for i in self._out_edges[name]]

    def gate_nodes(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.kind is NodeKind.GATE]

    def fanout_stems(self) -> List[Node]:
        """All explicit fanout stem vertices."""
        return [n for n in self.nodes.values() if n.kind is NodeKind.FANOUT]

    def num_gates(self) -> int:
        return sum(1 for n in self.nodes.values() if n.kind is NodeKind.GATE)

    # -- registers and lines ------------------------------------------------

    def registers(self) -> List[RegisterRef]:
        """All registers, in canonical (edge, position) order."""
        refs = []
        for edge in self.edges:
            for position in range(1, edge.weight + 1):
                refs.append(RegisterRef(edge.index, position))
        return refs

    def num_registers(self) -> int:
        return sum(edge.weight for edge in self.edges)

    def lines(self) -> List[LineRef]:
        """All lines, in canonical (edge, segment) order."""
        refs = []
        for edge in self.edges:
            for segment in range(1, edge.num_lines + 1):
                refs.append(LineRef(edge.index, segment))
        return refs

    def num_lines(self) -> int:
        return sum(edge.num_lines for edge in self.edges)

    # -- structure ----------------------------------------------------------

    def topo_order(self) -> List[str]:
        """Topological order of vertices over zero-weight edges.

        Edges with weight >= 1 deliver register outputs and impose no
        combinational ordering.  Raises :class:`CircuitError` on a
        zero-weight (combinational) cycle.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        indegree = {name: 0 for name in self.nodes}
        for edge in self.edges:
            if edge.weight == 0:
                indegree[edge.sink] += 1
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: List[str] = []
        stack = list(reversed(ready))
        while stack:
            name = stack.pop()
            order.append(name)
            for edge_index in self._out_edges[name]:
                edge = self.edges[edge_index]
                if edge.weight == 0:
                    indegree[edge.sink] -= 1
                    if indegree[edge.sink] == 0:
                        stack.append(edge.sink)
        if len(order) != len(self.nodes):
            stuck = sorted(set(self.nodes) - set(order))
            raise CircuitError(f"combinational cycle through {stuck[:6]}")
        self._topo_cache = order
        return list(order)

    def clock_period(self, delay: Optional[Callable[[Node], int]] = None) -> int:
        """Length of the longest zero-weight (purely combinational) path.

        The default delay model is the paper's: gate delay = number of
        inputs (1 for NOT/BUF); stems, constants and I/O pins are free.
        """
        if delay is None:
            delay = self.default_delay
        arrival = {name: 0 for name in self.nodes}
        for name in self.topo_order():
            arrival[name] += delay(self.nodes[name])
            for edge in self.out_edges(name):
                if edge.weight == 0 and arrival[edge.sink] < arrival[name]:
                    arrival[edge.sink] = arrival[name]
        return max(arrival.values(), default=0)

    def default_delay(self, node: Node) -> int:
        """The paper's delay model (see :func:`repro.circuit.types.gate_delay`)."""
        if node.kind is NodeKind.GATE:
            return gate_delay(node.gate_type, len(self._in_edges[node.name]))
        return 0

    # -- derivation ----------------------------------------------------------

    def with_weights(self, weights: Sequence[int], name: Optional[str] = None) -> "Circuit":
        """A structurally identical circuit with new edge weights.

        This is how retimed circuits are materialized: node names and edge
        indices are preserved, so faults and lines can be related across the
        transformation.
        """
        if len(weights) != len(self.edges):
            raise CircuitError(
                f"expected {len(self.edges)} weights, got {len(weights)}"
            )
        new_edges = [
            Edge(e.index, e.source, e.sink, e.sink_pin, int(w))
            for e, w in zip(self.edges, weights)
        ]
        return Circuit(name or self.name, dict(self.nodes), new_edges)

    def weights(self) -> List[int]:
        return [edge.weight for edge in self.edges]

    def copy(self, name: Optional[str] = None) -> "Circuit":
        return Circuit(name or self.name, dict(self.nodes), list(self.edges))

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        """Pickle only the defining structure.

        Derived indexes are rebuilt on load, and -- critically -- the
        compile-cache entry stashed on the instance by
        :mod:`repro.simulation.cache` is dropped: it holds ``exec``-generated
        step functions that cannot cross a process boundary.  This is what
        lets the multiprocess ATPG orchestrator ship a circuit to its pool
        workers with a plain pickle; each worker re-lowers into its own
        per-process cache.
        """
        return {"name": self.name, "nodes": self.nodes, "edges": self.edges}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.name = state["name"]
        self.nodes = state["nodes"]
        self.edges = state["edges"]
        self.__post_init__()

    # -- display --------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Headline structural statistics."""
        return {
            "inputs": len(self._input_names),
            "outputs": len(self._output_names),
            "gates": self.num_gates(),
            "stems": len(self.fanout_stems()),
            "dffs": self.num_registers(),
            "lines": self.num_lines(),
            "clock_period": self.clock_period(),
        }

    def __str__(self) -> str:
        s = self.stats()
        return (
            f"Circuit({self.name}: {s['inputs']} PI, {s['outputs']} PO, "
            f"{s['gates']} gates, {s['dffs']} DFFs, period {s['clock_period']})"
        )


def iter_edge_lines(edge: Edge) -> Iterator[LineRef]:
    """The lines of one edge, source side first."""
    for segment in range(1, edge.num_lines + 1):
        yield LineRef(edge.index, segment)


__all__ = [
    "Node",
    "Edge",
    "RegisterRef",
    "LineRef",
    "Circuit",
    "CircuitError",
    "iter_edge_lines",
]
