"""Compilation of circuit graphs into flat evaluation programs.

Both the scalar three-valued simulator and the bit-parallel simulator share
the same compiled form: vertices are numbered in topological order, every
gate-input / register-load / primary-output read is resolved to either "the
value of vertex *i* this cycle" or "the value of register *j* from the
previous cycle", and every such read is tagged with the :class:`LineRef` it
observes so that stuck-at faults can be injected at exactly the right line
(paper Fig. 4 semantics: a fault on line ``e_i`` forces the value seen by
that line's one consumer -- register ``i`` for ``i <= w``, the sink vertex
for ``i = w + 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit, Edge, LineRef, RegisterRef
from repro.circuit.types import GateType, NodeKind

# A read source: (from_register, index).  When from_register is True the
# index is a register slot; otherwise it is a vertex slot.
ReadSource = Tuple[bool, int]


@dataclass(frozen=True)
class Read:
    """One resolved value read, tagged with the line it observes."""

    from_register: bool
    index: int
    line: LineRef


@dataclass(frozen=True)
class NodeOp:
    """Evaluation recipe for one vertex."""

    slot: int
    kind: NodeKind
    gate_type: Optional[GateType]
    reads: Tuple[Read, ...]
    pi_index: int = -1


class CompiledCircuit:
    """A circuit lowered to slot-indexed evaluation programs.

    Attributes:
        circuit: the source :class:`Circuit`.
        ops: vertex evaluation recipes in topological order.
        register_refs: canonical register order (state vector layout).
        register_loads: per register, the :class:`Read` feeding its D input.
        output_reads: per primary output (sorted name order), the read
            producing the observed value.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        order = circuit.topo_order()
        self.slot_of: Dict[str, int] = {name: i for i, name in enumerate(order)}
        self.register_refs: List[RegisterRef] = circuit.registers()
        self.register_slot: Dict[RegisterRef, int] = {
            ref: i for i, ref in enumerate(self.register_refs)
        }
        pi_index = {name: i for i, name in enumerate(circuit.input_names)}

        def edge_read(edge: Edge) -> Read:
            """Read of the sink-side line of an edge."""
            if edge.weight == 0:
                return Read(False, self.slot_of[edge.source], LineRef(edge.index, 1))
            reg = RegisterRef(edge.index, edge.weight)
            return Read(
                True, self.register_slot[reg], LineRef(edge.index, edge.weight + 1)
            )

        self.ops: List[NodeOp] = []
        for name in order:
            node = circuit.node(name)
            reads = tuple(edge_read(e) for e in circuit.in_edges(name))
            self.ops.append(
                NodeOp(
                    slot=self.slot_of[name],
                    kind=node.kind,
                    gate_type=node.gate_type,
                    reads=reads,
                    pi_index=pi_index.get(name, -1),
                )
            )

        # Register load reads: register (e, k) loads line (e, k), whose value
        # is the source vertex (k == 1) or register (e, k - 1).
        self.register_loads: List[Read] = []
        for ref in self.register_refs:
            edge = circuit.edge(ref.edge_index)
            if ref.position == 1:
                read = Read(
                    False, self.slot_of[edge.source], LineRef(edge.index, 1)
                )
            else:
                upstream = RegisterRef(edge.index, ref.position - 1)
                read = Read(
                    True, self.register_slot[upstream], LineRef(edge.index, ref.position)
                )
            self.register_loads.append(read)

        # Primary output observations (outputs are OUTPUT vertices with one
        # input edge; their op already computed the value into their slot).
        self.output_reads: List[Read] = []
        for po in circuit.output_names:
            in_edge = circuit.in_edges(po)[0]
            self.output_reads.append(edge_read(in_edge))

        self.num_slots = len(order)
        self.num_registers = len(self.register_refs)
        self.num_inputs = len(circuit.input_names)
        self.num_outputs = len(circuit.output_names)

    def line_consumer_reads(self) -> Dict[LineRef, List[Tuple[str, int]]]:
        """Map each line to its consumer reads, for debugging/analysis.

        Values are ``("op", op_position)``, ``("reg", register_slot)`` or
        ``("po", output_position)`` descriptors.
        """
        consumers: Dict[LineRef, List[Tuple[str, int]]] = {}
        for position, op in enumerate(self.ops):
            for read in op.reads:
                consumers.setdefault(read.line, []).append(("op", position))
        for slot, read in enumerate(self.register_loads):
            consumers.setdefault(read.line, []).append(("reg", slot))
        for position, read in enumerate(self.output_reads):
            consumers.setdefault(read.line, []).append(("po", position))
        return consumers


__all__ = ["CompiledCircuit", "NodeOp", "Read"]
