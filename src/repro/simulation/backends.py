"""Kernel backend selection: ``bigint`` (reference) vs ``numpy`` word-plane.

Every compiled kernel in this package runs on Python bigints by default --
arbitrary-precision integers are always available and CPython's bitwise
loops are respectable.  The optional ``numpy`` backend lowers the same
dual-rail programs to vectorized ops over ``uint64`` lane-word arrays (see
:mod:`repro.simulation.wordplane`), which wins once a fault group is wide
enough to amortize per-call ufunc dispatch.

numpy itself is an optional ``[perf]`` extra, so every import goes through
:func:`numpy_or_none` and callers pass ``backend="auto"`` to get numpy when
it is importable and the bigint reference otherwise.  ``resolve_backend``
is the single policy point: flows thread the user's knob down here and
never import numpy directly.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: Recognized values for every ``backend=`` knob in the package.
BACKENDS: Tuple[str, ...] = ("auto", "bigint", "numpy")

#: Bump whenever the word-plane lowering changes observable layout or
#: semantics.  Lives here (not in :mod:`repro.simulation.wordplane`) so the
#: artifact store can fold it into its schema version without importing
#: numpy; wordplane re-exports it.
WORDPLANE_VERSION = 1

_NUMPY = None
_NUMPY_CHECKED = False


def numpy_or_none():
    """The ``numpy`` module when importable, else ``None`` (cached)."""
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        try:
            import numpy
        except ImportError:  # pragma: no cover - exercised via fake-absent tests
            numpy = None
        _NUMPY = numpy
        _NUMPY_CHECKED = True
    return _NUMPY


def numpy_available() -> bool:
    """True when the optional numpy dependency is importable."""
    return numpy_or_none() is not None


def numpy_version() -> Optional[str]:
    """The installed numpy version string, or ``None`` when absent."""
    module = numpy_or_none()
    return None if module is None else getattr(module, "__version__", "unknown")


def resolve_backend(backend: str = "auto") -> str:
    """Resolve a user-facing backend knob to ``"bigint"`` or ``"numpy"``.

    ``"auto"`` selects numpy when importable and falls back to bigint;
    ``"numpy"`` insists and raises when the extra is not installed, so a
    user who asked for it explicitly never gets a silent fallback.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r} (expected one of {BACKENDS})")
    if backend == "auto":
        return "numpy" if numpy_available() else "bigint"
    if backend == "numpy" and not numpy_available():
        raise RuntimeError(
            "backend='numpy' requires the optional numpy dependency "
            "(install the [perf] extra) -- use backend='auto' to fall back"
        )
    return backend


__all__ = [
    "BACKENDS",
    "WORDPLANE_VERSION",
    "numpy_available",
    "numpy_or_none",
    "numpy_version",
    "resolve_backend",
]
