"""Logic simulation engines.

* :class:`repro.simulation.sequential.SequentialSimulator` -- scalar
  three-valued reference simulator with single stuck-at injection.
* :class:`repro.simulation.vector.VectorSimulator` -- bit-parallel
  simulator used for batch pattern simulation and PROOFS-style parallel
  fault simulation.
"""

from repro.simulation.compiled import CompiledCircuit
from repro.simulation.sequential import (
    SequentialSimulator,
    StepResult,
    Trace,
    simulate,
)
from repro.simulation.vector import VectorSimulator, VectorStepResult

__all__ = [
    "CompiledCircuit",
    "SequentialSimulator",
    "StepResult",
    "Trace",
    "simulate",
    "VectorSimulator",
    "VectorStepResult",
]
