"""Logic simulation engines.

* :class:`repro.simulation.sequential.SequentialSimulator` -- scalar
  three-valued reference simulator with single stuck-at injection.
* :class:`repro.simulation.codegen.FastStepper` -- code-generated scalar
  stepper (the PODEM engine's workhorse).
* :class:`repro.simulation.vector.VectorSimulator` -- interpreted
  bit-parallel simulator (reference for the compiled kernel).
* :class:`repro.simulation.vector_codegen.VectorFastStepper` --
  code-generated bit-parallel kernel with runtime stuck-at injection
  masks; the engine behind the PROOFS-style parallel fault simulator.
* :class:`repro.simulation.dual_codegen.DualFastStepper` --
  code-generated dual-machine two-plane kernel stepping the good and the
  faulty machine in one pass; PODEM's resimulation engine.
* :mod:`repro.simulation.cache` -- module-level compile cache shared by
  the ATPG / fault-simulation / verification flows.
"""

from repro.simulation.cache import (
    clear_compile_cache,
    compile_cache_stats,
    compiled_circuit,
    dual_fast_stepper,
    fast_stepper,
    vector_fast_stepper,
    warm_compile_cache,
)
from repro.simulation.codegen import FastStepper
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.dual_codegen import DualFastStepper, plane_pair_trit
from repro.simulation.sequential import (
    SequentialSimulator,
    StepResult,
    Trace,
    simulate,
)
from repro.simulation.vector import VectorSimulator, VectorStepResult
from repro.simulation.vector_codegen import VectorFastStepper, rail_pair_trit

__all__ = [
    "CompiledCircuit",
    "FastStepper",
    "SequentialSimulator",
    "StepResult",
    "Trace",
    "simulate",
    "VectorSimulator",
    "VectorStepResult",
    "VectorFastStepper",
    "DualFastStepper",
    "plane_pair_trit",
    "rail_pair_trit",
    "compiled_circuit",
    "dual_fast_stepper",
    "fast_stepper",
    "vector_fast_stepper",
    "warm_compile_cache",
    "clear_compile_cache",
    "compile_cache_stats",
]
