"""Code-generated bit-parallel stepper: the fault-simulation kernel.

The interpreted :class:`repro.simulation.vector.VectorSimulator` pays one
:class:`~repro.logic.bitparallel.BitVec` allocation (with construction-time
validation) plus one ``eval_gate_vector`` dispatch per gate per cycle.  This
module lowers a :class:`CompiledCircuit` once into straight-line Python over
bare dual-rail integer masks::

    ones  -- bit *i* set when machine *i* carries logic 1
    zeros -- bit *i* set when machine *i* carries logic 0
    neither set -> X

so every gate costs a couple of bitwise integer operations on arbitrary-
precision ints, independent of the word width.

Two entry points are generated per circuit:

* ``step_clean(state, vector, mask)`` -- fault-free bit-parallel step, used
  for pattern-parallel batch simulation;
* ``step_inject(state, vector, mask, sa1, sa0)`` -- the same evaluation with
  per-line stuck-at injection masks supplied *at call time*.  ``sa1[k]`` /
  ``sa0[k]`` force the masked bit positions of the line with injection slot
  ``k`` (see :attr:`VectorFastStepper.line_slot`) to 1 / 0 at its consumer
  read.  Because the masks are runtime parameters, **one compiled function
  serves every fault group** -- the PROOFS-style engine never recompiles.

``state``/``vector``/``outputs``/``next_state`` are tuples of
``(ones, zeros)`` integer pairs in the same canonical orders as the
interpreted simulators.  Semantics are cross-checked against both the
scalar reference simulator and the interpreted vector simulator by the
test suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit, LineRef
from repro.circuit.types import NodeKind
from repro.logic.three_valued import ONE, Trit, X, ZERO
from repro.simulation.codegen import gate_rail_exprs
from repro.simulation.compiled import CompiledCircuit, Read

#: Bump whenever the generated bit-parallel stepper source changes shape,
#: so persisted stepper artifacts from older generators are invalidated
#: (the artifact store folds this into its schema version).
VECTOR_CODEGEN_VERSION = 1

# A bit-parallel signal value: (ones, zeros) integer masks.
RailPair = Tuple[int, int]
VectorFastState = Tuple[RailPair, ...]


class VectorFastStepper:
    """A compiled bit-parallel ``step`` over dual-rail integer masks.

    The stepper is width-agnostic: the active word width is carried by the
    ``mask`` argument (``(1 << width) - 1``), so the same compiled function
    serves 64-, 256- or 1024-wide fault groups alike.
    """

    def __init__(
        self,
        circuit: Circuit,
        compiled: Optional[CompiledCircuit] = None,
        sources: Optional[Tuple[str, str]] = None,
    ):
        self.circuit = circuit
        self.compiled = compiled if compiled is not None else CompiledCircuit(circuit)
        # Injection slot numbering: one slot per line consumed by the
        # evaluation program (every line of the circuit has exactly one
        # consumer read -- paper Fig. 4 semantics), assigned in program
        # order so the numbering is deterministic.
        self.line_slot: Dict[LineRef, int] = {}
        for op in self.compiled.ops:
            for read in op.reads:
                self.line_slot.setdefault(read.line, len(self.line_slot))
        for read in self.compiled.register_loads:
            self.line_slot.setdefault(read.line, len(self.line_slot))
        self.num_injection_slots = len(self.line_slot)

        # ``sources`` lets a persistent cache skip regeneration; the slot
        # numbering above is recomputed either way (it is deterministic in
        # program order, so it matches the sources it was generated with).
        if sources is not None:
            self._source_clean, self._source_inject = sources
        else:
            self._source_clean = self._generate(inject=False)
            self._source_inject = self._generate(inject=True)
        namespace: Dict[str, object] = {}
        exec(
            compile(self._source_clean, f"<vectorstep {circuit.name}>", "exec"),
            namespace,
        )
        exec(
            compile(
                self._source_inject, f"<vectorstep+inject {circuit.name}>", "exec"
            ),
            namespace,
        )
        self.step_clean = namespace["step_clean"]  # type: ignore[assignment]
        self.step_inject = namespace["step_inject"]  # type: ignore[assignment]

    # -- code generation ----------------------------------------------------

    def _read_exprs(
        self, read: Read, inject: bool, prelude: List[str]
    ) -> Tuple[str, str]:
        """Rail expressions for one read, emitting injection code if needed."""
        if read.from_register:
            base = (f"s{read.index}_1", f"s{read.index}_0")
        else:
            base = (f"v{read.index}_1", f"v{read.index}_0")
        if not inject:
            return base
        slot = self.line_slot[read.line]
        one, zero = base
        prelude.append(f"    r{slot}_1 = ({one} | sa1[{slot}]) & ~sa0[{slot}]")
        prelude.append(f"    r{slot}_0 = ({zero} | sa0[{slot}]) & ~sa1[{slot}]")
        return f"r{slot}_1", f"r{slot}_0"

    def _generate(self, inject: bool) -> str:
        compiled = self.compiled
        name = "step_inject" if inject else "step_clean"
        params = "state, vector, mask, sa1, sa0" if inject else "state, vector, mask"
        lines: List[str] = [f"def {name}({params}):"]
        for k in range(compiled.num_registers):
            lines.append(f"    s{k}_1, s{k}_0 = state[{k}]")
        for op in compiled.ops:
            slot = op.slot
            if op.kind is NodeKind.INPUT:
                lines.append(f"    v{slot}_1, v{slot}_0 = vector[{op.pi_index}]")
                continue
            if op.kind is NodeKind.CONST0:
                lines.append(f"    v{slot}_1, v{slot}_0 = 0, mask")
                continue
            if op.kind is NodeKind.CONST1:
                lines.append(f"    v{slot}_1, v{slot}_0 = mask, 0")
                continue
            prelude: List[str] = []
            reads = [self._read_exprs(r, inject, prelude) for r in op.reads]
            lines.extend(prelude)
            if op.kind in (NodeKind.FANOUT, NodeKind.OUTPUT):
                one, zero = reads[0]
                lines.append(f"    v{slot}_1 = {one}")
                lines.append(f"    v{slot}_0 = {zero}")
                continue
            one_expr, zero_expr = gate_rail_exprs(op.gate_type, reads)
            lines.append(f"    v{slot}_1 = {one_expr}")
            lines.append(f"    v{slot}_0 = {zero_expr}")
        next_state = []
        for read in compiled.register_loads:
            prelude = []
            one, zero = self._read_exprs(read, inject, prelude)
            lines.extend(prelude)
            next_state.append(f"({one}, {zero})")
        outputs = []
        for name_ in self.circuit.output_names:
            slot = compiled.slot_of[name_]
            outputs.append(f"(v{slot}_1, v{slot}_0)")
        lines.append(f"    outputs = ({', '.join(outputs)}{',' if outputs else ''})")
        lines.append(
            f"    next_state = ({', '.join(next_state)}{',' if next_state else ''})"
        )
        lines.append("    return outputs, next_state")
        return "\n".join(lines)

    # -- packing helpers ----------------------------------------------------

    def unknown_state(self) -> VectorFastState:
        """All registers X in every bit position."""
        return ((0, 0),) * self.compiled.num_registers

    def broadcast_state(self, scalars: Sequence[Trit], width: int) -> VectorFastState:
        """Replicate a scalar ternary state across all bit positions."""
        return tuple(_filled(value, width) for value in scalars)

    def broadcast_vector(
        self, scalars: Sequence[Trit], width: int
    ) -> Tuple[RailPair, ...]:
        """Replicate a scalar input vector across all bit positions."""
        if len(scalars) != self.compiled.num_inputs:
            raise ValueError(
                f"vector needs {self.compiled.num_inputs} trits, got {len(scalars)}"
            )
        return tuple(_filled(value, width) for value in scalars)

    def pack_vectors(
        self, vectors: Sequence[Sequence[Trit]]
    ) -> Tuple[RailPair, ...]:
        """Pack one scalar vector per bit position (pattern-parallel input)."""
        num_inputs = self.compiled.num_inputs
        for position, vector in enumerate(vectors):
            if len(vector) != num_inputs:
                raise ValueError(
                    f"vector {position} has {len(vector)} trits, "
                    f"expected {num_inputs}"
                )
        packed = []
        for pi in range(num_inputs):
            ones = 0
            zeros = 0
            for position, vector in enumerate(vectors):
                value = vector[pi]
                if value == ONE:
                    ones |= 1 << position
                elif value == ZERO:
                    zeros |= 1 << position
                elif value != X:
                    raise ValueError(f"not a trit: {value!r}")
            packed.append((ones, zeros))
        return tuple(packed)

    def blank_injection_masks(self) -> Tuple[List[int], List[int]]:
        """Fresh all-zero ``(sa1, sa0)`` mask arrays for ``step_inject``."""
        return [0] * self.num_injection_slots, [0] * self.num_injection_slots

    # -- convenience ---------------------------------------------------------

    def run_clean(
        self,
        vectors: Sequence[Sequence[RailPair]],
        width: int,
        state: Optional[VectorFastState] = None,
    ) -> Tuple[List[Tuple[RailPair, ...]], VectorFastState]:
        """Fault-free multi-cycle run over pre-packed vectors."""
        mask = (1 << width) - 1
        current = self.unknown_state() if state is None else tuple(state)
        step = self.step_clean
        outputs: List[Tuple[RailPair, ...]] = []
        for vector in vectors:
            out, current = step(current, tuple(vector), mask)
            outputs.append(out)
        return outputs, current

    def sources(self) -> Tuple[str, str]:
        """The generated ``(clean, inject)`` source texts (for debugging)."""
        return self._source_clean, self._source_inject

    def word_runner(self, width: int):
        """A word-plane runner for this kernel: the numpy backend.

        The runner executes the same dual-rail program as ``step_inject``
        over ``uint64`` lane-word arrays (see
        :mod:`repro.simulation.wordplane`), with the identical injection
        slot numbering, and is bit-identical to the bigint entry points.
        Raises :class:`RuntimeError` when the optional numpy dependency is
        not installed.
        """
        from repro.simulation.backends import numpy_or_none

        if numpy_or_none() is None:
            raise RuntimeError(
                "word_runner requires the optional numpy dependency "
                "(install the [perf] extra)"
            )
        from repro.simulation.wordplane import wordplane_plan

        return wordplane_plan(self).runner(width)


def _filled(value: Trit, width: int) -> RailPair:
    mask = (1 << width) - 1
    if value == ONE:
        return (mask, 0)
    if value == ZERO:
        return (0, mask)
    if value == X:
        return (0, 0)
    raise ValueError(f"not a trit: {value!r}")


def rail_pair_trit(pair: RailPair, position: int) -> Trit:
    """The ternary value carried by bit ``position`` of a rail pair."""
    bit = 1 << position
    if pair[0] & bit:
        return ONE
    if pair[1] & bit:
        return ZERO
    return X


__all__ = [
    "VECTOR_CODEGEN_VERSION",
    "VectorFastStepper",
    "VectorFastState",
    "RailPair",
    "rail_pair_trit",
]
