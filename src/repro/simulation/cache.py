"""Module-level compile cache for lowered circuits and code-generated steppers.

The ATPG, fault-simulation and verification flows all lower the same
:class:`~repro.circuit.netlist.Circuit` -- often many times per run: the
random phase fault-simulates per candidate sequence, PODEM re-creates its
good-machine stepper per engine, the benchmark rows simulate the same pair
with several engines.  Re-lowering (topological ordering + read resolution)
and re-``exec``-ing generated source on every call is pure waste, so the
artifacts are cached and shared by every flow:

* :func:`compiled_circuit` -- the :class:`CompiledCircuit` lowering;
* :func:`fast_stepper` -- the fault-free scalar :class:`FastStepper`;
* :func:`vector_fast_stepper` -- the bit-parallel :class:`VectorFastStepper`;
* :func:`dual_fast_stepper` -- the dual-machine :class:`DualFastStepper`
  (PODEM's good+faulty resimulation kernel, fault-agnostic via runtime
  injection masks).

Circuits are "immutable by convention" (retiming materializes *new*
instances via ``with_weights``), so the cache key is object identity.  The
artifacts are stashed on the circuit instance itself: a compiled artifact
necessarily holds a strong reference back to its circuit, so any external
registry that owned the artifacts would keep every circuit ever lowered
alive.  Instance stashing ties each cache entry's lifetime to its circuit
-- a retiming sweep materializing thousands of candidate circuits leaks
nothing once the candidates are dropped.  A registry of *weak* references
is kept purely for accounting (:func:`compile_cache_stats`) and bulk
clearing (:func:`clear_compile_cache`).

Per-fault steppers (PODEM's faulty machines) are deliberately *not* cached
-- each is used once per targeted fault and would only bloat the cache.

On top of the in-memory level sits an optional **persistent second level**
backed by the content-addressed artifact store (:mod:`repro.store`): the
generated stepper *source* is keyed by the circuit's content digest, so a
fresh process lowering a circuit any earlier process has seen skips code
generation and goes straight to ``exec``.  The artifact records the
circuit's raw structural identity and the loaders validate it, so a
digest-equal circuit with different edge numbering can never be handed
source whose slot numbering doesn't match.  The level is written through
lazily and degrades to a plain miss whenever the store is disabled or
unwritable; :func:`set_persistent_stepper_cache` gates it per process.

All bookkeeping is guarded by a lock so concurrent callers (e.g. a thread
pool fault-simulating independent circuits) are safe.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable, Dict, Optional, TypeVar

from repro.circuit.netlist import Circuit
from repro.simulation.codegen import FastStepper
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.dual_codegen import DualFastStepper
from repro.simulation.vector_codegen import VectorFastStepper

_T = TypeVar("_T")

_ATTR = "_simulation_compile_cache"

# Reentrant: a weakref _forget callback can fire from garbage collection
# triggered *while* the cache lock is held by the same thread (e.g. an
# allocation inside a build step collects a dead circuit's cycle); a plain
# Lock would deadlock there.
_LOCK = threading.RLock()
_REGISTRY: Dict[int, "weakref.ref[Circuit]"] = {}
_STATS = {
    "hits": 0,
    "misses": 0,
    "evictions": 0,
    "persistent_hits": 0,
    "persistent_misses": 0,
    "persistent_writes": 0,
}
_PERSIST = {"enabled": True}


class _Entry:
    __slots__ = ("compiled", "fast", "vector_fast", "dual_fast")

    def __init__(self) -> None:
        self.compiled: Optional[CompiledCircuit] = None
        self.fast: Optional[FastStepper] = None
        self.vector_fast: Optional[VectorFastStepper] = None
        self.dual_fast: Optional[DualFastStepper] = None


def _entry_for(circuit: Circuit) -> _Entry:
    """The cache entry stashed on ``circuit`` (caller holds the lock)."""
    entry = getattr(circuit, _ATTR, None)
    if entry is not None:
        return entry
    entry = _Entry()
    setattr(circuit, _ATTR, entry)
    key = id(circuit)

    # Globals are bound as defaults so the callback stays valid during
    # interpreter shutdown, when module globals may already be cleared.
    def _forget(
        dead_ref: "weakref.ref[Circuit]",
        key: int = key,
        lock: threading.RLock = _LOCK,
        registry: Dict[int, "weakref.ref[Circuit]"] = _REGISTRY,
        stats: Dict[str, int] = _STATS,
    ) -> None:
        with lock:
            if registry.get(key) is dead_ref:
                del registry[key]
                stats["evictions"] += 1

    _REGISTRY[key] = weakref.ref(circuit, _forget)
    return entry


def _get(circuit: Circuit, attr: str, build: Callable[[_Entry], _T]) -> _T:
    with _LOCK:
        entry = _entry_for(circuit)
        artifact = getattr(entry, attr)
        if artifact is not None:
            _STATS["hits"] += 1
            return artifact
        _STATS["misses"] += 1
        artifact = build(entry)
        setattr(entry, attr, artifact)
        return artifact


def compiled_circuit(circuit: Circuit) -> CompiledCircuit:
    """The cached :class:`CompiledCircuit` lowering of ``circuit``."""
    return _get(circuit, "compiled", lambda entry: CompiledCircuit(circuit))


# -- persistent second level -------------------------------------------------


def set_persistent_stepper_cache(enabled: bool) -> None:
    """Gate the store-backed stepper-source level for this process."""
    _PERSIST["enabled"] = bool(enabled)


def _store():
    """The default artifact store, or ``None`` when any level is off."""
    if not _PERSIST["enabled"]:
        return None
    from repro.store.core import default_store

    return default_store()


def _stepper_key(store, circuit: Circuit) -> str:
    from repro.circuit.digest import circuit_digest
    from repro.simulation.backends import WORDPLANE_VERSION

    # The word-plane backend lowers its plan *from* the persisted program
    # (same slot numbering), so the backend generation is part of the key:
    # artifacts produced under an older lowering never feed a newer backend.
    return store.key(
        "stepper", circuit_digest(circuit), f"wordplane{WORDPLANE_VERSION}"
    )


def _load_sources(circuit: Circuit):
    """Persisted ``(scalar, clean, inject, dual)`` sources, or ``None``."""
    store = _store()
    if store is None:
        return None
    from repro.store.artifacts import stepper_sources_from_payload

    payload = store.get("stepper", _stepper_key(store, circuit))
    sources = (
        None if payload is None else stepper_sources_from_payload(payload, circuit)
    )
    if sources is None:
        _STATS["persistent_misses"] += 1
        return None
    _STATS["persistent_hits"] += 1
    return sources


def _persist_sources(circuit: Circuit, entry: _Entry) -> None:
    """Write one combined stepper artifact (building any missing half).

    The scalar and bit-parallel sources travel in one record because every
    flow that needs one soon needs the other (PODEM simulates scalar, its
    detection replay and the verify stage simulate bit-parallel), and a
    single record keeps hit/miss accounting and GC granularity simple.
    """
    store = _store()
    if store is None:
        return
    if entry.fast is None:
        entry.fast = FastStepper(circuit, compiled=entry.compiled)
    if entry.vector_fast is None:
        entry.vector_fast = VectorFastStepper(circuit, compiled=entry.compiled)
    if entry.dual_fast is None:
        entry.dual_fast = DualFastStepper(circuit, compiled=entry.compiled)
    from repro.store.artifacts import stepper_payload

    clean, inject = entry.vector_fast.sources()
    try:
        store.put(
            "stepper",
            _stepper_key(store, circuit),
            stepper_payload(
                circuit,
                entry.fast._source,
                clean,
                inject,
                entry.dual_fast.source(),
            ),
        )
        _STATS["persistent_writes"] += 1
    except OSError:
        pass  # unwritable store degrades to in-memory-only caching


def fast_stepper(circuit: Circuit) -> FastStepper:
    """The cached fault-free scalar :class:`FastStepper` for ``circuit``."""

    def build(entry: _Entry) -> FastStepper:
        if entry.compiled is None:
            entry.compiled = CompiledCircuit(circuit)
        sources = _load_sources(circuit)
        if sources is not None:
            if entry.vector_fast is None:
                entry.vector_fast = VectorFastStepper(
                    circuit, compiled=entry.compiled, sources=(sources[1], sources[2])
                )
            if entry.dual_fast is None:
                entry.dual_fast = DualFastStepper(
                    circuit, compiled=entry.compiled, source=sources[3]
                )
            return FastStepper(circuit, compiled=entry.compiled, source=sources[0])
        entry.fast = FastStepper(circuit, compiled=entry.compiled)
        _persist_sources(circuit, entry)
        return entry.fast

    return _get(circuit, "fast", build)


def vector_fast_stepper(circuit: Circuit) -> VectorFastStepper:
    """The cached bit-parallel :class:`VectorFastStepper` for ``circuit``."""

    def build(entry: _Entry) -> VectorFastStepper:
        if entry.compiled is None:
            entry.compiled = CompiledCircuit(circuit)
        sources = _load_sources(circuit)
        if sources is not None:
            if entry.fast is None:
                entry.fast = FastStepper(
                    circuit, compiled=entry.compiled, source=sources[0]
                )
            if entry.dual_fast is None:
                entry.dual_fast = DualFastStepper(
                    circuit, compiled=entry.compiled, source=sources[3]
                )
            return VectorFastStepper(
                circuit, compiled=entry.compiled, sources=(sources[1], sources[2])
            )
        entry.vector_fast = VectorFastStepper(circuit, compiled=entry.compiled)
        _persist_sources(circuit, entry)
        return entry.vector_fast

    return _get(circuit, "vector_fast", build)


def dual_fast_stepper(circuit: Circuit) -> DualFastStepper:
    """The cached dual-machine :class:`DualFastStepper` for ``circuit``.

    This is PODEM's resimulation kernel: one stepper serves every fault of
    the circuit (stuck-at injection happens through runtime masks), so the
    engine constructs nothing per fault and the generated source is as
    cacheable as the fault-free steppers'.
    """

    def build(entry: _Entry) -> DualFastStepper:
        if entry.compiled is None:
            entry.compiled = CompiledCircuit(circuit)
        sources = _load_sources(circuit)
        if sources is not None:
            if entry.fast is None:
                entry.fast = FastStepper(
                    circuit, compiled=entry.compiled, source=sources[0]
                )
            if entry.vector_fast is None:
                entry.vector_fast = VectorFastStepper(
                    circuit, compiled=entry.compiled, sources=(sources[1], sources[2])
                )
            return DualFastStepper(
                circuit, compiled=entry.compiled, source=sources[3]
            )
        entry.dual_fast = DualFastStepper(circuit, compiled=entry.compiled)
        _persist_sources(circuit, entry)
        return entry.dual_fast

    return _get(circuit, "dual_fast", build)


def warm_compile_cache(circuit: Circuit) -> None:
    """Build every cached artifact for ``circuit`` up front.

    Used by process-pool worker initializers (one call per worker process,
    see :mod:`repro.atpg.parallel`): a freshly unpickled circuit arrives
    with no cache entry, and warming it once at initialization keeps the
    lowering and ``exec`` cost out of the first work chunk's critical path
    -- every later :class:`~repro.simulation.codegen.FastStepper` and
    PODEM engine in that process then hits the warm entry.
    """
    compiled_circuit(circuit)
    fast_stepper(circuit)
    vector_fast_stepper(circuit)
    dual_fast_stepper(circuit)


def clear_compile_cache() -> None:
    """Drop every cached artifact (tests and long-running services)."""
    with _LOCK:
        # Snapshot: breaking an entry's circuit<->artifact cycle can free the
        # circuit, firing its _forget callback, which mutates the registry.
        for ref in list(_REGISTRY.values()):
            circuit = ref()
            if circuit is not None and hasattr(circuit, _ATTR):
                delattr(circuit, _ATTR)
        _REGISTRY.clear()
        for key in _STATS:
            _STATS[key] = 0


def compile_cache_stats() -> Dict[str, int]:
    """A snapshot of cache counters: hits, misses, evictions, entries."""
    with _LOCK:
        stats = dict(_STATS)
        stats["entries"] = sum(1 for ref in _REGISTRY.values() if ref() is not None)
        return stats


__all__ = [
    "compiled_circuit",
    "dual_fast_stepper",
    "fast_stepper",
    "vector_fast_stepper",
    "warm_compile_cache",
    "clear_compile_cache",
    "compile_cache_stats",
    "set_persistent_stepper_cache",
]
