"""Code-generated scalar three-valued stepper.

For search-heavy workloads (the PODEM engine re-simulates the machine after
every decision) the interpreted :class:`SequentialSimulator` loop dominates
runtime.  This module compiles one circuit (plus optionally one stuck-at
fault, inlined as constants at the faulted line's consumer reads) into a
straight-line Python function using the dual-rail encoding::

    v1 = 1  when the signal is logic 1
    v0 = 1  when the signal is logic 0
    both 0  when the signal is X

so every gate costs a couple of bitwise integer operations and no
interpreter dispatch.  Semantics are identical to the reference simulator
(cross-checked by the test suite).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.circuit.netlist import Circuit, LineRef
from repro.circuit.types import GateType, NodeKind
from repro.faults.model import StuckAtFault
from repro.logic.three_valued import Trit, X
from repro.simulation.compiled import CompiledCircuit, Read

#: Bump whenever the generated scalar stepper source changes shape, so
#: persisted stepper artifacts from older generators are invalidated
#: (the artifact store folds this into its schema version).
CODEGEN_VERSION = 1

# trit -> (rail1, rail0)
_RAILS = ((0, 1), (1, 0), (0, 0))
# (rail1, rail0) -> trit via _TRIT[rail1][rail0]
_TRIT = ((2, 0), (1, 1))


def gate_rail_exprs(
    gate_type: GateType, reads: List[Tuple[str, str]]
) -> Tuple[str, str]:
    """Dual-rail ``(one_expr, zero_expr)`` source for one gate evaluation.

    ``reads`` are the operand rail expressions as ``(one, zero)`` source
    strings.  The formulas are width-agnostic: they are correct whether the
    rails are single bits (scalar stepper) or arbitrary-width integer masks
    (bit-parallel stepper), which is why both code generators share them.
    """
    ones = [r[0] for r in reads]
    zeros = [r[1] for r in reads]
    if gate_type in (GateType.AND, GateType.NAND):
        one_expr = " & ".join(ones)
        zero_expr = " | ".join(zeros)
        if gate_type is GateType.NAND:
            one_expr, zero_expr = zero_expr, one_expr
    elif gate_type in (GateType.OR, GateType.NOR):
        one_expr = " | ".join(ones)
        zero_expr = " & ".join(zeros)
        if gate_type is GateType.NOR:
            one_expr, zero_expr = zero_expr, one_expr
    elif gate_type in (GateType.XOR, GateType.XNOR):
        one_expr, zero_expr = ones[0], zeros[0]
        for one, zero in zip(ones[1:], zeros[1:]):
            new_one = f"(({one_expr}) & {zero} | ({zero_expr}) & {one})"
            new_zero = f"(({one_expr}) & {one} | ({zero_expr}) & {zero})"
            one_expr, zero_expr = new_one, new_zero
        if gate_type is GateType.XNOR:
            one_expr, zero_expr = zero_expr, one_expr
    elif gate_type is GateType.NOT:
        one_expr, zero_expr = zeros[0], ones[0]
    elif gate_type is GateType.BUF:
        one_expr, zero_expr = ones[0], zeros[0]
    else:  # pragma: no cover - exhaustive over GateType
        raise ValueError(f"unknown gate type {gate_type}")
    return one_expr, zero_expr


class FastStepper:
    """A compiled ``step(state, vector) -> (outputs, next_state, values)``.

    ``state``/``vector`` are tuples of trits in the canonical orders;
    ``values`` is the per-slot trit list matching
    :class:`CompiledCircuit` slot numbering (same as the reference
    simulator's ``node_values``).
    """

    def __init__(
        self,
        circuit: Circuit,
        fault: Optional[StuckAtFault] = None,
        compiled: Optional[CompiledCircuit] = None,
        source: Optional[str] = None,
        backend: str = "auto",
    ):
        # The scalar stepper carries one machine per call -- there are no
        # lane words to vectorize -- so every backend resolves to the
        # bigint (plain-int) evaluation.  The knob is accepted and
        # validated anyway so callers can thread one backend setting
        # through all three kernels uniformly.
        from repro.simulation.backends import resolve_backend

        self.backend = "bigint" if backend == "auto" else resolve_backend(backend)
        self.circuit = circuit
        self.compiled = compiled if compiled is not None else CompiledCircuit(circuit)
        self.fault = fault
        # ``source`` lets a persistent cache skip regeneration; only the
        # fault-free stepper is ever persisted (fault steppers inline the
        # fault as constants, so their source is fault-specific).
        if source is None:
            source = self._generate()
        namespace: Dict[str, object] = {"_RAILS": _RAILS, "_TRIT": _TRIT}
        exec(compile(source, f"<faststep {circuit.name}>", "exec"), namespace)
        self.step = namespace["step"]  # type: ignore[assignment]
        self._source = source

    # -- code generation ----------------------------------------------------

    def _forced_rails(self, line: LineRef) -> Optional[Tuple[int, int]]:
        if self.fault is None or self.fault.line != line:
            return None
        return _RAILS[self.fault.value]

    def _read_expr(self, read: Read) -> Tuple[str, str]:
        forced = self._forced_rails(read.line)
        if forced is not None:
            return str(forced[0]), str(forced[1])
        if read.from_register:
            return f"s{read.index}_1", f"s{read.index}_0"
        return f"v{read.index}_1", f"v{read.index}_0"

    def _generate(self) -> str:
        compiled = self.compiled
        lines: List[str] = [
            "def step(state, vector):",
        ]
        for k in range(compiled.num_registers):
            lines.append(f"    s{k}_1, s{k}_0 = _RAILS[state[{k}]]")
        for op in compiled.ops:
            slot = op.slot
            if op.kind is NodeKind.INPUT:
                lines.append(
                    f"    v{slot}_1, v{slot}_0 = _RAILS[vector[{op.pi_index}]]"
                )
                continue
            if op.kind is NodeKind.CONST0:
                lines.append(f"    v{slot}_1, v{slot}_0 = 0, 1")
                continue
            if op.kind is NodeKind.CONST1:
                lines.append(f"    v{slot}_1, v{slot}_0 = 1, 0")
                continue
            reads = [self._read_expr(r) for r in op.reads]
            if op.kind in (NodeKind.FANOUT, NodeKind.OUTPUT):
                one, zero = reads[0]
                lines.append(f"    v{slot}_1 = {one}")
                lines.append(f"    v{slot}_0 = {zero}")
                continue
            lines.extend(self._gate_lines(slot, op.gate_type, reads))
        next_state = []
        for read in compiled.register_loads:
            one, zero = self._read_expr(read)
            next_state.append(f"_TRIT[{one}][{zero}]")
        outputs = []
        for name in self.circuit.output_names:
            slot = compiled.slot_of[name]
            outputs.append(f"_TRIT[v{slot}_1][v{slot}_0]")
        values = ", ".join(
            f"_TRIT[v{k}_1][v{k}_0]" for k in range(compiled.num_slots)
        )
        lines.append(f"    outputs = ({', '.join(outputs)}{',' if outputs else ''})")
        lines.append(
            f"    next_state = ({', '.join(next_state)}{',' if next_state else ''})"
        )
        lines.append(f"    values = ({values}{',' if values else ''})")
        lines.append("    return outputs, next_state, values")
        return "\n".join(lines)

    @staticmethod
    def _gate_lines(slot: int, gate_type: GateType, reads) -> List[str]:
        one_expr, zero_expr = gate_rail_exprs(gate_type, reads)
        return [
            f"    v{slot}_1 = {one_expr}",
            f"    v{slot}_0 = {zero_expr}",
        ]

    # -- convenience ----------------------------------------------------------

    def unknown_state(self) -> Tuple[Trit, ...]:
        return (X,) * self.compiled.num_registers

    def run(self, vectors, state=None):
        """Multi-cycle convenience run (outputs list, final state)."""
        current = self.unknown_state() if state is None else tuple(state)
        outputs = []
        for vector in vectors:
            out, current, _ = self.step(current, tuple(vector))
            outputs.append(out)
        return outputs, current


__all__ = ["CODEGEN_VERSION", "FastStepper", "gate_rail_exprs"]
