"""Bit-parallel three-valued sequential simulation.

Each signal carries a :class:`BitVec` of ``width`` independent ternary
values.  Two standard uses:

* **pattern-parallel**: each bit position is a different input sequence
  (fault-free batch simulation);
* **fault-parallel** (PROOFS style): every bit position receives the *same*
  input sequence but a different machine -- bit positions are faulty
  machines, with per-position stuck-at injections supplied as rail masks.

Injections are given per line as ``(sa1_mask, sa0_mask)`` bit masks: the
value observed by the line's consumer has the masked positions forced to 1
and 0 respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit, LineRef
from repro.circuit.types import NodeKind, eval_gate_vector
from repro.logic.bitparallel import BitVec
from repro.simulation.compiled import CompiledCircuit

VectorState = Tuple[BitVec, ...]


@dataclass(frozen=True)
class VectorStepResult:
    outputs: Tuple[BitVec, ...]
    next_state: VectorState


class VectorSimulator:
    """Bit-parallel simulator over a fixed word width."""

    def __init__(
        self,
        circuit: Circuit,
        width: int,
        injections: Optional[Mapping[LineRef, Tuple[int, int]]] = None,
        compiled: Optional[CompiledCircuit] = None,
    ):
        if width <= 0:
            raise ValueError("width must be positive")
        self.circuit = circuit
        self.width = width
        self.compiled = compiled if compiled is not None else CompiledCircuit(circuit)
        self._mask = (1 << width) - 1
        self._injections: Dict[LineRef, Tuple[int, int]] = {}
        for line, (sa1, sa0) in (injections or {}).items():
            if sa1 & sa0:
                raise ValueError(f"line {line}: overlapping sa1/sa0 masks")
            if (sa1 | sa0) & ~self._mask:
                raise ValueError(f"line {line}: mask wider than {width}")
            edge = circuit.edge(line.edge_index)
            if not 1 <= line.segment <= edge.num_lines:
                raise ValueError(f"line {line} does not exist on edge {edge}")
            self._injections[line] = (sa1, sa0)

    # -- state helpers -----------------------------------------------------

    def unknown_state(self) -> VectorState:
        """All registers X in every bit position."""
        blank = BitVec(0, 0, self.width)
        return (blank,) * self.compiled.num_registers

    def broadcast_state(self, scalars: Sequence[int]) -> VectorState:
        """Replicate a scalar ternary state across all bit positions."""
        return tuple(BitVec.filled(value, self.width) for value in scalars)

    def broadcast_vector(self, scalars: Sequence[int]) -> Tuple[BitVec, ...]:
        """Replicate a scalar input vector across all bit positions."""
        return tuple(BitVec.filled(value, self.width) for value in scalars)

    def pack_vectors(self, vectors: Sequence[Sequence[int]]) -> Tuple[BitVec, ...]:
        """Pack one scalar vector per bit position (pattern-parallel input)."""
        if len(vectors) != self.width:
            raise ValueError(f"need {self.width} vectors, got {len(vectors)}")
        num_inputs = self.compiled.num_inputs
        for position, vector in enumerate(vectors):
            if len(vector) != num_inputs:
                raise ValueError(
                    f"vector {position} has {len(vector)} trits, "
                    f"expected {num_inputs}"
                )
        return tuple(
            BitVec.from_trits([v[pi] for v in vectors], width=self.width)
            for pi in range(num_inputs)
        )

    # -- core evaluation -----------------------------------------------------

    def _read(
        self,
        read,
        values: List[Optional[BitVec]],
        state: VectorState,
    ) -> BitVec:
        value = state[read.index] if read.from_register else values[read.index]
        masks = self._injections.get(read.line)
        if masks is not None:
            sa1, sa0 = masks
            value = BitVec(
                (value.ones | sa1) & ~sa0,
                (value.zeros | sa0) & ~sa1,
                self.width,
            )
        return value

    def step(
        self, state: VectorState, vector: Sequence[BitVec]
    ) -> VectorStepResult:
        compiled = self.compiled
        if len(vector) != compiled.num_inputs:
            raise ValueError(
                f"vector needs {compiled.num_inputs} BitVecs, got {len(vector)}"
            )
        values: List[Optional[BitVec]] = [None] * compiled.num_slots
        zero = BitVec.filled(0, self.width)
        one = BitVec.filled(1, self.width)
        for op in compiled.ops:
            if op.kind is NodeKind.INPUT:
                values[op.slot] = vector[op.pi_index]
            elif op.kind is NodeKind.CONST0:
                values[op.slot] = zero
            elif op.kind is NodeKind.CONST1:
                values[op.slot] = one
            else:
                operands = [self._read(read, values, state) for read in op.reads]
                if op.kind is NodeKind.GATE:
                    values[op.slot] = eval_gate_vector(op.gate_type, operands)
                else:
                    values[op.slot] = operands[0]
        next_state = tuple(
            self._read(read, values, state) for read in compiled.register_loads
        )
        outputs = tuple(
            values[compiled.slot_of[name]] for name in self.circuit.output_names
        )
        return VectorStepResult(outputs, next_state)

    def run(
        self,
        vectors: Iterable[Sequence[BitVec]],
        state: Optional[VectorState] = None,
    ) -> Tuple[List[Tuple[BitVec, ...]], VectorState]:
        """Simulate a sequence of packed vectors; returns (outputs per cycle, final state)."""
        current = self.unknown_state() if state is None else tuple(state)
        outputs: List[Tuple[BitVec, ...]] = []
        for vector in vectors:
            result = self.step(current, tuple(vector))
            outputs.append(result.outputs)
            current = result.next_state
        return outputs, current


__all__ = ["VectorSimulator", "VectorStepResult", "VectorState"]
