"""Scalar three-valued sequential simulation with stuck-at fault injection.

This simulator realizes the paper's simulation model (Section II): memory
elements start at the unknown value ``X`` unless a state is supplied, gates
evaluate in the ternary algebra, and a stuck-at fault on a line forces the
value observed by that line's consumer on every cycle.

Being scalar, it is the reference ("obviously correct") engine; the
bit-parallel engine in :mod:`repro.simulation.vector` is cross-checked
against it in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit, LineRef
from repro.circuit.types import NodeKind, eval_gate
from repro.logic.three_valued import ONE, Trit, X, ZERO
from repro.simulation.compiled import CompiledCircuit

Vector = Tuple[Trit, ...]
State = Tuple[Trit, ...]


def _iter_fault_lines(fault) -> List[Tuple[LineRef, Trit]]:
    """Normalize a fault argument to ``(line, value)`` pairs.

    Accepts ``None``, one ``(LineRef, value)`` pair, one object with
    ``line``/``value`` attributes (:class:`~repro.faults.model.StuckAtFault`
    duck type), or a list/tuple of either form (a multiple-fault machine).
    """
    if fault is None:
        return []
    if hasattr(fault, "line") and hasattr(fault, "value"):
        return [(fault.line, fault.value)]
    if isinstance(fault, (list, tuple)):
        if len(fault) == 2 and hasattr(fault[0], "edge_index"):
            return [(fault[0], fault[1])]  # one bare (LineRef, value) pair
        return [pair for item in fault for pair in _iter_fault_lines(item)]
    raise TypeError(f"unsupported fault specification: {fault!r}")


@dataclass(frozen=True)
class StepResult:
    """Values produced by one clock cycle."""

    outputs: Vector
    next_state: State
    node_values: Tuple[Trit, ...]


@dataclass(frozen=True)
class Trace:
    """Full record of a multi-cycle simulation."""

    states: Tuple[State, ...]  # states[0] is the initial state
    outputs: Tuple[Vector, ...]  # outputs[t] observed while in states[t]

    @property
    def final_state(self) -> State:
        return self.states[-1]


class SequentialSimulator:
    """Three-valued cycle-accurate simulator for one circuit.

    Args:
        circuit: the circuit to simulate.
        fault: optional ``(line, stuck_value)`` stuck-at fault -- or a list
            of faults for a multiple-fault machine; each value observed by
            a faulty line's consumer is forced every cycle.
    """

    def __init__(
        self,
        circuit: Circuit,
        fault=None,
        compiled: Optional[CompiledCircuit] = None,
    ):
        self.circuit = circuit
        self.compiled = compiled if compiled is not None else CompiledCircuit(circuit)
        self._forced: Dict[LineRef, Trit] = {}
        for line, value in _iter_fault_lines(fault):
            if value not in (ZERO, ONE):
                raise ValueError(f"stuck value must be 0 or 1, got {value!r}")
            edge = circuit.edge(line.edge_index)
            if not 1 <= line.segment <= edge.num_lines:
                raise ValueError(f"line {line} does not exist on edge {edge}")
            self._forced[line] = value

    # -- state helpers -----------------------------------------------------

    def unknown_state(self) -> State:
        """The all-X initial state (no global reset assumed)."""
        return (X,) * self.compiled.num_registers

    def state_from_string(self, text: str) -> State:
        """Build a state from a string like ``"01x"`` in canonical order."""
        from repro.logic.three_valued import trits_from_string

        state = trits_from_string(text)
        if len(state) != self.compiled.num_registers:
            raise ValueError(
                f"state needs {self.compiled.num_registers} trits, got {len(state)}"
            )
        return state

    # -- core evaluation -----------------------------------------------------

    def step(self, state: State, vector: Sequence[Trit]) -> StepResult:
        """Evaluate one clock cycle from ``state`` under input ``vector``."""
        compiled = self.compiled
        if len(vector) != compiled.num_inputs:
            raise ValueError(
                f"vector needs {compiled.num_inputs} values, got {len(vector)}"
            )
        if len(state) != compiled.num_registers:
            raise ValueError(
                f"state needs {compiled.num_registers} values, got {len(state)}"
            )
        values: List[Trit] = [X] * compiled.num_slots
        forced = self._forced
        for op in compiled.ops:
            if op.kind is NodeKind.INPUT:
                values[op.slot] = vector[op.pi_index]
            elif op.kind is NodeKind.CONST0:
                values[op.slot] = ZERO
            elif op.kind is NodeKind.CONST1:
                values[op.slot] = ONE
            else:
                operands = []
                for read in op.reads:
                    value = state[read.index] if read.from_register else values[read.index]
                    if forced:
                        value = forced.get(read.line, value)
                    operands.append(value)
                if op.kind is NodeKind.GATE:
                    values[op.slot] = eval_gate(op.gate_type, operands)
                else:  # FANOUT or OUTPUT: identity
                    values[op.slot] = operands[0]
        next_state: List[Trit] = []
        for read in compiled.register_loads:
            value = state[read.index] if read.from_register else values[read.index]
            if forced:
                value = forced.get(read.line, value)
            next_state.append(value)
        outputs = tuple(
            values[compiled.slot_of[name]] for name in self.circuit.output_names
        )
        return StepResult(outputs, tuple(next_state), tuple(values))

    def run(
        self, vectors: Iterable[Sequence[Trit]], state: Optional[State] = None
    ) -> Trace:
        """Simulate a sequence of vectors, starting from ``state`` (default all-X)."""
        current = self.unknown_state() if state is None else tuple(state)
        states: List[State] = [current]
        outputs: List[Vector] = []
        for vector in vectors:
            result = self.step(current, tuple(vector))
            outputs.append(result.outputs)
            current = result.next_state
            states.append(current)
        return Trace(tuple(states), tuple(outputs))

    def is_synchronizing(self, vectors: Sequence[Sequence[Trit]]) -> bool:
        """True when the sequence drives the all-X state to a fully known state.

        This is the *structural-based* synchronizing-sequence check of the
        paper: three-valued simulation from the unknown initial state must
        end with every memory element at a binary value.
        """
        trace = self.run(vectors)
        return all(value != X for value in trace.final_state)


def simulate(
    circuit: Circuit,
    vectors: Iterable[Sequence[Trit]],
    state: Optional[State] = None,
    fault: Optional[Tuple[LineRef, Trit]] = None,
) -> Trace:
    """One-shot convenience wrapper around :class:`SequentialSimulator`."""
    return SequentialSimulator(circuit, fault).run(vectors, state)


__all__ = [
    "SequentialSimulator",
    "StepResult",
    "Trace",
    "simulate",
    "Vector",
    "State",
]
