"""The numpy word-plane backend: levelized uint64 lowering of the kernels.

The bigint steppers (:mod:`repro.simulation.vector_codegen`) evaluate one
Python expression per gate per cycle, so a step costs O(gates) interpreter
dispatches regardless of how cheap each bitwise op is.  This module lowers
the same compiled program to a *levelized word-plane* form executed with a
handful of numpy ufunc calls per logic level:

* every dual-rail plane (the ``ones``/``zeros`` mask of one signal) is a
  row of one ``(rows, words)`` ``uint64`` array ``V``, lane ``i`` living at
  bit ``i % 64`` of word ``i // 64``;
* all gates of one topological level are evaluated together: one
  ``np.take`` gathers every operand plane into a contiguous block, one
  ``|=``/``&=`` pair applies the group's stuck-at injection masks, and one
  contiguous ``bitwise_and``/``bitwise_or`` each computes all AND-products
  and OR-unions of the level (operands are laid out as separate A/B blocks,
  not interleaved, so the gate ufuncs run on contiguous 2-D slabs);
* NOT / BUF / FANOUT / OUTPUT vertices are never materialized: a NOT is a
  rail swap and a copy is a row alias, so each is *folded* into the
  consuming read.  Folding composes the injection masks along the copy
  chain -- per lane, any chain of ``(x | force1) & ~force0`` stages is
  again a single ``(x | O) & A`` stage with::

      A' = a_outer & (o_outer | A)        O' = a_outer & (o_outer | O)

  computed once per fault group (``O subset A`` holds inductively because a
  lane is never simultaneously forced to 0 and 1).

Gate semantics match :func:`repro.simulation.codegen.gate_rail_exprs`
bit-for-bit: AND/OR reduce pairwise (associative on both rails), NAND/NOR
are AND/OR with the output rails swapped, and XOR/XNOR expand into the four
cross products and two unions of the dual-rail formula.  The parity suite
asserts packed-word equality against the bigint kernel on randomized
circuits, states and fault groups.

High bits of the last word (beyond the lane count) are kept zero in every
value row by construction: injection masks are width-clean, so ``| ORM``
cannot set garbage, and ``& ANDM`` (whose high bits may be garbage after
``~``) cannot turn zeros into ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.types import GateType, NodeKind
from repro.logic.three_valued import ONE, Trit, ZERO
from repro.simulation.backends import WORDPLANE_VERSION
from repro.simulation.vector_codegen import VectorFastStepper

_U64 = np.uint64
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)
_ONE64 = np.uint64(1)


# -- lane-word packing -------------------------------------------------------


def word_count(width: int) -> int:
    """Words needed for ``width`` lanes (the effective word count)."""
    return (max(width, 1) + 63) // 64


def width_mask_words(width: int, words: Optional[int] = None) -> "np.ndarray":
    """The ``(1 << width) - 1`` mask as a little-endian uint64 word array."""
    if words is None:
        words = word_count(width)
    mask = np.zeros(words, dtype=_U64)
    full, rem = divmod(width, 64)
    mask[:full] = _FULL
    if rem:
        mask[full] = (_ONE64 << np.uint64(rem)) - _ONE64
    return mask


def words_from_int(value: int, words: int) -> "np.ndarray":
    """Slice a non-negative bigint mask into ``words`` uint64 lane words."""
    if value < 0:
        raise ValueError("lane masks are non-negative")
    data = value.to_bytes(words * 8, "little")
    return np.frombuffer(data, dtype=_U64).copy()


def int_from_words(words: "np.ndarray") -> int:
    """Rebuild the bigint mask from its little-endian uint64 lane words."""
    return int.from_bytes(np.ascontiguousarray(words).tobytes(), "little")


# -- plan construction -------------------------------------------------------


class _Out:
    """One plane produced by a primitive op, materialized at ``level``."""

    __slots__ = ("level", "row")

    def __init__(self, level: int):
        self.level = level
        self.row = -1


# An operand: (plane, mask_ops) where plane is an int row (level-0 source)
# or an _Out, and mask_ops is the composed injection chain as a tuple of
# (slot, rail) stages, innermost first.
_Operand = Tuple[object, Tuple[Tuple[int, int], ...]]


class _Val:
    """A signal value: dual-rail planes plus a folded copy chain.

    ``stages`` records the line reads folded into this value as
    ``(slot, swap)`` pairs in base-to-consumer order; ``swap`` marks a NOT
    (rail exchange after the injection).
    """

    __slots__ = ("planes", "stages")

    def __init__(self, planes, stages=()):
        self.planes = planes
        self.stages = stages


class WordPlanePlan:
    """The levelized lowering of one circuit, shared by every runner.

    Built from the :class:`VectorFastStepper` so the injection slot
    numbering is exactly the bigint kernel's (``line_slot``) -- the same
    ``(sa1, sa0)`` group masks drive both backends.
    """

    def __init__(self, stepper: VectorFastStepper):
        self.circuit = stepper.circuit
        self.num_slots = stepper.num_injection_slots
        compiled = stepper.compiled
        line_slot = stepper.line_slot
        self.num_inputs = compiled.num_inputs
        self.num_registers = compiled.num_registers
        self.num_outputs = compiled.num_outputs

        ZROW, MROW = 0, 1
        nrows = 2
        reg_planes = []
        for _ in range(compiled.num_registers):
            reg_planes.append((nrows, nrows + 1))
            nrows += 2
        vin_planes = []
        for _ in range(compiled.num_inputs):
            vin_planes.append((nrows, nrows + 1))
            nrows += 2
        self.reg0 = 2
        self.vin0 = 2 + 2 * compiled.num_registers

        prims: List[Tuple[str, _Out, _Operand, _Operand]] = []

        def plane_level(operand: _Operand) -> int:
            plane = operand[0]
            return plane.level if isinstance(plane, _Out) else 0

        def emit(kind: str, a: _Operand, b: _Operand) -> _Out:
            out = _Out(1 + max(plane_level(a), plane_level(b)))
            prims.append((kind, out, a, b))
            return out

        def operand(val: _Val, rail: int, read_slot: Optional[int]) -> _Operand:
            stages = val.stages
            if read_slot is not None:
                stages = stages + ((read_slot, False),)
            cur = rail
            mask_ops: List[Tuple[int, int]] = []
            for slot, swap in reversed(stages):
                if swap:
                    cur ^= 1
                mask_ops.append((slot, cur))
            mask_ops.reverse()
            return (val.planes[cur], tuple(mask_ops))

        def reduce_and_or(items, base_is_and: bool):
            """Balanced pairwise reduction; exact on both rails."""
            while len(items) > 1:
                merged = []
                for i in range(0, len(items) - 1, 2):
                    (a1, a0), (b1, b0) = items[i], items[i + 1]
                    if base_is_and:
                        one = emit("and", a1, b1)
                        zero = emit("or", a0, b0)
                    else:
                        one = emit("or", a1, b1)
                        zero = emit("and", a0, b0)
                    merged.append(((one, ()), (zero, ())))
                if len(items) % 2:
                    merged.append(items[-1])
                items = merged
            return items[0]

        def xor_pair(a_pair, b_pair):
            (a1, a0), (b1, b0) = a_pair, b_pair
            p_one_a = emit("and", a1, b0)
            p_one_b = emit("and", a0, b1)
            p_zero_a = emit("and", a1, b1)
            p_zero_b = emit("and", a0, b0)
            one = emit("or", (p_one_a, ()), (p_one_b, ()))
            zero = emit("or", (p_zero_a, ()), (p_zero_b, ()))
            return ((one, ()), (zero, ()))

        vals: Dict[int, _Val] = {}

        def rsrc(read) -> _Val:
            if read.from_register:
                return _Val(reg_planes[read.index])
            return vals[read.index]

        for op in compiled.ops:
            slot = op.slot
            if op.kind is NodeKind.INPUT:
                vals[slot] = _Val(vin_planes[op.pi_index])
                continue
            if op.kind is NodeKind.CONST0:
                vals[slot] = _Val((ZROW, MROW))
                continue
            if op.kind is NodeKind.CONST1:
                vals[slot] = _Val((MROW, ZROW))
                continue
            srcs = [rsrc(r) for r in op.reads]
            gate = op.gate_type
            unary_copy = op.kind in (NodeKind.FANOUT, NodeKind.OUTPUT) or (
                op.kind is NodeKind.GATE
                and (gate in (GateType.BUF, GateType.NOT) or len(srcs) == 1)
            )
            if unary_copy:
                src = srcs[0]
                swap = op.kind is NodeKind.GATE and gate is not None and gate.inverting
                vals[slot] = _Val(
                    src.planes,
                    src.stages + ((line_slot[op.reads[0].line], swap),),
                )
                continue
            pairs = [
                (operand(v, 0, line_slot[r.line]), operand(v, 1, line_slot[r.line]))
                for v, r in zip(srcs, op.reads)
            ]
            if gate in (GateType.AND, GateType.NAND):
                one, zero = reduce_and_or(pairs, base_is_and=True)
            elif gate in (GateType.OR, GateType.NOR):
                one, zero = reduce_and_or(pairs, base_is_and=False)
            elif gate in (GateType.XOR, GateType.XNOR):
                acc = pairs[0]
                for nxt in pairs[1:]:
                    acc = xor_pair(acc, nxt)
                one, zero = acc
            else:  # pragma: no cover - exhaustive over GateType
                raise ValueError(f"unsupported gate type {gate}")
            planes = (one[0], zero[0])
            if gate.inverting:
                planes = (planes[1], planes[0])
            vals[slot] = _Val(planes)

        # Terminal gather: register-load reads (with their line injection)
        # first, in register order, then primary-output planes -- so the
        # next-state copy is one contiguous slice assignment.
        final_ops: List[_Operand] = []
        for read in compiled.register_loads:
            val = rsrc(read)
            slot = line_slot[read.line]
            final_ops.append(operand(val, 0, slot))
            final_ops.append(operand(val, 1, slot))
        for name in self.circuit.output_names:
            val = vals[compiled.slot_of[name]]
            final_ops.append(operand(val, 0, None))
            final_ops.append(operand(val, 1, None))

        # -- row assignment, level by level --------------------------------
        by_level: Dict[int, Tuple[list, list]] = {}
        for kind, out, a, b in prims:
            ands, ors = by_level.setdefault(out.level, ([], []))
            (ands if kind == "and" else ors).append((out, a, b))

        ns = self.num_slots
        zero_row = 2 * ns  # index of the all-zero row of the slot table

        def table_indices(operand_: _Operand) -> Tuple[int, int]:
            """(or_idx, and_idx_raw) into the slot table for the innermost
            stage; the AND mask is the complement of its table row."""
            mask_ops = operand_[1]
            if not mask_ops:
                return zero_row, zero_row
            slot, rail = mask_ops[0]
            return rail * ns + slot, (1 - rail) * ns + slot

        self.levels: List[dict] = []
        all_src: List[int] = []
        all_or_idx: List[int] = []
        all_and_idx: List[int] = []
        # Gather positions whose composed chain is deeper than one stage,
        # fixed up (vectorized, stage by stage) after the table gather.
        deep: List[Tuple[int, Tuple[Tuple[int, int], ...]]] = []

        def add_operands(operands: List[_Operand]) -> None:
            for op_ in operands:
                plane = op_[0]
                all_src.append(plane.row if isinstance(plane, _Out) else plane)
                or_idx, and_idx = table_indices(op_)
                all_or_idx.append(or_idx)
                all_and_idx.append(and_idx)
                if len(op_[1]) > 1:
                    deep.append((len(all_src) - 1, op_[1][1:]))

        def assign_level(ands, ors) -> None:
            nonlocal nrows
            na, no = len(ands), len(ors)
            p = nrows
            gather = 2 * na + 2 * no
            d = p + gather
            e = d + na
            nrows = e + no
            # A operands first, then B operands, per op family: the gate
            # ufuncs then run over contiguous blocks.
            operands: List[_Operand] = []
            for i, (out, a, b) in enumerate(ands):
                out.row = d + i
                operands.append(a)
            for _out, _a, b in ands:
                operands.append(b)
            for i, (out, a, b) in enumerate(ors):
                out.row = e + i
                operands.append(a)
            for _out, _a, b in ors:
                operands.append(b)
            gstart = len(all_src)
            add_operands(operands)
            self.levels.append(
                dict(p=p, d=d, e=e, na=na, no=no, gstart=gstart,
                     gend=len(all_src))
            )

        for level in sorted(by_level):
            ands, ors = by_level[level]
            assign_level(ands, ors)
        # The terminal gather is one more (gate-free) level.
        self.fstart = nrows
        gstart = len(all_src)
        add_operands(final_ops)
        self.levels.append(
            dict(p=self.fstart, d=self.fstart + len(final_ops),
                 e=self.fstart + len(final_ops), na=0, no=0,
                 gstart=gstart, gend=len(all_src))
        )
        self.nrows = self.fstart + len(final_ops)
        self.out0 = self.fstart + 2 * self.num_registers

        self.gather = len(all_src)
        self.src = np.array(all_src, dtype=np.intp)
        self.or_idx = np.array(all_or_idx, dtype=np.intp)
        self.and_idx = np.array(all_and_idx, dtype=np.intp)
        for level in self.levels:
            level["src"] = self.src[level["gstart"] : level["gend"]]

        # Deep chains, regrouped per extra stage depth for vectorized
        # composition: stage k holds every gather position whose chain has
        # a (k+2)-th stage, with that stage's table indices.
        max_extra = max((len(rest) for _pos, rest in deep), default=0)
        self.deep_stages: List[Tuple["np.ndarray", "np.ndarray", "np.ndarray"]] = []
        for k in range(max_extra):
            positions = []
            or_rows = []
            and_rows = []
            for pos, rest in deep:
                if k < len(rest):
                    slot, rail = rest[k]
                    positions.append(pos)
                    or_rows.append(rail * ns + slot)
                    and_rows.append((1 - rail) * ns + slot)
            self.deep_stages.append(
                (
                    np.array(positions, dtype=np.intp),
                    np.array(or_rows, dtype=np.intp),
                    np.array(and_rows, dtype=np.intp),
                )
            )

    def runner(self, width: int) -> "WordPlaneRunner":
        return WordPlaneRunner(self, width)


# -- execution ---------------------------------------------------------------


class WordPlaneRunner:
    """Executable state for one plan at one lane width.

    A runner owns the value array, the width mask and the gather-ordered
    injection mask matrices; :meth:`set_group`/:meth:`set_group_faults`
    load one fault group and :meth:`step` advances every lane one clock
    cycle with no per-step allocation.  Runners are reusable across groups
    (call ``set_group*`` + :meth:`reset_state` between them).
    """

    def __init__(self, plan: WordPlanePlan, width: int):
        if width < 1:
            raise ValueError("width must be at least 1")
        self.plan = plan
        self.width = width
        self.words = W = word_count(width)
        self.mask_words = width_mask_words(width, W)
        self.V = np.zeros((plan.nrows, W), dtype=_U64)
        self.V[1] = self.mask_words  # the all-ones (width-clean) row
        # Gather-ordered injection matrices (ANDM high bits may be garbage
        # after ~; value rows stay width-clean regardless) plus the per-
        # (slot, rail) mask table they are gathered from.
        self._orm = np.zeros((plan.gather, W), dtype=_U64)
        self._andm = np.full((plan.gather, W), _FULL)
        self._table = np.zeros((2 * plan.num_slots + 1, W), dtype=_U64)
        # Per-level execution records, flattened to 1-D views where the
        # storage is contiguous: ufunc dispatch overhead at these sizes
        # (~1us/call) rivals the actual bit work, and 1-D contiguous loops
        # are the cheapest shape numpy has.
        self._exec = []
        for lv in plan.levels:
            p, d, e, na, no = lv["p"], lv["d"], lv["e"], lv["na"], lv["no"]
            buf = self.V[p:d]
            q = p + 2 * na
            self._exec.append(
                (
                    lv["src"],
                    buf,
                    buf.reshape(-1),
                    self._orm[lv["gstart"] : lv["gend"]].reshape(-1),
                    self._andm[lv["gstart"] : lv["gend"]].reshape(-1),
                    self.V[p : p + na].reshape(-1) if na else None,
                    self.V[p + na : p + 2 * na].reshape(-1) if na else None,
                    self.V[d:e].reshape(-1) if na else None,
                    self.V[q : q + no].reshape(-1) if no else None,
                    self.V[q + no : q + 2 * no].reshape(-1) if no else None,
                    self.V[e : e + no].reshape(-1) if no else None,
                )
            )
        r0 = plan.reg0
        self._reg_dst = slice(r0, r0 + 2 * plan.num_registers)
        self._reg_src = slice(plan.fstart, plan.fstart + 2 * plan.num_registers)
        n = plan.num_inputs
        self._vin_ones = self.V[plan.vin0 : plan.vin0 + 2 * n : 2]
        self._vin_zeros = self.V[plan.vin0 + 1 : plan.vin0 + 2 * n + 1 : 2]
        self._zero_row = np.zeros((1, W), dtype=_U64)

    # -- group loading ------------------------------------------------------

    def _gather_masks(self) -> None:
        """Rebuild the gather-ordered ORM/ANDM matrices from the table."""
        table = self._table
        table.take(self.plan.or_idx, 0, self._orm, "clip")
        table.take(self.plan.and_idx, 0, self._andm, "clip")
        np.invert(self._andm, out=self._andm)
        if not self.plan.deep_stages:
            return
        # Deep-chain composition, restricted to rows whose outer stage
        # actually carries a mask in this group (an unfaulted outer slot
        # composes as the identity, and most slots are unfaulted).
        slot_active = table.any(axis=1)
        for positions, or_rows, and_rows in self.plan.deep_stages:
            active = np.nonzero(slot_active[or_rows] | slot_active[and_rows])[0]
            if not active.size:
                continue
            pos = positions[active]
            outer_o = table[or_rows[active]]
            outer_a = ~table[and_rows[active]]
            o = self._orm[pos]
            a = self._andm[pos]
            self._orm[pos] = outer_a & (outer_o | o)
            self._andm[pos] = outer_a & (outer_o | a)

    def set_group(self, sa1: Sequence[int], sa0: Sequence[int]) -> None:
        """Load one fault group's per-slot stuck-at masks (bigint form).

        Accepts exactly the ``(sa1, sa0)`` arrays that drive the bigint
        ``step_inject``, so group construction is shared across backends.
        """
        ns = self.plan.num_slots
        W = self.words
        table = self._table
        table[:] = 0
        for slot, value in enumerate(sa1):
            if value:
                table[slot] = words_from_int(value, W)
        for slot, value in enumerate(sa0):
            if value:
                table[ns + slot] = words_from_int(value, W)
        self._gather_masks()

    def set_group_faults(
        self, slots: Sequence[int], values: Sequence[int]
    ) -> None:
        """Load one fault group directly from per-lane fault descriptors.

        Lane ``i + 1`` carries the fault with injection slot ``slots[i]``
        stuck at ``values[i]`` (lane 0 stays fault-free), matching the
        PROOFS group layout of :mod:`repro.faultsim.parallel` without ever
        materializing bigint masks.
        """
        ns = self.plan.num_slots
        W = self.words
        table = self._table
        table[:] = 0
        count = len(slots)
        if count:
            lanes = np.arange(1, count + 1)
            slot_arr = np.asarray(slots, dtype=np.intp)
            value_arr = np.asarray(values, dtype=np.intp)
            flat = (slot_arr + ns * (1 - value_arr)) * W + (lanes >> 6)
            bits = (_ONE64 << (lanes & 63).astype(_U64))
            np.bitwise_or.at(table.reshape(-1), flat, bits)
        self._gather_masks()

    def clear_group(self) -> None:
        """Reset every injection mask (the fault-free ``step_clean`` form)."""
        self._table[:] = 0
        self._orm[:] = 0
        self._andm[:] = _FULL

    # -- state & input loading ----------------------------------------------

    def reset_state(self) -> None:
        """All registers X on every lane (the fault-group initial state)."""
        self.V[self._reg_dst] = 0

    def load_state_ints(self, state: Sequence[Tuple[int, int]]) -> None:
        """Load packed bigint ``(ones, zeros)`` rails into the registers."""
        r0 = self.plan.reg0
        for k, (ones, zeros) in enumerate(state):
            self.V[r0 + 2 * k] = words_from_int(ones, self.words)
            self.V[r0 + 2 * k + 1] = words_from_int(zeros, self.words)

    def pack_input_bits(
        self, vector: Sequence[Trit]
    ) -> Tuple["np.ndarray", "np.ndarray"]:
        """One scalar vector as ``(ones, zeros)`` bool arrays for
        :meth:`load_input_bits` (precomputable per sequence)."""
        n = self.plan.num_inputs
        if len(vector) != n:
            raise ValueError(f"vector needs {n} trits, got {len(vector)}")
        ones = np.fromiter((t == ONE for t in vector), dtype=bool, count=n)
        zeros = np.fromiter((t == ZERO for t in vector), dtype=bool, count=n)
        return ones, zeros

    def load_input_bits(self, ones: "np.ndarray", zeros: "np.ndarray") -> None:
        """Broadcast precomputed scalar input bits across every lane."""
        np.multiply(ones[:, None], self.mask_words[None, :], out=self._vin_ones)
        np.multiply(zeros[:, None], self.mask_words[None, :], out=self._vin_zeros)

    def set_broadcast_vector(self, vector: Sequence[Trit]) -> None:
        """Drive every lane with the same scalar input vector."""
        ones, zeros = self.pack_input_bits(vector)
        self.load_input_bits(ones, zeros)

    def load_vector_ints(self, vector: Sequence[Tuple[int, int]]) -> None:
        """Load packed bigint per-input rails (pattern-parallel form)."""
        v0 = self.plan.vin0
        for k, (ones, zeros) in enumerate(vector):
            self.V[v0 + 2 * k] = words_from_int(ones, self.words)
            self.V[v0 + 2 * k + 1] = words_from_int(zeros, self.words)

    # -- the step -----------------------------------------------------------

    def step(self) -> None:
        """Advance one clock cycle; inputs/state must already be loaded.

        Leaves primary-output planes in :meth:`output_view` and copies the
        next state into the register source rows.
        """
        V = self.V
        take = V.take
        band = np.bitwise_and
        bor = np.bitwise_or
        for src, buf, buf1, orm, andm, a, b, ao, oa, ob, oo in self._exec:
            # mode="clip" skips per-index bounds checking (indices are
            # plan-constructed, always in range).
            take(src, 0, buf, "clip")
            bor(buf1, orm, out=buf1)
            band(buf1, andm, out=buf1)
            if a is not None:
                band(a, b, out=ao)
            if oa is not None:
                bor(oa, ob, out=oo)
        V[self._reg_dst] = V[self._reg_src]

    # -- observation ---------------------------------------------------------

    def output_view(self) -> "np.ndarray":
        """The ``(2 * num_outputs, words)`` output plane block (ones, zeros
        interleaved, circuit output order)."""
        plan = self.plan
        return self.V[plan.out0 : plan.out0 + 2 * plan.num_outputs]

    def output_ints(self) -> List[Tuple[int, int]]:
        block = self.output_view()
        return [
            (int_from_words(block[2 * k]), int_from_words(block[2 * k + 1]))
            for k in range(self.plan.num_outputs)
        ]

    def output_pair_ints(self, index: int) -> Tuple[int, int]:
        """One output's ``(ones, zeros)`` packed bigint rails."""
        block = self.output_view()
        return int_from_words(block[2 * index]), int_from_words(block[2 * index + 1])

    def next_state_view(self) -> "np.ndarray":
        """The ``(2 * num_registers, words)`` next-state plane block after
        :meth:`step` (ones, zeros interleaved, register order)."""
        return self.V[self._reg_src]

    def state_ints(self) -> List[Tuple[int, int]]:
        plan = self.plan
        block = self.V[self._reg_src]
        return [
            (int_from_words(block[2 * k]), int_from_words(block[2 * k + 1]))
            for k in range(plan.num_registers)
        ]

    def detect_scan(
        self, live_words: "np.ndarray", potential_acc: "np.ndarray"
    ) -> Optional["np.ndarray"]:
        """Vectorized per-cycle detection prescan.

        On a cycle with no *detecting* live lane anywhere (binary fault-free
        value, binary-and-opposite faulty value) -- after dropping, the
        common case -- the live mask cannot change; lanes *unknown* under a
        binary good value (PROOFS' potentially-detected class) carry no
        cycle/output attribution in the result model, so they are simply
        OR-ed into ``potential_acc`` (the caller harvests the word once per
        group) and the method returns ``None``: the exact scan is skipped
        entirely.

        On a cycle with detections, the exact bigint scan must replay the
        per-output order (a lane dropped at an earlier output is no longer
        live -- hence not potentially detected -- at later ones), so
        ``potential_acc`` is left untouched and the method returns the
        indices of every output the ordered scan cannot skip: those with a
        detecting or unknown live lane under the start-of-cycle live mask.
        (The live mask only shrinks during a scan, so an output empty under
        the start-of-cycle mask stays a no-op.)
        """
        block = self.output_view()
        ones = block[0::2]
        zeros = block[1::2]
        good_one = (ones[:, 0] & _ONE64).astype(bool)[:, None]
        good_zero = (zeros[:, 0] & _ONE64).astype(bool)[:, None]
        binary = good_one | good_zero
        # Per output: the plane of lanes binary-opposite to a binary good
        # value (all-zero when the good value is X).
        opposite = np.where(good_one, zeros, np.where(good_zero, ones, self._zero_row))
        detecting = opposite & live_words[None, :]
        unknown = np.where(
            binary, ~(ones | zeros) & live_words[None, :], self._zero_row
        )
        hits = detecting.any(axis=1)
        if not hits.any():
            np.bitwise_or(
                potential_acc, np.bitwise_or.reduce(unknown, axis=0), out=potential_acc
            )
            return None
        return np.nonzero(hits | unknown.any(axis=1))[0]


# -- plan caching ------------------------------------------------------------

_PLAN_ATTR = "_wordplane_plan"


def wordplane_plan(stepper: VectorFastStepper) -> WordPlanePlan:
    """The (stepper-cached) word-plane plan for a compiled circuit."""
    plan = getattr(stepper, _PLAN_ATTR, None)
    if plan is None:
        plan = WordPlanePlan(stepper)
        setattr(stepper, _PLAN_ATTR, plan)
    return plan


__all__ = [
    "WORDPLANE_VERSION",
    "WordPlanePlan",
    "WordPlaneRunner",
    "int_from_words",
    "width_mask_words",
    "word_count",
    "words_from_int",
    "wordplane_plan",
]
