"""Code-generated dual-machine stepper: the PODEM resimulation kernel.

The sequential PODEM engine re-simulates the fault-free *and* the faulty
machine after every decision, then rescans the frame caches for detections,
surviving fault effects and prune conditions.  With the scalar
:class:`~repro.simulation.codegen.FastStepper` that is two compiled calls
per time frame plus three interpreted Python scans per decision.  This
module lowers a :class:`CompiledCircuit` once into a *single* straight-line
function that steps both machines together and returns the scan results as
precomputed bitmasks.

Signals travel as **two planes** of integer bitmasks::

    value -- bit *i* set when lane *i* carries logic 1
    care  -- bit *i* set when lane *i* is binary (0 or 1); clear -> X

with the invariant ``value & ~care == 0``.  A *lane* is one independent
scalar simulation: PODEM's branch-lane lookahead packs the two branches of
a decision (the assigned value and its complement) into lanes 0 and 1 of
the same pass, so backtracking to the complementary branch costs no new
simulation.  Internally gates are evaluated in the same dual-rail form the
scalar and vector code generators share (:func:`gate_rail_exprs`); the
planes are converted at the function boundary (``zeros = care & ~value``,
``care = ones | zeros``).

The faulty machine's stuck-at injection uses **runtime masks** exactly like
the PROOFS kernel's ``step_inject``: ``sa1[k]`` / ``sa0[k]`` force the
masked lanes of injection slot ``k`` (see :attr:`DualFastStepper.line_slot`)
to 1 / 0 at the line's consumer read, on the faulty plane only.  One
compiled function therefore serves *every* fault of the circuit -- the
PODEM engine never recompiles per fault, and the generated source is
cacheable in the compile cache and the persistent artifact store.

Per step the kernel also computes, in compiled code:

* ``det``   -- lanes where some primary output provably differs (a binary
  1/0 disagreement between the machines): the detection check;
* ``vdiff`` -- lanes where some vertex value provably differs;
* ``sdiff`` -- lanes where some next-state register provably differs
  (``vdiff``/``sdiff`` together replace the fault-effect rescan);
* ``same``  -- lanes where the two next states are identical *and* fully
  binary: the stored-effect prune condition.

Semantics are cross-checked against the scalar good/faulty steppers by the
test suite (``tests/simulation/test_dual_codegen.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit, LineRef
from repro.circuit.types import NodeKind
from repro.logic.three_valued import ONE, Trit, X, ZERO
from repro.simulation.codegen import gate_rail_exprs
from repro.simulation.compiled import CompiledCircuit, Read

#: Bump whenever the generated dual stepper source changes shape, so
#: persisted stepper artifacts from older generators are invalidated
#: (the artifact store folds this into its schema version).
DUAL_CODEGEN_VERSION = 1

# A bit-parallel signal value: (value, care) integer plane pair.
PlanePair = Tuple[int, int]
DualState = Tuple[PlanePair, ...]

# One step's result:
# (good_values, good_cares, bad_values, bad_cares,
#  good_next, bad_next, det, vdiff, sdiff, same)
DualStep = Tuple[
    Tuple[int, ...],
    Tuple[int, ...],
    Tuple[int, ...],
    Tuple[int, ...],
    DualState,
    DualState,
    int,
    int,
    int,
    int,
]


class DualFastStepper:
    """A compiled good+faulty ``step_dual`` over two-plane integer masks.

    The stepper is width-agnostic: the active lane count is carried by the
    ``mask`` argument (``(1 << lanes) - 1``), so the same compiled function
    serves the single-lane and the branch-lookahead calls alike.
    """

    def __init__(
        self,
        circuit: Circuit,
        compiled: Optional[CompiledCircuit] = None,
        source: Optional[str] = None,
    ):
        self.circuit = circuit
        self.compiled = compiled if compiled is not None else CompiledCircuit(circuit)
        # Injection slot numbering: identical scheme to the bit-parallel
        # fault-simulation kernel -- one slot per consumed line, assigned in
        # program order, so the numbering is deterministic and matches any
        # persisted source it was generated with.
        self.line_slot: Dict[LineRef, int] = {}
        for op in self.compiled.ops:
            for read in op.reads:
                self.line_slot.setdefault(read.line, len(self.line_slot))
        for read in self.compiled.register_loads:
            self.line_slot.setdefault(read.line, len(self.line_slot))
        self.num_injection_slots = len(self.line_slot)

        # ``source`` lets a persistent cache skip regeneration.
        if source is None:
            source = self._generate()
        namespace: Dict[str, object] = {}
        exec(compile(source, f"<dualstep {circuit.name}>", "exec"), namespace)
        self.step_dual = namespace["step_dual"]  # type: ignore[assignment]
        self._source = source

    # -- code generation ----------------------------------------------------

    def _bad_read_exprs(self, read: Read, prelude: List[str]) -> Tuple[str, str]:
        """Faulty-plane rail expressions for one read, with injection."""
        if read.from_register:
            base = (f"br{read.index}_1", f"br{read.index}_0")
        else:
            base = (f"b{read.index}_1", f"b{read.index}_0")
        slot = self.line_slot[read.line]
        one, zero = base
        prelude.append(f"    f{slot}_1 = ({one} | sa1[{slot}]) & ~sa0[{slot}]")
        prelude.append(f"    f{slot}_0 = ({zero} | sa0[{slot}]) & ~sa1[{slot}]")
        return f"f{slot}_1", f"f{slot}_0"

    @staticmethod
    def _good_read_exprs(read: Read) -> Tuple[str, str]:
        if read.from_register:
            return f"gr{read.index}_1", f"gr{read.index}_0"
        return f"g{read.index}_1", f"g{read.index}_0"

    def _generate(self) -> str:
        compiled = self.compiled
        lines: List[str] = [
            "def step_dual(good_state, bad_state, vector, mask, sa1, sa0):"
        ]
        # State prologue: planes -> rails, per machine.
        for k in range(compiled.num_registers):
            lines.append(f"    gr{k}_1, gr{k}_c = good_state[{k}]")
            lines.append(f"    gr{k}_0 = gr{k}_c & ~gr{k}_1")
            lines.append(f"    br{k}_1, br{k}_c = bad_state[{k}]")
            lines.append(f"    br{k}_0 = br{k}_c & ~br{k}_1")
        diff_terms: List[str] = []
        for op in compiled.ops:
            slot = op.slot
            if op.kind is NodeKind.INPUT:
                # Primary inputs drive both machines identically (the fault
                # is injected at consumer reads, never at the source).
                lines.append(f"    g{slot}_1, g{slot}_c = vector[{op.pi_index}]")
                lines.append(f"    g{slot}_0 = g{slot}_c & ~g{slot}_1")
                lines.append(f"    b{slot}_1 = g{slot}_1")
                lines.append(f"    b{slot}_0 = g{slot}_0")
                continue
            if op.kind is NodeKind.CONST0:
                lines.append(f"    g{slot}_1, g{slot}_0 = 0, mask")
                lines.append(f"    b{slot}_1, b{slot}_0 = 0, mask")
                continue
            if op.kind is NodeKind.CONST1:
                lines.append(f"    g{slot}_1, g{slot}_0 = mask, 0")
                lines.append(f"    b{slot}_1, b{slot}_0 = mask, 0")
                continue
            good_reads = [self._good_read_exprs(r) for r in op.reads]
            prelude: List[str] = []
            bad_reads = [self._bad_read_exprs(r, prelude) for r in op.reads]
            lines.extend(prelude)
            if op.kind in (NodeKind.FANOUT, NodeKind.OUTPUT):
                lines.append(f"    g{slot}_1 = {good_reads[0][0]}")
                lines.append(f"    g{slot}_0 = {good_reads[0][1]}")
                lines.append(f"    b{slot}_1 = {bad_reads[0][0]}")
                lines.append(f"    b{slot}_0 = {bad_reads[0][1]}")
            else:
                one, zero = gate_rail_exprs(op.gate_type, good_reads)
                lines.append(f"    g{slot}_1 = {one}")
                lines.append(f"    g{slot}_0 = {zero}")
                one, zero = gate_rail_exprs(op.gate_type, bad_reads)
                lines.append(f"    b{slot}_1 = {one}")
                lines.append(f"    b{slot}_0 = {zero}")
            diff_terms.append(
                f"g{slot}_1 & b{slot}_0 | g{slot}_0 & b{slot}_1"
            )
        # Next-state loads (injection applies to the faulty loads too).
        state_same_terms: List[str] = []
        state_diff_terms: List[str] = []
        good_next: List[str] = []
        bad_next: List[str] = []
        for k, read in enumerate(compiled.register_loads):
            one, zero = self._good_read_exprs(read)
            lines.append(f"    gn{k}_1 = {one}")
            lines.append(f"    gn{k}_0 = {zero}")
            prelude = []
            one, zero = self._bad_read_exprs(read, prelude)
            lines.extend(prelude)
            lines.append(f"    bn{k}_1 = {one}")
            lines.append(f"    bn{k}_0 = {zero}")
            good_next.append(f"(gn{k}_1, gn{k}_1 | gn{k}_0)")
            bad_next.append(f"(bn{k}_1, bn{k}_1 | bn{k}_0)")
            state_diff_terms.append(f"gn{k}_1 & bn{k}_0 | gn{k}_0 & bn{k}_1")
            state_same_terms.append(
                f"(gn{k}_1 | gn{k}_0) & (bn{k}_1 | bn{k}_0) & ~(gn{k}_1 ^ bn{k}_1)"
            )
        det_terms = []
        for name in self.circuit.output_names:
            slot = compiled.slot_of[name]
            det_terms.append(f"g{slot}_1 & b{slot}_0 | g{slot}_0 & b{slot}_1")
        lines.append(
            "    good_values = ("
            + ", ".join(f"g{k}_1" for k in range(compiled.num_slots))
            + ("," if compiled.num_slots else "")
            + ")"
        )
        lines.append(
            "    good_cares = ("
            + ", ".join(f"g{k}_1 | g{k}_0" for k in range(compiled.num_slots))
            + ("," if compiled.num_slots else "")
            + ")"
        )
        lines.append(
            "    bad_values = ("
            + ", ".join(f"b{k}_1" for k in range(compiled.num_slots))
            + ("," if compiled.num_slots else "")
            + ")"
        )
        lines.append(
            "    bad_cares = ("
            + ", ".join(f"b{k}_1 | b{k}_0" for k in range(compiled.num_slots))
            + ("," if compiled.num_slots else "")
            + ")"
        )
        lines.append(
            "    good_next = ("
            + ", ".join(good_next)
            + ("," if good_next else "")
            + ")"
        )
        lines.append(
            "    bad_next = (" + ", ".join(bad_next) + ("," if bad_next else "") + ")"
        )
        lines.append("    det = " + (" | ".join(det_terms) or "0"))
        lines.append("    vdiff = " + (" | ".join(diff_terms) or "0"))
        lines.append("    sdiff = " + (" | ".join(state_diff_terms) or "0"))
        if state_same_terms:
            lines.append("    same = mask & " + " & ".join(f"({t})" for t in state_same_terms))
        else:
            lines.append("    same = mask")
        lines.append(
            "    return (good_values, good_cares, bad_values, bad_cares, "
            "good_next, bad_next, det, vdiff, sdiff, same)"
        )
        return "\n".join(lines)

    # -- packing helpers ----------------------------------------------------

    def unknown_state(self) -> DualState:
        """All registers X in every lane."""
        return ((0, 0),) * self.compiled.num_registers

    def broadcast_state(self, scalars: Sequence[Trit], width: int) -> DualState:
        """Replicate a scalar ternary state across all lanes."""
        return tuple(_filled(value, width) for value in scalars)

    def broadcast_vector(
        self, scalars: Sequence[Trit], width: int
    ) -> Tuple[PlanePair, ...]:
        """Replicate a scalar input vector across all lanes."""
        if len(scalars) != self.compiled.num_inputs:
            raise ValueError(
                f"vector needs {self.compiled.num_inputs} trits, got {len(scalars)}"
            )
        return tuple(_filled(value, width) for value in scalars)

    def pack_vectors(
        self, vectors: Sequence[Sequence[Trit]]
    ) -> Tuple[PlanePair, ...]:
        """Pack one scalar vector per lane (lane-parallel input planes)."""
        num_inputs = self.compiled.num_inputs
        for position, vector in enumerate(vectors):
            if len(vector) != num_inputs:
                raise ValueError(
                    f"vector {position} has {len(vector)} trits, "
                    f"expected {num_inputs}"
                )
        packed = []
        for pi in range(num_inputs):
            value = 0
            care = 0
            for position, vector in enumerate(vectors):
                trit = vector[pi]
                if trit == ONE:
                    value |= 1 << position
                    care |= 1 << position
                elif trit == ZERO:
                    care |= 1 << position
                elif trit != X:
                    raise ValueError(f"not a trit: {trit!r}")
            packed.append((value, care))
        return tuple(packed)

    def injection_masks(
        self, fault=None, width: int = 1
    ) -> Tuple[List[int], List[int]]:
        """``(sa1, sa0)`` arrays forcing ``fault`` in every lane.

        ``fault`` may be ``None`` (all-clear masks).  A fault on a line
        with no consumer read -- structurally unobservable -- yields
        all-clear masks, matching the scalar fault stepper, which never
        forces anything for such a line either.
        """
        sa1 = [0] * self.num_injection_slots
        sa0 = [0] * self.num_injection_slots
        if fault is not None:
            slot = self.line_slot.get(fault.line)
            if slot is not None:
                filled = (1 << width) - 1
                if fault.value == 1:
                    sa1[slot] = filled
                else:
                    sa0[slot] = filled
        return sa1, sa0

    def source(self) -> str:
        """The generated source text (for caching and debugging)."""
        return self._source

    # -- numpy word backend --------------------------------------------------

    def word_step(self):
        """A ``step_dual``-compatible callable running on uint64 lane words.

        Every operation in the generated source is an elementwise bitwise
        op, so the *same* compiled function runs unchanged when the integer
        plane pairs are replaced by little-endian ``uint64`` word arrays.
        The returned wrapper converts at the boundary only -- bigint planes
        in, bigint planes and verdict masks out -- so it is bit-identical
        to calling :attr:`step_dual` directly (the parity suite asserts
        it).  At PODEM's two-lane widths the word form pays ufunc dispatch
        with no lane parallelism to amortize it, so ``backend="auto"``
        callers keep the bigint call; this path serves explicit
        ``backend="numpy"`` validation runs and wide-lane callers.
        """
        from repro.simulation.backends import numpy_or_none

        if numpy_or_none() is None:
            raise RuntimeError(
                "word_step requires the optional numpy dependency "
                "(install the [perf] extra)"
            )
        from repro.simulation.wordplane import (
            int_from_words,
            width_mask_words,
            word_count,
            words_from_int,
        )

        step = self.step_dual

        def _as_int(value):
            # Constant folds in the generated source (CONST planes, empty
            # det terms) stay plain ints; everything else is a word array.
            return value if isinstance(value, int) else int_from_words(value)

        def step_dual_words(good_state, bad_state, vector, mask, sa1, sa0):
            width = max(mask.bit_length(), 1)
            words = word_count(width)
            good_w = tuple(
                (words_from_int(v, words), words_from_int(c, words))
                for v, c in good_state
            )
            bad_w = tuple(
                (words_from_int(v, words), words_from_int(c, words))
                for v, c in bad_state
            )
            vec_w = tuple(
                (words_from_int(v, words), words_from_int(c, words))
                for v, c in vector
            )
            sa1_w = [words_from_int(v, words) for v in sa1]
            sa0_w = [words_from_int(v, words) for v in sa0]
            result = step(
                good_w, bad_w, vec_w, width_mask_words(width, words), sa1_w, sa0_w
            )
            gv, gc, bv, bc, gn, bn, det, vdiff, sdiff, same = result
            return (
                tuple(_as_int(x) for x in gv),
                tuple(_as_int(x) for x in gc),
                tuple(_as_int(x) for x in bv),
                tuple(_as_int(x) for x in bc),
                tuple((_as_int(a), _as_int(b)) for a, b in gn),
                tuple((_as_int(a), _as_int(b)) for a, b in bn),
                _as_int(det),
                _as_int(vdiff),
                _as_int(sdiff),
                _as_int(same),
            )

        return step_dual_words


def _filled(value: Trit, width: int) -> PlanePair:
    mask = (1 << width) - 1
    if value == ONE:
        return (mask, mask)
    if value == ZERO:
        return (0, mask)
    if value == X:
        return (0, 0)
    raise ValueError(f"not a trit: {value!r}")


def plane_trit(value: int, care: int, lane: int) -> Trit:
    """The ternary value carried by ``lane`` of a plane pair."""
    bit = 1 << lane
    if care & bit:
        return ONE if value & bit else ZERO
    return X


def plane_pair_trit(pair: PlanePair, lane: int) -> Trit:
    """The ternary value carried by ``lane`` of a ``(value, care)`` pair."""
    return plane_trit(pair[0], pair[1], lane)


__all__ = [
    "DUAL_CODEGEN_VERSION",
    "DualFastStepper",
    "DualState",
    "PlanePair",
    "plane_pair_trit",
    "plane_trit",
]
