"""Request schema for the ATPG job service.

A job request is one JSON document describing *what to run* (a circuit, in
one of four formats), *how hard to try* (an ATPG budget) and *how to run
it* (execution options).  :func:`parse_request` validates the document and
compiles it into a :class:`JobRequest`; :meth:`JobRequest.fingerprint`
folds the request into the store key that drives service-level
deduplication.

Circuit formats::

    {"format": "table2",  "fsm": "s510", "style": "jo", "script": "rugged"}
    {"format": "bench",   "source": "INPUT(a)\\n...", "name": "mychip"}
    {"format": "verilog", "source": "module m (...); ...", "name": "mychip"}
    {"format": "builder", "name": "c1",
     "signals": [{"op": "input", "name": "a"},
                 {"op": "and", "name": "g1", "args": ["a", "q"]},
                 {"op": "dff", "name": "q", "args": ["g1"]}],
     "outputs": [["z", "g1"]]}

The fingerprint deliberately ignores ``workers`` / ``engine`` / ``kernel``
/ ``backend`` / ``stg_engine``: results are bit-identical across those
execution knobs (same seed, same partition), so two requests differing
only there are the *same work* and must coalesce.  ``guidance`` is also
excluded, on the weaker interchangeability contract: a guided run may
emit a different test set, but any test set the flow emits satisfies the
same preservation guarantees, so two requests differing only in guidance
still want the same *answer* -- whichever run lands first serves both
(the pipeline's own stage keys still separate guided and unguided
artifacts underneath).  The fingerprint includes the budget fingerprint
and the ``verify`` flag, which change what is computed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.atpg.budget import AtpgBudget
from repro.atpg.guidance import GUIDANCE_MODES
from repro.circuit.netlist import Circuit, CircuitError

_FORMATS = ("table2", "bench", "verilog", "builder")
_KERNELS = ("dual", "scalar")
_BACKENDS = ("auto", "bigint", "numpy")
_STG_ENGINES = ("auto", "bitset", "reference", "reach")

_BUDGET_FIELDS = {f.name: f.type for f in dataclasses.fields(AtpgBudget)}

_OPTION_KEYS = (
    "workers",
    "engine",
    "kernel",
    "backend",
    "guidance",
    "verify",
    "stg_engine",
)


class SchemaError(ValueError):
    """A malformed or unsupported job request document."""


@dataclass
class JobRequest:
    """A validated job: circuit identity + budget + execution options."""

    label: str
    spec: Optional[object]  # CircuitSpec for table2 requests
    circuit: Optional[Circuit]  # compiled netlist for the other formats
    budget: AtpgBudget
    workers: Optional[int] = None
    engine: Optional[str] = None
    kernel: str = "dual"
    backend: str = "auto"
    guidance: str = "off"
    verify: bool = False
    stg_engine: str = "auto"
    tenant: Optional[str] = None

    def fingerprint(self) -> str:
        """The dedup key: same key == same artifacts, bit for bit.

        Table II specs key on the (fsm, style, script) triple -- the synth
        stage is deterministic, so the triple *is* the circuit identity.
        Explicit netlists key on the circuit digest plus structural
        identity, exactly like the pipeline's own stage keys.
        """
        from repro.circuit.digest import circuit_digest, structural_identity
        from repro.store.artifacts import budget_fingerprint
        from repro.store.core import ArtifactStore

        if self.spec is not None:
            identity: List[object] = [
                "table2",
                self.spec.fsm,
                self.spec.style,
                self.spec.script,
                self.spec.forward_stem_moves,
            ]
        else:
            identity = [
                "circuit",
                circuit_digest(self.circuit),
                structural_identity(self.circuit),
            ]
        return ArtifactStore.key(
            "service-flow", identity, budget_fingerprint(self.budget), self.verify
        )


def _require(payload: Dict, key: str, context: str) -> object:
    if key not in payload:
        raise SchemaError(f"{context}: missing required field {key!r}")
    return payload[key]


def _parse_table2_spec(circuit: Dict) -> object:
    from repro.core.experiments import TABLE2_CIRCUITS, CircuitSpec

    fsm = str(_require(circuit, "fsm", "table2 circuit"))
    style = str(_require(circuit, "style", "table2 circuit"))
    script = str(_require(circuit, "script", "table2 circuit"))
    script = {"sd": "delay", "sr": "rugged"}.get(script, script)
    if style not in ("ji", "jo", "jc"):
        raise SchemaError(f"table2 circuit: unknown style {style!r}")
    if script not in ("delay", "rugged"):
        raise SchemaError(f"table2 circuit: unknown script {script!r}")
    for spec in TABLE2_CIRCUITS:
        if (spec.fsm, spec.style, spec.script) == (fsm, style, script):
            return spec
    return CircuitSpec(fsm, style, script, 0)


def _parse_builder(circuit: Dict) -> Circuit:
    from repro.circuit.builder import CircuitBuilder
    from repro.circuit.types import GateType

    name = str(circuit.get("name") or "builder")
    signals = circuit.get("signals")
    if not isinstance(signals, list):
        raise SchemaError("builder circuit: 'signals' must be a list")
    builder = CircuitBuilder(name)
    for index, item in enumerate(signals):
        if not isinstance(item, dict) or "op" not in item or "name" not in item:
            raise SchemaError(
                f"builder circuit: signal #{index} needs 'op' and 'name'"
            )
        op = str(item["op"]).lower()
        signal = str(item["name"])
        args = [str(a) for a in item.get("args", [])]
        if op == "input":
            builder.input(signal)
        elif op == "const0":
            builder.const0(signal)
        elif op == "const1":
            builder.const1(signal)
        elif op == "dff":
            if len(args) != 1:
                raise SchemaError(
                    f"builder circuit: dff {signal!r} needs exactly one arg"
                )
            builder.dff(signal, args[0])
        else:
            try:
                gate_type = GateType(op)
            except ValueError:
                raise SchemaError(
                    f"builder circuit: unknown op {op!r} for signal {signal!r}"
                ) from None
            builder.gate(signal, gate_type, args)
    outputs = circuit.get("outputs")
    if not isinstance(outputs, list) or not outputs:
        raise SchemaError("builder circuit: 'outputs' must be a non-empty list")
    for index, item in enumerate(outputs):
        if isinstance(item, dict):
            pair = (item.get("name"), item.get("signal"))
        else:
            pair = tuple(item) if isinstance(item, (list, tuple)) else (None, None)
        if len(pair) != 2 or not all(isinstance(p, str) for p in pair):
            raise SchemaError(
                f"builder circuit: output #{index} must be [name, signal]"
            )
        builder.output(pair[0], pair[1])
    return builder.build(allow_dangling=True)


def _parse_circuit(circuit: object) -> "tuple[Optional[object], Optional[Circuit], str]":
    """``(spec, netlist, label)`` from the request's circuit document."""
    if not isinstance(circuit, dict):
        raise SchemaError("'circuit' must be a JSON object")
    fmt = circuit.get("format")
    if fmt not in _FORMATS:
        raise SchemaError(
            f"circuit format must be one of {', '.join(_FORMATS)}; got {fmt!r}"
        )
    try:
        if fmt == "table2":
            spec = _parse_table2_spec(circuit)
            return spec, None, spec.name
        if fmt == "bench":
            from repro.circuit.bench_io import parse_bench

            source = str(_require(circuit, "source", "bench circuit"))
            name = str(circuit.get("name") or "bench")
            netlist = parse_bench(source, name=name)
        elif fmt == "verilog":
            from repro.circuit.verilog_io import parse_verilog

            source = str(_require(circuit, "source", "verilog circuit"))
            netlist = parse_verilog(source, name=circuit.get("name"))
        else:
            netlist = _parse_builder(circuit)
    except CircuitError as error:
        raise SchemaError(f"{fmt} circuit: {error}") from error
    return None, netlist, netlist.name


def _parse_budget(raw: object) -> AtpgBudget:
    if raw is None:
        return AtpgBudget()
    if not isinstance(raw, dict):
        raise SchemaError("'budget' must be a JSON object")
    kwargs: Dict[str, object] = {}
    for key, value in raw.items():
        if key not in _BUDGET_FIELDS:
            raise SchemaError(f"budget: unknown field {key!r}")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SchemaError(f"budget: field {key!r} must be a number")
        kwargs[key] = value
    try:
        return AtpgBudget(**kwargs)
    except TypeError as error:
        raise SchemaError(f"budget: {error}") from error


def _parse_options(raw: object) -> Dict[str, object]:
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise SchemaError("'options' must be a JSON object")
    options: Dict[str, object] = {}
    for key, value in raw.items():
        if key not in _OPTION_KEYS:
            raise SchemaError(f"options: unknown option {key!r}")
        options[key] = value
    workers = options.get("workers")
    if workers is not None and (not isinstance(workers, int) or workers < 1):
        raise SchemaError("options: 'workers' must be a positive integer")
    if options.get("kernel", "dual") not in _KERNELS:
        raise SchemaError(f"options: 'kernel' must be one of {', '.join(_KERNELS)}")
    if options.get("backend", "auto") not in _BACKENDS:
        raise SchemaError(f"options: 'backend' must be one of {', '.join(_BACKENDS)}")
    if options.get("guidance", "off") not in GUIDANCE_MODES:
        raise SchemaError(
            f"options: 'guidance' must be one of {', '.join(GUIDANCE_MODES)}"
        )
    if options.get("stg_engine", "auto") not in _STG_ENGINES:
        raise SchemaError(
            f"options: 'stg_engine' must be one of {', '.join(_STG_ENGINES)}"
        )
    if not isinstance(options.get("verify", False), bool):
        raise SchemaError("options: 'verify' must be a boolean")
    return options


def parse_request(
    payload: object, default_tenant: Optional[str] = None
) -> JobRequest:
    """Validate one job document into a :class:`JobRequest`.

    Raises :class:`SchemaError` (a ``ValueError``) on any malformed input,
    with a message naming the offending field -- the server relays it
    verbatim as the 400 response body.
    """
    from repro.store.core import _TENANT_RE

    if not isinstance(payload, dict):
        raise SchemaError("job request must be a JSON object")
    unknown = set(payload) - {"circuit", "budget", "options", "tenant"}
    if unknown:
        raise SchemaError(f"unknown request fields: {', '.join(sorted(unknown))}")
    spec, circuit, label = _parse_circuit(_require(payload, "circuit", "request"))
    budget = _parse_budget(payload.get("budget"))
    options = _parse_options(payload.get("options"))
    tenant = payload.get("tenant", default_tenant)
    if tenant is not None:
        if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
            raise SchemaError(f"invalid tenant name {tenant!r}")
    return JobRequest(
        label=label,
        spec=spec,
        circuit=circuit,
        budget=budget,
        workers=options.get("workers"),
        engine=options.get("engine"),
        kernel=options.get("kernel", "dual"),
        backend=options.get("backend", "auto"),
        guidance=options.get("guidance", "off"),
        verify=options.get("verify", False),
        stg_engine=options.get("stg_engine", "auto"),
        tenant=tenant,
    )


__all__ = ["JobRequest", "SchemaError", "parse_request"]
