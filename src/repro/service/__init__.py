"""ATPG-as-a-service: the Fig. 6 flow behind an HTTP/JSON job API.

``python -m repro serve`` turns the repository's flow pipeline into a
long-running service: clients POST circuit specs (Table II triples, BENCH
netlists, toy structural Verilog, or builder JSON), the server runs the
retime-for-testability flow on a bounded worker pool, and results are
deduplicated four ways -- in-flight coalescing, in-memory cached
completions, store-cached completions, and the pipeline's own per-stage
memoization underneath.  Connections are persistent (HTTP/1.1 keep-alive
with sequential pipelining), the job table survives restarts through an
append-only index under the store root, and a queue high-water mark turns
overload into 429 + ``Retry-After`` instead of unbounded queueing.
Progress streams
back as NDJSON journal events; completed artifacts (derived test sets,
BENCH netlists, full flow reports) are served straight from the
content-addressed store.

Layers:

* :mod:`repro.service.schema` -- request validation and the dedup
  fingerprint (:func:`parse_request`, :class:`JobRequest`);
* :mod:`repro.service.jobs` -- :class:`JobManager`: queue, worker pool,
  dedup tiers, latency metrics;
* :mod:`repro.service.server` -- the stdlib asyncio HTTP server,
  :func:`run_server` (foreground) and :class:`BackgroundServer`
  (daemon-thread embedding);
* :mod:`repro.service.client` -- :class:`ServiceClient`, a stdlib
  synchronous client used by the tests and the benchmark harness.

Everything is standard library; the service adds no dependencies.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.index import JobIndex, discover_indexes
from repro.service.jobs import (
    BackpressureError,
    Job,
    JobManager,
    ServiceMetrics,
    TERMINAL_STATUSES,
)
from repro.service.schema import JobRequest, SchemaError, parse_request
from repro.service.server import BackgroundServer, ServiceServer, run_server

__all__ = [
    "BackgroundServer",
    "BackpressureError",
    "Job",
    "JobIndex",
    "JobManager",
    "JobRequest",
    "SchemaError",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "ServiceServer",
    "TERMINAL_STATUSES",
    "discover_indexes",
    "parse_request",
    "run_server",
]
