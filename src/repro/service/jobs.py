"""Job queue, worker pool and dedup logic for the ATPG service.

:class:`JobManager` owns an ``asyncio.Queue`` of :class:`Job` objects and
a bounded pool of worker tasks; each worker runs one Fig. 6 flow at a time
via ``asyncio.to_thread`` (the flow is CPU-bound Python, so the pool bound
is about memory and fairness, not parallel speedup under the GIL -- the
real parallelism knob is the per-job ``workers`` option, which fans the
ATPG stage out over processes).

Three dedup tiers, cheapest first:

* **coalesced** -- an identical request (same :meth:`JobRequest.
  fingerprint`, same tenant) is already queued or running: the submit
  returns that live job instead of enqueuing a second one.
* **cached** -- a completed flow for the fingerprint exists in the store
  under the ``"flow"`` artifact kind: the job is born ``done`` with the
  stored payload, no queue round trip at all.
* **fresh** -- nobody has done this work: enqueue, run, and *write* the
  ``"flow"`` record so the next identical request lands in tier two.

Because the ``"flow"`` record is keyed by the same fingerprint across
processes, two servers sharing one store root dedup against each other,
not just against themselves.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.pipeline.flow import FlowCancelled, FlowPipeline
from repro.service.schema import JobRequest, parse_request
from repro.store.core import ArtifactStore
from repro.store.journal import RunJournal

#: Statuses from which a job never moves again.
TERMINAL_STATUSES = ("done", "failed", "cancelled")


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty list."""
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class ServiceMetrics:
    """Counters and latency samples for one manager lifetime."""

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.coalesced = 0
        self.cached = 0
        self.queue_peak = 0
        self._latencies: Dict[str, List[float]] = {}

    def record_latency(self, dedup: str, seconds: float) -> None:
        self._latencies.setdefault(dedup, []).append(seconds)

    def latency_percentiles(self) -> Dict[str, Dict[str, float]]:
        """p50/p90/p99 submit-to-finish seconds, per dedup class."""
        out: Dict[str, Dict[str, float]] = {}
        for dedup, values in sorted(self._latencies.items()):
            ordered = sorted(values)
            out[dedup] = {
                "count": len(ordered),
                "p50": round(_percentile(ordered, 0.50), 6),
                "p90": round(_percentile(ordered, 0.90), 6),
                "p99": round(_percentile(ordered, 0.99), 6),
                "max": round(ordered[-1], 6),
            }
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "dedup": {"coalesced": self.coalesced, "cached": self.cached},
            "queue_peak": self.queue_peak,
            "latency_seconds": self.latency_percentiles(),
        }


class Job:
    """One submitted flow run and its lifecycle bookkeeping."""

    def __init__(self, job_id: str, key: str, request: JobRequest, queue_depth: int):
        self.id = job_id
        self.key = key
        self.request = request
        self.label = request.label
        self.status = "queued"
        self.dedup = "fresh"
        self.submitted = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.queue_depth_at_submit = queue_depth
        self.journal_path: Optional[str] = None
        self.error: Optional[str] = None
        self.result: Optional[Dict[str, object]] = None
        self.coalesced_hits = 0
        self.cancel_event = threading.Event()

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def as_dict(self, include_result: bool = False) -> Dict[str, object]:
        seconds = None
        if self.started is not None and self.finished is not None:
            seconds = round(self.finished - self.started, 6)
        doc: Dict[str, object] = {
            "id": self.id,
            "key": self.key,
            "label": self.label,
            "tenant": self.request.tenant,
            "status": self.status,
            "dedup": self.dedup,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "seconds": seconds,
            "queue_depth_at_submit": self.queue_depth_at_submit,
            "coalesced_hits": self.coalesced_hits,
            "journal": self.journal_path,
            "error": self.error,
            "summary": (self.result or {}).get("summary"),
        }
        if include_result:
            doc["result"] = self.result
        return doc


def flow_payload(flow, stages) -> Dict[str, object]:
    """The JSON artifact persisted (and served) for one completed flow.

    Everything a client can fetch later -- the derived test set, the ATPG
    test set, the hard netlist as BENCH, coverage numbers, the per-stage
    account -- so a cached job serves identical bytes without the circuit
    objects ever being rebuilt.
    """
    from repro.circuit.bench_io import write_bench

    return {
        "hard_circuit": flow.hard_circuit.name,
        "easy_circuit": flow.easy_circuit.name,
        "hard_dffs": flow.hard_circuit.num_registers(),
        "easy_dffs": flow.easy_circuit.num_registers(),
        "prefix_length": flow.prefix_length,
        "easy_coverage": flow.easy_coverage,
        "hard_coverage": flow.hard_coverage,
        "summary": flow.summary(),
        "atpg": {
            "cpu_seconds": flow.atpg_result.cpu_seconds,
            "fault_coverage": flow.atpg_result.fault_coverage,
            "fault_efficiency": flow.atpg_result.fault_efficiency,
            "engine": flow.atpg_result.engine,
            "kernel": flow.atpg_result.kernel,
            "guidance": flow.atpg_result.guidance,
            "workers": flow.atpg_result.workers,
            "sequences": flow.atpg_result.test_set.num_sequences,
        },
        "derived_testset": flow.derived_test_set.to_text(),
        "atpg_testset": flow.atpg_result.test_set.to_text(),
        "hard_bench": write_bench(flow.hard_circuit),
        "stages": [
            {
                "name": record.name,
                "seconds": record.seconds,
                "cpu_seconds": record.cpu_seconds,
                "cache": record.cache,
                "store_key": record.store_key,
                "detail": record.detail,
            }
            for record in stages
        ],
    }


class JobManager:
    """Bounded worker pool + dedup index over one (optional) store root."""

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        pool: int = 2,
        *,
        default_tenant: Optional[str] = None,
        keep_jobs: int = 512,
    ):
        self.store = store
        self.pool = max(1, int(pool))
        self.default_tenant = default_tenant
        self.keep_jobs = max(1, int(keep_jobs))
        self.jobs: "OrderedDict[str, Job]" = OrderedDict()
        self.metrics = ServiceMetrics()
        self._by_key: Dict[Tuple[str, str], Job] = {}
        self._tenant_stores: Dict[str, ArtifactStore] = {}
        self._queue: Optional[asyncio.Queue] = None
        self._workers: List[asyncio.Task] = []
        self._ids = itertools.count(1)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._queue = asyncio.Queue()
        self._workers = [
            asyncio.create_task(self._worker(), name=f"repro-service-worker-{i}")
            for i in range(self.pool)
        ]

    async def stop(self) -> None:
        """Cancel queued jobs, signal running flows, and reap the pool."""
        for job in self.jobs.values():
            if not job.terminal:
                job.cancel_event.set()
        for task in self._workers:
            task.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self.store is not None:
            await asyncio.to_thread(self._flush_all_counters)

    def _flush_all_counters(self) -> None:
        for store in [self.store, *self._tenant_stores.values()]:
            if store is not None:
                try:
                    store.flush_counters()
                except OSError:
                    pass

    def store_for(self, tenant: Optional[str]) -> Optional[ArtifactStore]:
        """The tenant-scoped view of the shared store root."""
        if self.store is None:
            return None
        if not tenant or tenant == self.store.tenant:
            return self.store
        if tenant not in self._tenant_stores:
            self._tenant_stores[tenant] = ArtifactStore(
                root=self.store.root, tenant=tenant
            )
        return self._tenant_stores[tenant]

    # -- submission ----------------------------------------------------------

    async def submit(self, payload: object) -> Tuple[Job, str]:
        """Parse, dedup and (if needed) enqueue one request.

        Returns ``(job, disposition)`` with disposition ``"coalesced"``
        (an identical job is already live), ``"cached"`` (served straight
        from the store) or ``"fresh"`` (enqueued).  Raises
        :class:`~repro.service.schema.SchemaError` on a bad document.
        """
        request = parse_request(payload, default_tenant=self.default_tenant)
        key = request.fingerprint()
        dedup_id = (request.tenant or "", key)
        live = self._by_key.get(dedup_id)
        if live is not None and not live.terminal:
            live.coalesced_hits += 1
            self.metrics.coalesced += 1
            return live, "coalesced"
        job = Job(
            f"j{next(self._ids):05d}",
            key,
            request,
            self._queue.qsize() if self._queue is not None else 0,
        )
        self.jobs[job.id] = job
        self._by_key[dedup_id] = job
        self.metrics.submitted += 1
        self._trim()
        store = self.store_for(request.tenant)
        if store is not None:
            cached = await asyncio.to_thread(store.get, "flow", key)
            if cached is not None:
                now = time.time()
                job.status = "done"
                job.dedup = "cached"
                job.started = job.finished = now
                job.result = cached
                self.metrics.cached += 1
                self.metrics.completed += 1
                self.metrics.record_latency("cached", now - job.submitted)
                await asyncio.to_thread(store.flush_counters)
                return job, "cached"
        if self._queue is None:
            raise RuntimeError("JobManager.start() was never awaited")
        self._queue.put_nowait(job)
        self.metrics.queue_peak = max(self.metrics.queue_peak, self._queue.qsize())
        return job, "fresh"

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; queued jobs die immediately, running jobs
        at their next stage boundary."""
        job = self.jobs.get(job_id)
        if job is None or job.terminal:
            return job
        job.cancel_event.set()
        if job.status == "queued":
            job.status = "cancelled"
            job.finished = time.time()
            self.metrics.cancelled += 1
        return job

    def _trim(self) -> None:
        while len(self.jobs) > self.keep_jobs:
            victim_id = None
            for job_id, job in self.jobs.items():
                if job.terminal:
                    victim_id = job_id
                    break
            if victim_id is None:
                return  # everything is live; never drop a live job
            victim = self.jobs.pop(victim_id)
            dedup_id = (victim.request.tenant or "", victim.key)
            if self._by_key.get(dedup_id) is victim:
                del self._by_key[dedup_id]

    # -- execution -----------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            try:
                if job.terminal:
                    continue  # cancelled while queued
                job.status = "running"
                job.started = time.time()
                try:
                    await asyncio.to_thread(self._execute, job)
                except FlowCancelled:
                    job.status = "cancelled"
                    self.metrics.cancelled += 1
                except Exception as error:  # the job fails, the pool survives
                    job.status = "failed"
                    job.error = f"{type(error).__name__}: {error}"
                    self.metrics.failed += 1
                else:
                    job.status = "done"
                    self.metrics.completed += 1
                job.finished = time.time()
                if job.status == "done":
                    self.metrics.record_latency("fresh", job.finished - job.submitted)
            finally:
                self._queue.task_done()

    def _execute(self, job: Job) -> None:
        """Run one flow synchronously (called from a worker thread)."""
        request = job.request
        store = self.store_for(request.tenant)
        journal = None
        if store is not None:
            journal = RunJournal.create(store.journal_dir, f"service-{job.label}")
            job.journal_path = journal.path
            journal.event(
                "run_start",
                run="service",
                job=job.id,
                label=job.label,
                tenant=request.tenant,
                verify=request.verify,
            )
        try:
            pipeline = FlowPipeline(
                store=store,
                journal=journal,
                workers=request.workers,
                engine=request.engine,
                kernel=request.kernel,
                backend=request.backend,
                guidance=request.guidance,
                verify=request.verify,
                stg_engine=request.stg_engine,
                cancel_event=job.cancel_event,
            )
            if request.spec is not None:
                flow = pipeline.run_spec(request.spec, request.budget).flow
            else:
                flow = pipeline.run(request.circuit, budget=request.budget)
            payload = flow_payload(flow, pipeline.stages)
            if store is not None:
                store.put(
                    "flow",
                    job.key,
                    payload,
                    pin=journal.artifact_ref if journal is not None else None,
                )
            job.result = payload
        except BaseException as error:
            if journal is not None:
                journal.close(ok=False, job=job.id, error=str(error))
            if store is not None:
                store.flush_counters()
            raise
        if journal is not None:
            journal.close(ok=True, job=job.id)
        if store is not None:
            store.flush_counters()

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """The ``/v1/stats`` document: pool, queue, jobs, dedup, latency."""
        by_status: Dict[str, int] = {}
        for job in self.jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        doc: Dict[str, object] = {
            "pool": self.pool,
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "jobs": dict(sorted(by_status.items())),
            "metrics": self.metrics.as_dict(),
        }
        if self.store is not None:
            doc["store"] = {
                "root": self.store.root,
                "session": self.store.stats.as_dict(),
                "lifetime": self.store.lifetime_counters(),
            }
        else:
            doc["store"] = None
        return doc


__all__ = [
    "Job",
    "JobManager",
    "ServiceMetrics",
    "TERMINAL_STATUSES",
    "flow_payload",
]
