"""Job queue, worker pool, dedup logic and backpressure for the ATPG service.

:class:`JobManager` owns an ``asyncio.Queue`` of :class:`Job` objects and
a bounded pool of worker tasks; each worker runs one Fig. 6 flow at a time
via ``asyncio.to_thread`` (the flow is CPU-bound Python, so the pool bound
is about memory and fairness, not parallel speedup under the GIL -- the
real parallelism knob is the per-job ``workers`` option, which fans the
ATPG stage out over processes).

Four dedup tiers, cheapest first:

* **coalesced** -- an identical request (same :meth:`JobRequest.
  fingerprint`, same tenant) is already queued or running: the submit
  returns that live job instead of enqueuing a second one.
* **cached (memory)** -- a completed job for the fingerprint is still in
  this manager's table with its result payload: the submit returns that
  canonical job itself (submits are idempotent), no store round trip and
  no new job object -- the hot path of the keep-alive benchmark, a pair
  of dictionary lookups per request.
* **cached (store)** -- a completed flow for the fingerprint exists in the
  store under the ``"flow"`` artifact kind: the job is born ``done`` with
  the stored payload, no queue round trip at all.
* **fresh** -- nobody has done this work: enqueue, run, and *write* the
  ``"flow"`` record so the next identical request lands in a cached tier.

Both cached tiers serve byte-identical response artifacts: the in-memory
payload is the same JSON-serializable document the store round-trips.

**Backpressure.**  With ``queue_high_water`` set, a fresh submission that
would push the queue past the mark raises :class:`BackpressureError`
instead of enqueueing; the server maps it to ``429`` with a
``Retry-After`` estimated from recent fresh-job latency and current depth.
Coalesced and cached submissions never consume queue slots, so they are
admitted even while fresh work is being shed -- exactly the traffic an
overloaded replica *wants* to keep serving.

**Persistence.**  Every admitted job appends its lifecycle to the
tenant-scoped :class:`~repro.service.index.JobIndex` under the store root;
``start()`` folds those logs back, so ``GET /v1/jobs`` survives restarts.
Jobs that were live at the crash come back as ``"lost"`` (a terminal
status); their fingerprints still hit the store-cached tier on resubmit.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import re
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.pipeline.flow import FlowCancelled, FlowPipeline
from repro.service.index import JobIndex, discover_indexes
from repro.service.schema import JobRequest, SchemaError, parse_request
from repro.store.core import ArtifactStore
from repro.store.journal import RunJournal

#: Bound on the raw-body -> parsed-request cache (entries, LRU).
PARSE_CACHE_SIZE = 512

#: Statuses from which a job never moves again.  ``lost`` marks a job that
#: was queued or running when its server process died -- restored from the
#: persistent index, never resumed (resubmit instead: the store-cached
#: tier answers if the flow finished, and reruns it if not).
TERMINAL_STATUSES = ("done", "failed", "cancelled", "lost")

_JOB_ID_RE = re.compile(r"^j(\d+)$")


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty list."""
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class BackpressureError(RuntimeError):
    """A fresh submission rejected because the queue passed high water.

    Carries ``retry_after`` (seconds, an estimate of when a slot frees
    up) which the server surfaces as the ``Retry-After`` header of the
    429 response.
    """

    def __init__(self, queue_depth: int, high_water: int, retry_after: float):
        super().__init__(
            f"queue depth {queue_depth} at or past high-water mark "
            f"{high_water}; retry after {retry_after:.1f}s"
        )
        self.queue_depth = queue_depth
        self.high_water = high_water
        self.retry_after = retry_after


class ServiceMetrics:
    """Counters and latency samples for one manager lifetime."""

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.coalesced = 0
        self.cached = 0
        self.cached_memory = 0  # cached hits served without a store read
        self.rejected = 0  # fresh submissions shed by backpressure
        self.restored = 0  # jobs folded back from the persistent index
        self.queue_peak = 0
        self._latencies: Dict[str, List[float]] = {}

    def record_latency(self, dedup: str, seconds: float) -> None:
        self._latencies.setdefault(dedup, []).append(seconds)

    def recent_fresh_seconds(self, window: int = 20) -> float:
        """Mean of the last ``window`` fresh-job latencies (1.0 default)."""
        fresh = self._latencies.get("fresh")
        if not fresh:
            return 1.0
        tail = fresh[-window:]
        return sum(tail) / len(tail)

    def latency_percentiles(self) -> Dict[str, Dict[str, float]]:
        """p50/p90/p99 submit-to-finish seconds, per dedup class."""
        out: Dict[str, Dict[str, float]] = {}
        for dedup, values in sorted(self._latencies.items()):
            ordered = sorted(values)
            out[dedup] = {
                "count": len(ordered),
                "p50": round(_percentile(ordered, 0.50), 6),
                "p90": round(_percentile(ordered, 0.90), 6),
                "p99": round(_percentile(ordered, 0.99), 6),
                "max": round(ordered[-1], 6),
            }
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "restored": self.restored,
            "dedup": {
                "coalesced": self.coalesced,
                "cached": self.cached,
                "cached_memory": self.cached_memory,
            },
            "queue_peak": self.queue_peak,
            "latency_seconds": self.latency_percentiles(),
        }


class Job:
    """One submitted flow run and its lifecycle bookkeeping."""

    def __init__(self, job_id: str, key: str, request: JobRequest, queue_depth: int):
        self.id = job_id
        self.key = key
        self.request: Optional[JobRequest] = request
        self.label = request.label
        self.tenant = request.tenant
        self.status = "queued"
        self.dedup = "fresh"
        self.submitted = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.queue_depth_at_submit = queue_depth
        self.journal_path: Optional[str] = None
        self.error: Optional[str] = None
        self.result: Optional[Dict[str, object]] = None
        self.summary: Optional[object] = None
        self.coalesced_hits = 0
        self.restored = False
        self.submit_response_cache: Optional[bytes] = None
        self.cancel_event = threading.Event()

    @classmethod
    def from_index(cls, doc: Dict[str, object]) -> "Job":
        """Rebuild one job from its folded persistent-index entry.

        A job whose recorded status is non-terminal was live when its
        server died; it comes back as ``"lost"`` so it reads as what it
        is -- findable history, not resumable work."""
        job = cls.__new__(cls)
        job.id = str(doc["id"])
        job.key = str(doc.get("key") or "")
        job.request = None
        job.label = doc.get("label")
        job.tenant = doc.get("tenant")
        status = str(doc.get("status") or "queued")
        job.status = status if status in TERMINAL_STATUSES else "lost"
        job.dedup = str(doc.get("dedup") or "fresh")
        job.submitted = doc.get("submitted")
        job.started = doc.get("started")
        job.finished = doc.get("finished")
        job.queue_depth_at_submit = doc.get("queue_depth_at_submit")
        job.journal_path = doc.get("journal")
        job.error = doc.get("error")
        if job.status == "lost" and job.error is None:
            job.error = "server restarted while the job was live"
        job.result = None
        job.summary = doc.get("summary")
        job.coalesced_hits = 0
        job.restored = True
        job.submit_response_cache = None
        job.cancel_event = threading.Event()
        return job

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def as_dict(self, include_result: bool = False) -> Dict[str, object]:
        seconds = None
        if self.started is not None and self.finished is not None:
            seconds = round(self.finished - self.started, 6)
        doc: Dict[str, object] = {
            "id": self.id,
            "key": self.key,
            "label": self.label,
            "tenant": self.tenant,
            "status": self.status,
            "dedup": self.dedup,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "seconds": seconds,
            "queue_depth_at_submit": self.queue_depth_at_submit,
            "coalesced_hits": self.coalesced_hits,
            "restored": self.restored,
            "journal": self.journal_path,
            "error": self.error,
            "summary": (self.result or {}).get("summary", self.summary),
        }
        if include_result:
            doc["result"] = self.result
        return doc

    def index_entry(self, event: str) -> Dict[str, object]:
        """The JSONL line persisted for one lifecycle transition."""
        return {
            "event": event,
            "id": self.id,
            "key": self.key,
            "label": self.label,
            "tenant": self.tenant,
            "status": self.status,
            "dedup": self.dedup,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "queue_depth_at_submit": self.queue_depth_at_submit,
            "journal": self.journal_path,
            "error": self.error,
            "summary": (self.result or {}).get("summary", self.summary),
        }


def flow_payload(flow, stages) -> Dict[str, object]:
    """The JSON artifact persisted (and served) for one completed flow.

    Everything a client can fetch later -- the derived test set, the ATPG
    test set, the hard netlist as BENCH, coverage numbers, the per-stage
    account -- so a cached job serves identical bytes without the circuit
    objects ever being rebuilt.
    """
    from repro.circuit.bench_io import write_bench

    return {
        "hard_circuit": flow.hard_circuit.name,
        "easy_circuit": flow.easy_circuit.name,
        "hard_dffs": flow.hard_circuit.num_registers(),
        "easy_dffs": flow.easy_circuit.num_registers(),
        "prefix_length": flow.prefix_length,
        "easy_coverage": flow.easy_coverage,
        "hard_coverage": flow.hard_coverage,
        "summary": flow.summary(),
        "atpg": {
            "cpu_seconds": flow.atpg_result.cpu_seconds,
            "fault_coverage": flow.atpg_result.fault_coverage,
            "fault_efficiency": flow.atpg_result.fault_efficiency,
            "engine": flow.atpg_result.engine,
            "kernel": flow.atpg_result.kernel,
            "guidance": flow.atpg_result.guidance,
            "workers": flow.atpg_result.workers,
            "sequences": flow.atpg_result.test_set.num_sequences,
        },
        "derived_testset": flow.derived_test_set.to_text(),
        "atpg_testset": flow.atpg_result.test_set.to_text(),
        "hard_bench": write_bench(flow.hard_circuit),
        "stages": [
            {
                "name": record.name,
                "seconds": record.seconds,
                "cpu_seconds": record.cpu_seconds,
                "cache": record.cache,
                "store_key": record.store_key,
                "detail": record.detail,
            }
            for record in stages
        ],
    }


class JobManager:
    """Bounded worker pool + dedup index over one (optional) store root."""

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        pool: int = 2,
        *,
        default_tenant: Optional[str] = None,
        keep_jobs: int = 512,
        queue_high_water: Optional[int] = None,
    ):
        self.store = store
        self.pool = max(1, int(pool))
        self.default_tenant = default_tenant
        self.keep_jobs = max(1, int(keep_jobs))
        self.queue_high_water = (
            None if queue_high_water is None else max(0, int(queue_high_water))
        )
        self.jobs: "OrderedDict[str, Job]" = OrderedDict()
        self.metrics = ServiceMetrics()
        self._by_key: Dict[Tuple[str, str], Job] = {}
        self._parse_cache: "OrderedDict[bytes, Tuple[JobRequest, str]]" = OrderedDict()
        self._tenant_stores: Dict[str, ArtifactStore] = {}
        self._indexes: Dict[str, JobIndex] = {}
        self._queue: Optional[asyncio.Queue] = None
        self._workers: List[asyncio.Task] = []
        self._ids = itertools.count(1)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._queue = asyncio.Queue()
        if self.store is not None:
            await asyncio.to_thread(self._restore_jobs)
        self._workers = [
            asyncio.create_task(self._worker(), name=f"repro-service-worker-{i}")
            for i in range(self.pool)
        ]

    async def stop(self) -> None:
        """Cancel queued jobs, signal running flows, and reap the pool."""
        for job in self.jobs.values():
            if not job.terminal:
                job.cancel_event.set()
        for task in self._workers:
            task.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self.store is not None:
            await asyncio.to_thread(self._flush_all_counters)

    def _flush_all_counters(self) -> None:
        for store in [self.store, *self._tenant_stores.values()]:
            if store is not None:
                try:
                    store.flush_counters()
                except OSError:
                    pass

    def store_for(self, tenant: Optional[str]) -> Optional[ArtifactStore]:
        """The tenant-scoped view of the shared store root."""
        if self.store is None:
            return None
        if not tenant or tenant == self.store.tenant:
            return self.store
        if tenant not in self._tenant_stores:
            self._tenant_stores[tenant] = ArtifactStore(
                root=self.store.root, tenant=tenant
            )
        return self._tenant_stores[tenant]

    # -- persistent job index ------------------------------------------------

    def index_for(self, tenant: Optional[str]) -> Optional[JobIndex]:
        store = self.store_for(tenant)
        if store is None:
            return None
        slot = tenant or ""
        if slot not in self._indexes:
            self._indexes[slot] = JobIndex.for_store(store)
        return self._indexes[slot]

    def _index_event(self, job: Job, event: str) -> None:
        index = self.index_for(job.tenant)
        if index is not None:
            try:
                index.append(job.index_entry(event))
            except OSError:
                pass  # a full disk must not take the API down

    def _restore_jobs(self) -> None:
        """Fold every persistent index under the root back into the job
        table (statuses only; results reload lazily from the store)."""
        entries: Dict[str, Dict[str, object]] = {}
        for index in discover_indexes(self.store.root):
            entries.update(index.load())
        restored = sorted(
            entries.values(),
            key=lambda doc: (doc.get("submitted") or 0.0, str(doc.get("id"))),
        )[-self.keep_jobs :]
        highest = 0
        for doc in restored:
            job = Job.from_index(doc)
            self.jobs[job.id] = job
            self.metrics.restored += 1
            match = _JOB_ID_RE.match(job.id)
            if match:
                highest = max(highest, int(match.group(1)))
        self._ids = itertools.count(highest + 1)

    def compact_indexes(self, force: bool = False) -> Dict[str, int]:
        """Compact every index under the root (the GC loop calls this)."""
        if self.store is None:
            return {}
        results: Dict[str, int] = {}
        for index in discover_indexes(self.store.root):
            results[index.path] = index.compact(keep=self.keep_jobs, force=force)
        return results

    def load_result(self, job: Job) -> Optional[Dict[str, object]]:
        """The job's result payload, reloading a restored job's from the
        store on first demand (called from a worker thread)."""
        if job.result is None and job.status == "done" and job.key:
            store = self.store_for(job.tenant)
            if store is not None:
                job.result = store.get("flow", job.key)
        return job.result

    # -- submission ----------------------------------------------------------

    def _parse(self, payload: object, raw: Optional[bytes]) -> Tuple[JobRequest, str]:
        """Parse + fingerprint one request, memoized on the raw body.

        Validation and fingerprinting (canonical JSON + SHA) dominate the
        cached-submit hot path; byte-identical request documents -- the
        defining workload of that path -- skip both via a bounded LRU.
        """
        if raw is not None:
            hit = self._parse_cache.get(raw)
            if hit is not None:
                self._parse_cache.move_to_end(raw)
                return hit
            if payload is None:
                try:
                    payload = json.loads(raw.decode("utf-8")) if raw else None
                except (json.JSONDecodeError, UnicodeDecodeError) as error:
                    raise SchemaError(f"request body is not JSON: {error}") from None
        request = parse_request(payload, default_tenant=self.default_tenant)
        key = request.fingerprint()
        if raw is not None:
            self._parse_cache[raw] = (request, key)
            while len(self._parse_cache) > PARSE_CACHE_SIZE:
                self._parse_cache.popitem(last=False)
        return request, key

    async def submit(
        self, payload: object = None, *, raw: Optional[bytes] = None
    ) -> Tuple[Job, str]:
        """Parse, dedup and (if needed) enqueue one request.

        Pass either the decoded ``payload`` document, the ``raw`` body
        bytes (preferred on the server path: identical bodies skip
        parsing entirely), or both.  Returns ``(job, disposition)`` with
        disposition ``"coalesced"`` (an identical job is already live),
        ``"cached"`` (served from this manager's memory or from the
        store) or ``"fresh"`` (enqueued).  Raises
        :class:`~repro.service.schema.SchemaError` on a bad document and
        :class:`BackpressureError` when fresh work would push the queue
        past the high-water mark.
        """
        if self._queue is None:
            raise RuntimeError("JobManager.start() was never awaited")
        request, key = self._parse(payload, raw)
        dedup_id = (request.tenant or "", key)
        live = self._by_key.get(dedup_id)
        if live is not None and not live.terminal:
            live.coalesced_hits += 1
            self.metrics.coalesced += 1
            return live, "coalesced"
        if live is not None and live.status == "done" and live.result is not None:
            # In-memory cached tier: the finished twin is still in the
            # job table -- the submit is idempotent, so answer with the
            # canonical job itself.  No store I/O, no new job object: a
            # pair of dictionary lookups per request.
            self.metrics.cached += 1
            self.metrics.cached_memory += 1
            self.metrics.record_latency("cached", 0.0)
            return live, "cached"
        store = self.store_for(request.tenant)
        if store is not None:
            cached = await asyncio.to_thread(store.get, "flow", key)
            if cached is not None:
                job = self._born_done(key, request, cached)
                await asyncio.to_thread(store.flush_counters)
                return job, "cached"
        depth = self._queue.qsize()
        if self.queue_high_water is not None and depth >= self.queue_high_water:
            self.metrics.rejected += 1
            raise BackpressureError(
                depth, self.queue_high_water, self._retry_after(depth)
            )
        job = Job(f"j{next(self._ids):05d}", key, request, depth)
        self.jobs[job.id] = job
        self._by_key[dedup_id] = job
        self.metrics.submitted += 1
        self._trim()
        self._queue.put_nowait(job)
        self.metrics.queue_peak = max(self.metrics.queue_peak, self._queue.qsize())
        self._index_event(job, "submit")
        return job, "fresh"

    def _born_done(self, key: str, request: JobRequest, result: Dict) -> Job:
        """A job created already-terminal from a cached flow payload."""
        job = Job(
            f"j{next(self._ids):05d}",
            key,
            request,
            self._queue.qsize() if self._queue is not None else 0,
        )
        now = time.time()
        job.status = "done"
        job.dedup = "cached"
        job.started = job.finished = now
        job.result = result
        self.jobs[job.id] = job
        self._by_key[(request.tenant or "", key)] = job
        self.metrics.submitted += 1
        self.metrics.cached += 1
        self.metrics.completed += 1
        self.metrics.record_latency("cached", now - job.submitted)
        self._trim()
        # Deliberately NOT indexed: a cached-born job is a serving record,
        # not work -- the fresh twin that produced the payload is already
        # in the persistent index, and skipping the disk append keeps the
        # cached hot path free of I/O.
        return job

    def _retry_after(self, depth: int) -> float:
        """Seconds until a queue slot plausibly frees: depth of work ahead
        over pool width, scaled by recent fresh latency, clamped sane."""
        estimate = (max(depth, 1) / self.pool) * self.metrics.recent_fresh_seconds()
        return min(60.0, max(1.0, estimate))

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; queued jobs die immediately, running jobs
        at their next stage boundary."""
        job = self.jobs.get(job_id)
        if job is None or job.terminal:
            return job
        job.cancel_event.set()
        if job.status == "queued":
            job.status = "cancelled"
            job.finished = time.time()
            self.metrics.cancelled += 1
            self._index_event(job, "end")
        return job

    def _trim(self) -> None:
        while len(self.jobs) > self.keep_jobs:
            victim_id = None
            for job_id, job in self.jobs.items():
                if job.terminal:
                    victim_id = job_id
                    break
            if victim_id is None:
                return  # everything is live; never drop a live job
            victim = self.jobs.pop(victim_id)
            dedup_id = (victim.tenant or "", victim.key)
            if self._by_key.get(dedup_id) is victim:
                del self._by_key[dedup_id]

    # -- execution -----------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            try:
                if job.terminal:
                    continue  # cancelled while queued
                job.status = "running"
                job.started = time.time()
                try:
                    await asyncio.to_thread(self._execute, job)
                except FlowCancelled:
                    job.status = "cancelled"
                    self.metrics.cancelled += 1
                except Exception as error:  # the job fails, the pool survives
                    job.status = "failed"
                    job.error = f"{type(error).__name__}: {error}"
                    self.metrics.failed += 1
                else:
                    job.status = "done"
                    self.metrics.completed += 1
                job.finished = time.time()
                if job.status == "done":
                    self.metrics.record_latency("fresh", job.finished - job.submitted)
                self._index_event(job, "end")
            finally:
                self._queue.task_done()

    def _execute(self, job: Job) -> None:
        """Run one flow synchronously (called from a worker thread)."""
        request = job.request
        store = self.store_for(request.tenant)
        journal = None
        if store is not None:
            journal = RunJournal.create(store.journal_dir, f"service-{job.label}")
            job.journal_path = journal.path
            journal.event(
                "run_start",
                run="service",
                job=job.id,
                label=job.label,
                tenant=request.tenant,
                verify=request.verify,
            )
        try:
            pipeline = FlowPipeline(
                store=store,
                journal=journal,
                workers=request.workers,
                engine=request.engine,
                kernel=request.kernel,
                backend=request.backend,
                guidance=request.guidance,
                verify=request.verify,
                stg_engine=request.stg_engine,
                cancel_event=job.cancel_event,
            )
            if request.spec is not None:
                flow = pipeline.run_spec(request.spec, request.budget).flow
            else:
                flow = pipeline.run(request.circuit, budget=request.budget)
            payload = flow_payload(flow, pipeline.stages)
            if store is not None:
                store.put(
                    "flow",
                    job.key,
                    payload,
                    pin=journal.artifact_ref if journal is not None else None,
                )
            job.result = payload
        except BaseException as error:
            if journal is not None:
                journal.close(ok=False, job=job.id, error=str(error))
            if store is not None:
                store.flush_counters()
            raise
        if journal is not None:
            journal.close(ok=True, job=job.id)
        if store is not None:
            store.flush_counters()

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """The ``/v1/stats`` document: pool, queue, jobs, dedup, latency."""
        by_status: Dict[str, int] = {}
        for job in self.jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        doc: Dict[str, object] = {
            "pool": self.pool,
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "queue_high_water": self.queue_high_water,
            "jobs": dict(sorted(by_status.items())),
            "metrics": self.metrics.as_dict(),
        }
        if self.store is not None:
            doc["store"] = {
                "root": self.store.root,
                "session": self.store.stats.as_dict(),
                "lifetime": self.store.lifetime_counters(),
            }
        else:
            doc["store"] = None
        return doc


__all__ = [
    "BackpressureError",
    "Job",
    "JobManager",
    "ServiceMetrics",
    "TERMINAL_STATUSES",
    "flow_payload",
]
