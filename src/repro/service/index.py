"""Persistent append-only job index for the ATPG service.

The in-memory job table of :class:`~repro.service.jobs.JobManager` dies
with the process; the artifacts it produced do not.  This module closes
the gap: every job lifecycle transition appends one JSON line to a
tenant-scoped ``jobs-index.jsonl`` under the store root, so a restarted
server can list every job it (or a sibling sharing the root) ever ran,
and a resubmission of any of them lands straight in the store-cached
dedup tier.

Format: one JSON object per line, ``{"event": "submit"|"end"|"snapshot",
"id": ..., ...}``.  :meth:`JobIndex.load` folds the lines by job id (later
lines update earlier ones), so the on-disk file is a log, not a table --
appends are atomic on POSIX for sub-``PIPE_BUF`` lines opened with
``O_APPEND``, which keeps two servers sharing one root safe without any
locking on the hot path.  :meth:`JobIndex.compact` rewrites the log as one
``snapshot`` line per surviving job under the store's file lock (GC calls
it), bounding the file the same way ``keep_jobs`` bounds the in-memory
table.

A job that was still ``queued`` or ``running`` when its server died has a
``submit`` line and no ``end`` line; :meth:`JobIndex.load` reports it with
its recorded status and the restoring manager marks it ``lost`` -- honest
bookkeeping, not a silent disappearance.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Dict, List, Optional

from repro.store.locks import FileLock, LOCKS_DIRNAME

#: Compact when the log holds this many times more lines than live jobs.
COMPACT_SLACK = 4


class JobIndex:
    """One append-only JSONL job index file (plus its compaction lock)."""

    def __init__(self, path: str, lock_path: Optional[str] = None):
        self.path = os.path.abspath(path)
        self.lock_path = lock_path
        self._lock = threading.Lock()  # serializes this process's appends

    @classmethod
    def for_store(cls, store) -> "JobIndex":
        """The index of one :class:`~repro.store.core.ArtifactStore` view
        (tenant-scoped: each tenant namespace gets its own file)."""
        tenant = store.tenant or "shared"
        lock_path = os.path.join(
            store.root, LOCKS_DIRNAME, f"jobs-index-{tenant}.lock"
        )
        return cls(store.jobs_index_path, lock_path=lock_path)

    # -- writing -------------------------------------------------------------

    def append(self, entry: Dict[str, object]) -> None:
        """Append one lifecycle event; whole-line, flushed, crash-safe.

        The file is opened per append so a concurrent :meth:`compact`
        (which replaces the file) can never strand this writer on an
        unlinked inode.
        """
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()

    # -- reading -------------------------------------------------------------

    def load(self) -> Dict[str, Dict[str, object]]:
        """Fold the log into ``{job_id: merged_entry}`` (later lines win
        per field).  Unparseable lines -- a torn write at a kill point --
        are skipped, like the run journal's."""
        jobs: Dict[str, Dict[str, object]] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return jobs
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(entry, dict) or not entry.get("id"):
                continue
            job_id = str(entry["id"])
            merged = jobs.setdefault(job_id, {})
            for key, value in entry.items():
                if key == "event":
                    continue
                if value is not None or key not in merged:
                    merged[key] = value
        return jobs

    def line_count(self) -> int:
        try:
            with open(self.path, "rb") as handle:
                return sum(1 for _ in handle)
        except OSError:
            return 0

    # -- compaction ----------------------------------------------------------

    def compact(self, keep: Optional[int] = None, force: bool = False) -> int:
        """Rewrite the log as one ``snapshot`` line per job, newest last,
        dropping all but the most recent ``keep`` jobs.  Runs under the
        store-level file lock so two servers sharing the root cannot
        interleave a rewrite; appends racing the ``os.replace`` land in
        the new file (appenders reopen per line).  Returns the number of
        jobs kept, or ``-1`` when the log is small enough to leave alone
        (pass ``force=True`` to compact regardless)."""
        lock = FileLock(self.lock_path) if self.lock_path else None
        if lock is not None:
            lock.acquire()
        try:
            jobs = self.load()
            if not force and self.line_count() <= COMPACT_SLACK * max(len(jobs), 1):
                return -1
            ordered: List[Dict[str, object]] = sorted(
                jobs.values(),
                key=lambda doc: (doc.get("submitted") or 0.0, str(doc.get("id"))),
            )
            if keep is not None:
                ordered = ordered[-keep:]
            directory = os.path.dirname(self.path) or "."
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".index.tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    for doc in ordered:
                        snapshot = dict(doc)
                        snapshot["event"] = "snapshot"
                        handle.write(json.dumps(snapshot, sort_keys=True) + "\n")
                os.replace(tmp_path, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
            return len(ordered)
        finally:
            if lock is not None:
                lock.release()


def discover_indexes(root: str) -> List[JobIndex]:
    """Every job index under one store root: shared plus all tenants."""
    indexes = [
        JobIndex(
            os.path.join(root, "jobs-index.jsonl"),
            lock_path=os.path.join(root, LOCKS_DIRNAME, "jobs-index-shared.lock"),
        )
    ]
    tenants_dir = os.path.join(root, "tenants")
    if os.path.isdir(tenants_dir):
        for name in sorted(os.listdir(tenants_dir)):
            candidate = os.path.join(tenants_dir, name, "jobs-index.jsonl")
            if os.path.isfile(candidate):
                indexes.append(
                    JobIndex(
                        candidate,
                        lock_path=os.path.join(
                            root, LOCKS_DIRNAME, f"jobs-index-{name}.lock"
                        ),
                    )
                )
    return indexes


__all__ = ["COMPACT_SLACK", "JobIndex", "discover_indexes"]
