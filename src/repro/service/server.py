"""The asyncio HTTP/JSON front end of the ATPG service.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` -- no
framework, no dependency, every connection ``Connection: close``.  The
API surface::

    GET    /healthz                      liveness probe
    GET    /v1/stats                     pool / queue / dedup / latency / store
    POST   /v1/jobs                      submit a job document (see schema)
    GET    /v1/jobs                      list known jobs
    GET    /v1/jobs/<id>                 one job (``?result=1`` inlines the result)
    DELETE /v1/jobs/<id>                 cancel (queued: now; running: next stage)
    GET    /v1/jobs/<id>/events          NDJSON stream of the run journal, live
    GET    /v1/jobs/<id>/artifacts/<n>   result | testset | atpg-testset | bench | journal

``POST /v1/jobs`` answers 202 for fresh/coalesced submissions and 200 for
store-cached ones; the body always carries ``disposition`` so clients can
tell the tiers apart.  The events endpoint incrementally tails the job's
journal file (:func:`~repro.store.journal.tail_journal`) while the flow is
still writing it and finishes with a synthetic ``job_end`` event, so
``curl`` shows live per-stage progress.

:class:`BackgroundServer` runs the whole stack (manager + server) on a
daemon thread with its own event loop -- the harness tests, the benchmark
and embedding applications use it to get a real HTTP service inside one
process.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
from typing import Dict, Optional, Tuple

from repro.service.jobs import Job, JobManager
from repro.service.schema import SchemaError
from repro.store.journal import tail_journal

#: Upper bound on request bodies; circuits are text, a megabyte is huge.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Poll interval of the event stream between journal reads.
EVENT_POLL_SECONDS = 0.05

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

_ARTIFACT_NAMES = ("result", "testset", "atpg-testset", "bench", "journal")


class _BadRequest(Exception):
    """Internal: maps straight to a 400 response."""


def _head(status: int, content_type: str, length: Optional[int] = None) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


class ServiceServer:
    """One listening socket over one :class:`JobManager`."""

    def __init__(self, manager: JobManager, host: str = "127.0.0.1", port: int = 0):
        self.manager = manager
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._process(reader, writer)
        except (_BadRequest, asyncio.IncompleteReadError, ValueError) as error:
            self._try_json(writer, 400, {"error": str(error) or "bad request"})
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as error:  # never let one connection kill the loop
            self._try_json(writer, 500, {"error": f"{type(error).__name__}: {error}"})
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _try_json(self, writer: asyncio.StreamWriter, status: int, doc: Dict) -> None:
        try:
            body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
            writer.write(_head(status, "application/json", len(body)) + body)
        except (ConnectionError, OSError):
            pass

    async def _process(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        request_line = await reader.readline()
        if not request_line:
            return
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _BadRequest("malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        if length > MAX_BODY_BYTES:
            self._try_json(writer, 413, {"error": "request body too large"})
            return
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        await self._route(method.upper(), path, query, body, writer)

    # -- routing -------------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        query: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        segments = [s for s in path.split("/") if s]
        if path == "/healthz" and method == "GET":
            self._try_json(writer, 200, {"ok": True})
            return
        if path == "/v1/stats" and method == "GET":
            self._try_json(writer, 200, self.manager.stats())
            return
        if path == "/v1/jobs":
            if method == "POST":
                await self._submit(body, writer)
            elif method == "GET":
                jobs = [job.as_dict() for job in self.manager.jobs.values()]
                self._try_json(writer, 200, {"jobs": jobs})
            else:
                self._try_json(writer, 405, {"error": f"{method} not allowed"})
            return
        if len(segments) >= 3 and segments[:2] == ["v1", "jobs"]:
            job = self.manager.get(segments[2])
            if job is None:
                self._try_json(writer, 404, {"error": f"no job {segments[2]!r}"})
                return
            if len(segments) == 3:
                if method == "GET":
                    include = "result=1" in query or "result=true" in query
                    self._try_json(writer, 200, job.as_dict(include_result=include))
                elif method == "DELETE":
                    self.manager.cancel(job.id)
                    self._try_json(writer, 200, job.as_dict())
                else:
                    self._try_json(writer, 405, {"error": f"{method} not allowed"})
                return
            if segments[3] == "events" and len(segments) == 4 and method == "GET":
                await self._stream_events(writer, job)
                return
            if segments[3] == "artifacts" and len(segments) == 5 and method == "GET":
                self._artifact(writer, job, segments[4])
                return
        self._try_json(writer, 404, {"error": f"no route for {method} {path}"})

    async def _submit(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise _BadRequest(f"request body is not JSON: {error}") from error
        try:
            job, disposition = await self.manager.submit(payload)
        except SchemaError as error:
            self._try_json(writer, 400, {"error": str(error)})
            return
        doc = job.as_dict()
        doc["disposition"] = disposition
        self._try_json(writer, 200 if disposition == "cached" else 202, doc)

    # -- event streaming -----------------------------------------------------

    async def _stream_events(self, writer: asyncio.StreamWriter, job: Job) -> None:
        """NDJSON-tail the job's journal until the job is terminal."""
        writer.write(_head(200, "application/x-ndjson"))
        await writer.drain()
        offset = 0

        async def pump() -> None:
            nonlocal offset
            if job.journal_path is None:
                return
            events, offset = tail_journal(job.journal_path, offset)
            for event in events:
                writer.write(
                    (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                )
            if events:
                await writer.drain()

        while True:
            await pump()
            if job.terminal:
                await pump()  # catch events written right at the finish line
                closing = {
                    "t": round(time.time(), 6),
                    "event": "job_end",
                    "job": job.id,
                    "status": job.status,
                    "dedup": job.dedup,
                    "error": job.error,
                }
                writer.write(
                    (json.dumps(closing, sort_keys=True) + "\n").encode("utf-8")
                )
                await writer.drain()
                return
            await asyncio.sleep(EVENT_POLL_SECONDS)

    # -- artifacts -----------------------------------------------------------

    def _artifact(self, writer: asyncio.StreamWriter, job: Job, name: str) -> None:
        if name not in _ARTIFACT_NAMES:
            self._try_json(
                writer,
                404,
                {"error": f"unknown artifact {name!r}; one of {_ARTIFACT_NAMES}"},
            )
            return
        if name == "journal":
            if job.journal_path is None:
                self._try_json(writer, 404, {"error": "job has no journal"})
                return
            try:
                with open(job.journal_path, "rb") as handle:
                    data = handle.read()
            except OSError as error:
                self._try_json(writer, 404, {"error": str(error)})
                return
            writer.write(_head(200, "application/x-ndjson", len(data)) + data)
            return
        if job.result is None:
            self._try_json(
                writer, 409, {"error": f"job {job.id} is {job.status}, not done"}
            )
            return
        if name == "result":
            body = (json.dumps(job.result, sort_keys=True) + "\n").encode("utf-8")
            writer.write(_head(200, "application/json", len(body)) + body)
            return
        field = {
            "testset": "derived_testset",
            "atpg-testset": "atpg_testset",
            "bench": "hard_bench",
        }[name]
        text = job.result.get(field)
        if not isinstance(text, str):
            self._try_json(writer, 404, {"error": f"result has no {field!r}"})
            return
        data = text.encode("utf-8")
        writer.write(_head(200, "text/plain; charset=utf-8", len(data)) + data)


# -- entry points ------------------------------------------------------------


async def _serve_forever(
    host: str,
    port: int,
    store,
    pool: int,
    default_tenant: Optional[str],
    gc_interval: Optional[float],
    gc_max_bytes: Optional[int],
    tenant_max_bytes: Optional[int],
) -> None:
    manager = JobManager(store=store, pool=pool, default_tenant=default_tenant)
    await manager.start()
    server = ServiceServer(manager, host, port)
    await server.start()
    print(f"listening on http://{server.host}:{server.port}", file=sys.stderr, flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass

    async def gc_loop() -> None:
        while store is not None and gc_interval:
            await asyncio.sleep(gc_interval)
            await asyncio.to_thread(
                store.gc, gc_max_bytes, (), tenant_max_bytes
            )

    gc_task = asyncio.create_task(gc_loop()) if gc_interval else None
    try:
        await stop.wait()
    finally:
        if gc_task is not None:
            gc_task.cancel()
        await server.stop()
        await manager.stop()


def run_server(
    host: str = "127.0.0.1",
    port: int = 8695,
    *,
    store="default",
    pool: int = 2,
    tenant: Optional[str] = None,
    gc_interval: Optional[float] = None,
    gc_max_bytes: Optional[int] = None,
    tenant_max_bytes: Optional[int] = None,
) -> None:
    """Run the service in the foreground until SIGINT/SIGTERM.

    ``store="default"`` resolves the process-wide store (honouring
    ``REPRO_STORE_DIR`` / ``REPRO_STORE_DISABLE``); pass ``None`` for a
    storeless server (no dedup across restarts, no journals).
    ``gc_interval`` starts a background GC loop over the shared root --
    the same loop a fleet would run, pin-safe by construction.
    """
    if store == "default":
        from repro.store.core import default_store

        store = default_store()
    asyncio.run(
        _serve_forever(
            host,
            port,
            store,
            pool,
            tenant,
            gc_interval,
            gc_max_bytes,
            tenant_max_bytes,
        )
    )


class BackgroundServer:
    """The full service stack on a daemon thread, for tests and embedding.

    ::

        with BackgroundServer(store=store) as server:
            client = ServiceClient(port=server.port)
            ...

    ``port=0`` (the default) binds an ephemeral port; read it from
    ``server.port`` after ``start()``.
    """

    def __init__(
        self,
        store=None,
        pool: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        default_tenant: Optional[str] = None,
    ):
        self.store = store
        self.pool = pool
        self.host = host
        self.port: Optional[int] = None
        self._port_request = port
        self.default_tenant = default_tenant
        self.manager: Optional[JobManager] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service did not start within 30s")
        if self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # surfaced by start()
            self._error = error
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        manager = JobManager(
            store=self.store, pool=self.pool, default_tenant=self.default_tenant
        )
        await manager.start()
        server = ServiceServer(manager, self.host, self._port_request)
        await server.start()
        self.manager = manager
        self.port = server.port
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await server.stop()
            await manager.stop()

    def close(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


__all__ = [
    "BackgroundServer",
    "ServiceServer",
    "run_server",
    "MAX_BODY_BYTES",
]
