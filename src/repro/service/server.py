"""The asyncio HTTP/JSON front end of the ATPG service.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` -- no
framework, no dependency -- speaking *persistent connections*: requests
are served back-to-back on one socket with correct ``Connection`` /
``Keep-Alive`` semantics, and the next request's head is parsed while the
previous response is still draining (sequential pipelining: responses
always go out in request order).  The API surface::

    GET    /healthz                      liveness probe
    GET    /v1/stats                     pool / queue / dedup / latency / http / store
    POST   /v1/jobs                      submit a job document (see schema)
    GET    /v1/jobs                      list known jobs (restarts included)
    GET    /v1/jobs/<id>                 one job (``?result=1`` inlines the result)
    DELETE /v1/jobs/<id>                 cancel (queued: now; running: next stage)
    GET    /v1/jobs/<id>/events          NDJSON stream of the run journal, live
    GET    /v1/jobs/<id>/artifacts/<n>   result | testset | atpg-testset | bench | journal

``POST /v1/jobs`` answers 202 for fresh/coalesced submissions, 200 for
cached ones (the body always carries ``disposition``), and 429 with a
``Retry-After`` header when the job queue is past its high-water mark.
Connection lifecycle: a connection closes after ``KEEPALIVE_IDLE_SECONDS``
without a new request, after ``MAX_REQUESTS_PER_CONNECTION`` requests, on
an explicit ``Connection: close``, or after an event stream (NDJSON has
no length, so EOF is the terminator).  Framing violations -- a malformed
request line, a non-integer or negative ``Content-Length``, a body cut
short -- are answered with a well-formed 400 before the connection is
released; they never silently drop the socket and never touch the
listener.

:class:`BackgroundServer` runs the whole stack (manager + server) on a
daemon thread with its own event loop -- the harness tests, the benchmark
and embedding applications use it to get a real HTTP service inside one
process.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.service.jobs import BackpressureError, Job, JobManager
from repro.service.schema import SchemaError
from repro.store.journal import tail_journal

#: Upper bound on request bodies; circuits are text, a megabyte is huge.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Poll interval of the event stream between journal reads.
EVENT_POLL_SECONDS = 0.05

#: Close a persistent connection after this long without a new request.
KEEPALIVE_IDLE_SECONDS = 30.0

#: Close a persistent connection after serving this many requests.
MAX_REQUESTS_PER_CONNECTION = 1000

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

_ARTIFACT_NAMES = ("result", "testset", "atpg-testset", "bench", "journal")


class _FramingError(Exception):
    """An HTTP framing violation: answered 400/413, then the connection
    is released (the byte stream cannot be resynchronized)."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class _HttpRequest:
    """One parsed request off the wire."""

    method: str
    path: str
    query: str
    version: str
    headers: Dict[str, str]
    body: bytes

    def wants_keepalive(self) -> bool:
        token = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return "keep-alive" in token
        return "close" not in token


@dataclass
class HttpStats:
    """Connection-level counters surfaced under ``/v1/stats -> http``."""

    connections_total: int = 0
    connections_open: int = 0
    requests_total: int = 0
    keepalive_requests: int = 0  # requests after the first on a connection
    pipelined_requests: int = 0  # next request fully parsed before response done
    framing_errors: int = 0
    idle_closed: int = 0
    max_requests_closed: int = 0
    rejected_429: int = 0
    event_streams: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "connections_total": self.connections_total,
            "connections_open": self.connections_open,
            "requests_total": self.requests_total,
            "keepalive_requests": self.keepalive_requests,
            "pipelined_requests": self.pipelined_requests,
            "framing_errors": self.framing_errors,
            "idle_closed": self.idle_closed,
            "max_requests_closed": self.max_requests_closed,
            "rejected_429": self.rejected_429,
            "event_streams": self.event_streams,
        }


class _Responder:
    """Response writer for one request, carrying its keep-alive verdict."""

    def __init__(self, server: "ServiceServer", writer: asyncio.StreamWriter,
                 keep: bool, remaining: int):
        self.server = server
        self.writer = writer
        self.keep = keep
        self.remaining = remaining

    def _head(
        self,
        status: int,
        content_type: str,
        length: Optional[int],
        extra: Optional[Dict[str, str]] = None,
    ) -> bytes:
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
        ]
        if length is not None:
            lines.append(f"Content-Length: {length}")
        if extra:
            lines.extend(f"{name}: {value}" for name, value in extra.items())
        if self.keep and length is not None:
            lines.append("Connection: keep-alive")
            lines.append(
                f"Keep-Alive: timeout={int(self.server.idle_timeout)}, "
                f"max={self.remaining}"
            )
        else:
            self.keep = False
            lines.append("Connection: close")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")

    def json(
        self, status: int, doc: Dict, extra: Optional[Dict[str, str]] = None
    ) -> None:
        try:
            body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
            self.writer.write(self._head(status, "application/json", len(body), extra))
            self.writer.write(body)
        except (ConnectionError, OSError):
            self.keep = False

    def raw(self, status: int, content_type: str, data: bytes) -> None:
        try:
            self.writer.write(self._head(status, content_type, len(data)))
            self.writer.write(data)
        except (ConnectionError, OSError):
            self.keep = False

    def stream_head(self, status: int, content_type: str) -> None:
        """A length-less streaming response: always terminates the
        connection (EOF is the framing)."""
        self.keep = False
        self.writer.write(self._head(status, content_type, None))


class ServiceServer:
    """One listening socket over one :class:`JobManager`."""

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        idle_timeout: float = KEEPALIVE_IDLE_SECONDS,
        max_requests: int = MAX_REQUESTS_PER_CONNECTION,
    ):
        self.manager = manager
        self.host = host
        self.port = port
        self.idle_timeout = max(0.05, float(idle_timeout))
        self.max_requests = max(1, int(max_requests))
        self.http = HttpStats()
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One persistent connection: a sequential request loop with
        read-ahead pipelining and per-request keep-alive bookkeeping."""
        self.http.connections_total += 1
        self.http.connections_open += 1
        pending: Optional[asyncio.Task] = None
        # Idle enforcement is a lazily-rescheduled watchdog timer, not a
        # per-request ``asyncio.wait_for`` -- the timeout machinery costs
        # more than a whole cached round trip, and it is only ever needed
        # when a client goes quiet.  The watchdog fires at the deadline,
        # reschedules itself if activity moved the deadline forward, and
        # cancels the in-flight read when the connection really is idle.
        loop = asyncio.get_running_loop()
        idle = {"deadline": loop.time() + self.idle_timeout, "fired": False}
        timer: Optional[asyncio.TimerHandle] = None

        def _watchdog() -> None:
            nonlocal timer
            remaining = idle["deadline"] - loop.time()
            if remaining > 0:
                timer = loop.call_later(remaining, _watchdog)
                return
            idle["fired"] = True
            timer = None
            if pending is not None:
                pending.cancel()

        try:
            served = 0
            while True:
                if pending is None:
                    pending = asyncio.create_task(self._read_request(reader))
                idle["deadline"] = loop.time() + self.idle_timeout
                if timer is None:
                    timer = loop.call_later(self.idle_timeout, _watchdog)
                try:
                    request = await pending
                except asyncio.CancelledError:
                    if not idle["fired"]:
                        raise
                    self.http.idle_closed += 1
                    break
                except _FramingError as error:
                    # A malformed frame cannot be resynchronized, but the
                    # client still deserves an answer: a well-formed 400
                    # (or 413) on a connection we then release cleanly.
                    self.http.framing_errors += 1
                    responder = _Responder(self, writer, False, 0)
                    responder.json(error.status, {"error": str(error)})
                    break
                finally:
                    if pending is not None and pending.done():
                        pending = None
                if request is None:
                    break  # clean EOF between requests
                served += 1
                self.http.requests_total += 1
                if served > 1:
                    self.http.keepalive_requests += 1
                streaming = self._is_event_stream(request)
                keep = (
                    request.wants_keepalive()
                    and served < self.max_requests
                    and not streaming
                )
                if request.wants_keepalive() and served >= self.max_requests:
                    self.http.max_requests_closed += 1
                responder = _Responder(
                    self, writer, keep, self.max_requests - served
                )
                if keep:
                    # Sequential pipelining: parse the next request while
                    # this response is being written and drained.
                    pending = asyncio.create_task(self._read_request(reader))
                try:
                    await self._route(request, responder)
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                except Exception as error:  # one request fails, the loop survives
                    crash = _Responder(self, writer, False, 0)
                    crash.json(
                        500, {"error": f"{type(error).__name__}: {error}"}
                    )
                    break
                if pending is not None and not pending.cancelled() and (
                    pending.done() or len(getattr(reader, "_buffer", b"")) > 0
                ):
                    # The next request's bytes were already here before
                    # this response finished: the client pipelined.
                    self.http.pipelined_requests += 1
                if not responder.keep:
                    break
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if timer is not None:
                timer.cancel()
            if pending is not None:
                pending.cancel()
                try:
                    await pending
                except (
                    asyncio.CancelledError,
                    _FramingError,
                    ConnectionError,
                    Exception,
                ):
                    pass
            self.http.connections_open -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[_HttpRequest]:
        """Parse one request head + body; ``None`` on clean EOF.

        Every way the frame can be wrong -- a garbled request line, a
        header without a colon, a non-integer or negative
        ``Content-Length``, a body the peer never finished sending --
        raises :class:`_FramingError`, which the connection loop answers
        with a well-formed 400 instead of dropping the socket.
        """
        try:
            # One await for the whole head: request line + headers arrive
            # in a single read instead of one coroutine hop per line.
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None  # clean EOF between requests
            raise _FramingError("connection closed mid-headers") from error
        except (asyncio.LimitOverrunError, ValueError) as error:
            raise _FramingError(f"request head too long: {error}") from error
        lines = head[:-4].decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _FramingError("malformed request line")
        method, target, version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if not sep:
                raise _FramingError(f"malformed header line {line[:64]!r}")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _FramingError("chunked request bodies are not supported")
        raw_length = headers.get("content-length")
        length = 0
        if raw_length is not None:
            try:
                length = int(raw_length)
            except ValueError:
                raise _FramingError(
                    f"Content-Length is not an integer: {raw_length!r}"
                ) from None
            if length < 0:
                raise _FramingError(f"Content-Length is negative: {raw_length}")
        if length > MAX_BODY_BYTES:
            raise _FramingError("request body too large", status=413)
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as error:
                raise _FramingError(
                    f"truncated request body: got {len(error.partial)} of "
                    f"{length} bytes"
                ) from error
        else:
            body = b""
        path, _, query = target.partition("?")
        return _HttpRequest(method.upper(), path, query, version, headers, body)

    @staticmethod
    def _is_event_stream(request: _HttpRequest) -> bool:
        segments = [s for s in request.path.split("/") if s]
        return (
            request.method == "GET"
            and len(segments) == 4
            and segments[:2] == ["v1", "jobs"]
            and segments[3] == "events"
        )

    # -- routing -------------------------------------------------------------

    async def _route(self, request: _HttpRequest, respond: _Responder) -> None:
        method, path, query = request.method, request.path, request.query
        segments = [s for s in path.split("/") if s]
        if path == "/healthz" and method == "GET":
            respond.json(200, {"ok": True})
            return
        if path == "/v1/stats" and method == "GET":
            doc = self.manager.stats()
            doc["http"] = self.http.as_dict()
            doc["http"]["idle_timeout"] = self.idle_timeout
            doc["http"]["max_requests_per_connection"] = self.max_requests
            respond.json(200, doc)
            return
        if path == "/v1/jobs":
            if method == "POST":
                await self._submit(request.body, respond)
            elif method == "GET":
                jobs = [job.as_dict() for job in self.manager.jobs.values()]
                respond.json(200, {"jobs": jobs})
            else:
                respond.json(405, {"error": f"{method} not allowed"})
            return
        if len(segments) >= 3 and segments[:2] == ["v1", "jobs"]:
            job = self.manager.get(segments[2])
            if job is None:
                respond.json(404, {"error": f"no job {segments[2]!r}"})
                return
            if len(segments) == 3:
                if method == "GET":
                    include = "result=1" in query or "result=true" in query
                    respond.json(200, job.as_dict(include_result=include))
                elif method == "DELETE":
                    self.manager.cancel(job.id)
                    respond.json(200, job.as_dict())
                else:
                    respond.json(405, {"error": f"{method} not allowed"})
                return
            if segments[3] == "events" and len(segments) == 4 and method == "GET":
                await self._stream_events(respond, job)
                return
            if segments[3] == "artifacts" and len(segments) == 5 and method == "GET":
                if job.result is None and job.status == "done":
                    # A restored job's payload reloads from the store.
                    await asyncio.to_thread(self.manager.load_result, job)
                self._artifact(respond, job, segments[4])
                return
        respond.json(404, {"error": f"no route for {method} {path}"})

    async def _submit(self, body: bytes, respond: _Responder) -> None:
        try:
            # Raw bytes, not a decoded document: byte-identical resubmits
            # (the cached-tier workload) skip JSON parsing and
            # fingerprinting inside the manager's parse cache.
            job, disposition = await self.manager.submit(raw=body)
        except SchemaError as error:
            respond.json(400, {"error": str(error)})
            return
        except BackpressureError as error:
            self.http.rejected_429 += 1
            respond.json(
                429,
                {
                    "error": str(error),
                    "queue_depth": error.queue_depth,
                    "queue_high_water": error.high_water,
                    "retry_after": error.retry_after,
                },
                extra={"Retry-After": str(int(math.ceil(error.retry_after)))},
            )
            return
        if disposition == "cached" and job.terminal:
            # A terminal job's submit response never changes: serialize
            # once, then every further cached hit is a buffer write.
            body = job.submit_response_cache
            if body is None:
                doc = job.as_dict()
                doc["disposition"] = "cached"
                body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
                job.submit_response_cache = body
            respond.raw(200, "application/json", body)
            return
        doc = job.as_dict()
        doc["disposition"] = disposition
        respond.json(202, doc)

    # -- event streaming -----------------------------------------------------

    async def _stream_events(self, respond: _Responder, job: Job) -> None:
        """NDJSON-tail the job's journal until the job is terminal.

        Runs inline in the connection task -- there is no detached tail
        task to leak: a mid-stream client disconnect surfaces as a
        ``ConnectionError`` from ``drain`` and unwinds this coroutine and
        the connection with it.
        """
        self.http.event_streams += 1
        writer = respond.writer
        respond.stream_head(200, "application/x-ndjson")
        await writer.drain()
        offset = 0

        async def pump() -> None:
            nonlocal offset
            if job.journal_path is None:
                return
            events, offset = tail_journal(job.journal_path, offset)
            for event in events:
                writer.write(
                    (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                )
            if events:
                await writer.drain()

        while True:
            await pump()
            if job.terminal:
                await pump()  # catch events written right at the finish line
                closing = {
                    "t": round(time.time(), 6),
                    "event": "job_end",
                    "job": job.id,
                    "status": job.status,
                    "dedup": job.dedup,
                    "error": job.error,
                }
                writer.write(
                    (json.dumps(closing, sort_keys=True) + "\n").encode("utf-8")
                )
                await writer.drain()
                return
            await asyncio.sleep(EVENT_POLL_SECONDS)

    # -- artifacts -----------------------------------------------------------

    def _artifact(self, respond: _Responder, job: Job, name: str) -> None:
        if name not in _ARTIFACT_NAMES:
            respond.json(
                404,
                {"error": f"unknown artifact {name!r}; one of {_ARTIFACT_NAMES}"},
            )
            return
        if name == "journal":
            if job.journal_path is None:
                respond.json(404, {"error": "job has no journal"})
                return
            try:
                with open(job.journal_path, "rb") as handle:
                    data = handle.read()
            except OSError as error:
                respond.json(404, {"error": str(error)})
                return
            respond.raw(200, "application/x-ndjson", data)
            return
        if job.result is None:
            respond.json(
                409, {"error": f"job {job.id} is {job.status}, not done"}
            )
            return
        if name == "result":
            body = (json.dumps(job.result, sort_keys=True) + "\n").encode("utf-8")
            respond.raw(200, "application/json", body)
            return
        field_name = {
            "testset": "derived_testset",
            "atpg-testset": "atpg_testset",
            "bench": "hard_bench",
        }[name]
        text = job.result.get(field_name)
        if not isinstance(text, str):
            respond.json(404, {"error": f"result has no {field_name!r}"})
            return
        respond.raw(200, "text/plain; charset=utf-8", text.encode("utf-8"))


# -- entry points ------------------------------------------------------------


async def _serve_forever(
    host: str,
    port: int,
    store,
    pool: int,
    default_tenant: Optional[str],
    gc_interval: Optional[float],
    gc_max_bytes: Optional[int],
    tenant_max_bytes: Optional[int],
    queue_high_water: Optional[int],
    idle_timeout: float,
    max_requests: int,
) -> None:
    manager = JobManager(
        store=store,
        pool=pool,
        default_tenant=default_tenant,
        queue_high_water=queue_high_water,
    )
    await manager.start()
    server = ServiceServer(
        manager, host, port, idle_timeout=idle_timeout, max_requests=max_requests
    )
    await server.start()
    print(f"listening on http://{server.host}:{server.port}", file=sys.stderr, flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass

    async def gc_loop() -> None:
        while store is not None and gc_interval:
            await asyncio.sleep(gc_interval)
            await asyncio.to_thread(
                store.gc, gc_max_bytes, (), tenant_max_bytes
            )
            await asyncio.to_thread(manager.compact_indexes)

    gc_task = asyncio.create_task(gc_loop()) if gc_interval else None
    try:
        await stop.wait()
    finally:
        if gc_task is not None:
            gc_task.cancel()
        await server.stop()
        await manager.stop()


def run_server(
    host: str = "127.0.0.1",
    port: int = 8695,
    *,
    store="default",
    pool: int = 2,
    tenant: Optional[str] = None,
    gc_interval: Optional[float] = None,
    gc_max_bytes: Optional[int] = None,
    tenant_max_bytes: Optional[int] = None,
    queue_high_water: Optional[int] = None,
    idle_timeout: float = KEEPALIVE_IDLE_SECONDS,
    max_requests: int = MAX_REQUESTS_PER_CONNECTION,
) -> None:
    """Run the service in the foreground until SIGINT/SIGTERM.

    ``store="default"`` resolves the process-wide store (honouring
    ``REPRO_STORE_DIR`` / ``REPRO_STORE_DISABLE``); pass ``None`` for a
    storeless server (no dedup across restarts, no journals, no
    persistent job index).  ``gc_interval`` starts a background GC loop
    over the shared root -- the same loop a fleet would run, pin-safe by
    construction -- which also compacts the persistent job indexes.
    ``queue_high_water`` arms backpressure: fresh submissions past that
    queue depth answer 429 + ``Retry-After`` instead of queueing without
    bound.
    """
    if store == "default":
        from repro.store.core import default_store

        store = default_store()
    asyncio.run(
        _serve_forever(
            host,
            port,
            store,
            pool,
            tenant,
            gc_interval,
            gc_max_bytes,
            tenant_max_bytes,
            queue_high_water,
            idle_timeout,
            max_requests,
        )
    )


class BackgroundServer:
    """The full service stack on a daemon thread, for tests and embedding.

    ::

        with BackgroundServer(store=store) as server:
            client = ServiceClient(port=server.port)
            ...

    ``port=0`` (the default) binds an ephemeral port; read it from
    ``server.port`` after ``start()``.
    """

    def __init__(
        self,
        store=None,
        pool: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        default_tenant: Optional[str] = None,
        queue_high_water: Optional[int] = None,
        idle_timeout: float = KEEPALIVE_IDLE_SECONDS,
        max_requests: int = MAX_REQUESTS_PER_CONNECTION,
    ):
        self.store = store
        self.pool = pool
        self.host = host
        self.port: Optional[int] = None
        self._port_request = port
        self.default_tenant = default_tenant
        self.queue_high_water = queue_high_water
        self.idle_timeout = idle_timeout
        self.max_requests = max_requests
        self.manager: Optional[JobManager] = None
        self.server: Optional[ServiceServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service did not start within 30s")
        if self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # surfaced by start()
            self._error = error
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        manager = JobManager(
            store=self.store,
            pool=self.pool,
            default_tenant=self.default_tenant,
            queue_high_water=self.queue_high_water,
        )
        await manager.start()
        server = ServiceServer(
            manager,
            self.host,
            self._port_request,
            idle_timeout=self.idle_timeout,
            max_requests=self.max_requests,
        )
        await server.start()
        self.manager = manager
        self.server = server
        self.port = server.port
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await server.stop()
            await manager.stop()

    def close(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


__all__ = [
    "BackgroundServer",
    "HttpStats",
    "ServiceServer",
    "run_server",
    "KEEPALIVE_IDLE_SECONDS",
    "MAX_BODY_BYTES",
    "MAX_REQUESTS_PER_CONNECTION",
]
