"""A stdlib HTTP client for the ATPG service.

Synchronous on :mod:`http.client`, built around *one persistent
connection*: the client keeps a single keep-alive ``HTTPConnection`` and
reuses it across ``submit``/``wait``/``stats``/``artifact`` calls, so
request loops stop paying TCP setup/teardown per call.  A stale socket
(the server closed it: idle timeout, max-requests cap, restart) is
detected on the next request and replayed once over a fresh connection --
every request here is idempotent (submits dedup server-side), so the
transparent retry is safe.  A ``threading.Lock`` serializes the shared
connection, which keeps the client thread-safe; pass
``keep_alive=False`` to get the old connection-per-request behaviour
(the benchmark uses both modes to measure the difference).

:meth:`ServiceClient.events` is the exception: streaming has no
``Content-Length``, so it always opens a dedicated connection and reads
until EOF.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Dict, Iterator, Optional, Tuple

from repro.service.jobs import TERMINAL_STATUSES

#: Errors meaning "the reused socket went stale under us" -- safe to
#: replay the request once on a fresh connection.
_STALE_ERRORS = (
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    http.client.ResponseNotReady,
    BrokenPipeError,
    ConnectionResetError,
    ConnectionAbortedError,
)


class ServiceError(RuntimeError):
    """A non-success response from the service."""

    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


class ServiceClient:
    """Client for one ``repro serve`` endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8695,
        timeout: float = 60.0,
        keep_alive: bool = True,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.keep_alive = keep_alive
        self._lock = threading.Lock()
        self._connection: Optional[http.client.HTTPConnection] = None
        self.reconnects = 0  # stale-socket replays, for tests and benchmarks

    # -- transport -----------------------------------------------------------

    def close(self) -> None:
        """Drop the persistent connection (if any); the next request
        transparently opens a fresh one."""
        with self._lock:
            self._drop_locked()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _drop_locked(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except Exception:
                pass
            self._connection = None

    def _send_locked(
        self,
        method: str,
        path: str,
        data: Optional[bytes],
        headers: Dict[str, str],
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """One request/response over the shared connection, replaying
        once on a stale reused socket."""
        fresh = self._connection is None
        if fresh:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        try:
            self._connection.request(method, path, data, headers)
            response = self._connection.getresponse()
            body = response.read()
        except _STALE_ERRORS:
            self._drop_locked()
            if fresh:
                raise  # a brand-new connection failing is a real error
            self.reconnects += 1
            return self._send_locked(method, path, data, headers)
        response_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        if response.will_close:
            self._drop_locked()
        return response.status, body, response_headers

    def _request(
        self, method: str, path: str, body: Optional[object] = None
    ) -> Tuple[int, bytes]:
        status, raw, _ = self._request_full(method, path, body)
        return status, raw

    def _request_full(
        self, method: str, path: str, body: Optional[object] = None
    ) -> Tuple[int, bytes, Dict[str, str]]:
        headers: Dict[str, str] = {}
        if not self.keep_alive:
            headers["Connection"] = "close"
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.keep_alive:
            with self._lock:
                return self._send_locked(method, path, data, headers)
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, data, headers)
            response = connection.getresponse()
            raw = response.read()
            response_headers = {
                name.lower(): value for name, value in response.getheaders()
            }
            return response.status, raw, response_headers
        finally:
            connection.close()

    def _json(
        self, method: str, path: str, body: Optional[object] = None,
        ok: Tuple[int, ...] = (200, 202),
    ) -> Dict:
        status, raw, headers = self._request_full(method, path, body)
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            doc = {}
        if status not in ok:
            message = doc.get("error") if isinstance(doc, dict) else None
            retry_after: Optional[float] = None
            raw_retry = headers.get("retry-after")
            if raw_retry is not None:
                try:
                    retry_after = float(raw_retry)
                except ValueError:
                    pass
            elif isinstance(doc, dict) and isinstance(
                doc.get("retry_after"), (int, float)
            ):
                retry_after = float(doc["retry_after"])
            raise ServiceError(
                status,
                message or raw[:200].decode("utf-8", "replace"),
                retry_after=retry_after,
            )
        return doc

    # -- API -----------------------------------------------------------------

    def health(self) -> Dict:
        return self._json("GET", "/healthz")

    def stats(self) -> Dict:
        return self._json("GET", "/v1/stats")

    def submit(self, request: Dict, retries: int = 0) -> Dict:
        """POST one job document; returns the job including ``disposition``.

        ``retries`` re-submits after a 429 rejection up to that many
        times, sleeping the server's ``Retry-After`` between attempts --
        the cooperative half of the backpressure contract.
        """
        attempt = 0
        while True:
            try:
                return self._json("POST", "/v1/jobs", request)
            except ServiceError as error:
                if error.status != 429 or attempt >= retries:
                    raise
                attempt += 1
                time.sleep(min(error.retry_after or 1.0, 60.0))

    def jobs(self) -> Dict:
        return self._json("GET", "/v1/jobs")

    def job(self, job_id: str, include_result: bool = False) -> Dict:
        suffix = "?result=1" if include_result else ""
        return self._json("GET", f"/v1/jobs/{job_id}{suffix}")

    def cancel(self, job_id: str) -> Dict:
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll: float = 0.05,
        backoff: float = 1.6,
        max_poll: float = 1.0,
    ) -> Dict:
        """Poll until the job is terminal; returns the final job document.

        Polling uses capped exponential backoff: the interval starts at
        ``poll`` and multiplies by ``backoff`` up to ``max_poll``, so
        short jobs return fast and long waits do not hammer the server.
        Raises ``TimeoutError`` if the deadline passes first -- the job
        keeps running server-side.
        """
        deadline = time.monotonic() + timeout
        interval = max(0.001, poll)
        while True:
            doc = self.job(job_id)
            if doc.get("status") in TERMINAL_STATUSES:
                return doc
            now = time.monotonic()
            if now >= deadline:
                raise TimeoutError(f"job {job_id} still {doc.get('status')!r}")
            time.sleep(min(interval, deadline - now))
            interval = min(interval * backoff, max_poll)

    def artifact(self, job_id: str, name: str) -> bytes:
        """Fetch one artifact (``result``/``testset``/``atpg-testset``/
        ``bench``/``journal``) as raw bytes."""
        status, raw = self._request("GET", f"/v1/jobs/{job_id}/artifacts/{name}")
        if status != 200:
            try:
                message = json.loads(raw.decode("utf-8")).get("error", "")
            except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
                message = raw[:200].decode("utf-8", "replace")
            raise ServiceError(status, message)
        return raw

    def result(self, job_id: str) -> Dict:
        """The completed flow payload (parsed ``result`` artifact)."""
        return json.loads(self.artifact(job_id, "result").decode("utf-8"))

    def events(self, job_id: str) -> Iterator[Dict]:
        """Stream the job's journal events live, ending after ``job_end``.

        Always a dedicated connection: the stream has no length, so the
        server closes the socket to terminate it -- reusing the shared
        keep-alive connection would sacrifice it per stream.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "GET", f"/v1/jobs/{job_id}/events", headers={"Connection": "close"}
            )
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read()
                raise ServiceError(response.status, raw[:200].decode("utf-8", "replace"))
            for line in response:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    continue
                if isinstance(event, dict):
                    yield event
        finally:
            connection.close()


__all__ = ["ServiceClient", "ServiceError"]
