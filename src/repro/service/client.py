"""A stdlib HTTP client for the ATPG service.

Thin and synchronous on :mod:`http.client` -- every call is one
``Connection: close`` request, so there is no connection state to manage
and the client is trivially thread-safe (each call opens its own socket).
:meth:`ServiceClient.events` is the exception: it holds its connection
open and yields journal events as the server streams them.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, Optional, Tuple

from repro.service.jobs import TERMINAL_STATUSES


class ServiceError(RuntimeError):
    """A non-success response from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Client for one ``repro serve`` endpoint."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8695, timeout: float = 60.0
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[object] = None
    ) -> Tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Connection": "close"}
            data = None
            if body is not None:
                data = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, data, headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def _json(
        self, method: str, path: str, body: Optional[object] = None,
        ok: Tuple[int, ...] = (200, 202),
    ) -> Dict:
        status, raw = self._request(method, path, body)
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            doc = {}
        if status not in ok:
            message = doc.get("error") if isinstance(doc, dict) else None
            raise ServiceError(status, message or raw[:200].decode("utf-8", "replace"))
        return doc

    # -- API -----------------------------------------------------------------

    def health(self) -> Dict:
        return self._json("GET", "/healthz")

    def stats(self) -> Dict:
        return self._json("GET", "/v1/stats")

    def submit(self, request: Dict) -> Dict:
        """POST one job document; returns the job including ``disposition``."""
        return self._json("POST", "/v1/jobs", request)

    def jobs(self) -> Dict:
        return self._json("GET", "/v1/jobs")

    def job(self, job_id: str, include_result: bool = False) -> Dict:
        suffix = "?result=1" if include_result else ""
        return self._json("GET", f"/v1/jobs/{job_id}{suffix}")

    def cancel(self, job_id: str) -> Dict:
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 600.0, poll: float = 0.1) -> Dict:
        """Poll until the job is terminal; returns the final job document.

        Raises ``TimeoutError`` if the deadline passes first -- the job
        keeps running server-side.
        """
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc.get("status") in TERMINAL_STATUSES:
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {doc.get('status')!r}")
            time.sleep(poll)

    def artifact(self, job_id: str, name: str) -> bytes:
        """Fetch one artifact (``result``/``testset``/``atpg-testset``/
        ``bench``/``journal``) as raw bytes."""
        status, raw = self._request("GET", f"/v1/jobs/{job_id}/artifacts/{name}")
        if status != 200:
            try:
                message = json.loads(raw.decode("utf-8")).get("error", "")
            except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
                message = raw[:200].decode("utf-8", "replace")
            raise ServiceError(status, message)
        return raw

    def result(self, job_id: str) -> Dict:
        """The completed flow payload (parsed ``result`` artifact)."""
        return json.loads(self.artifact(job_id, "result").decode("utf-8"))

    def events(self, job_id: str) -> Iterator[Dict]:
        """Stream the job's journal events live, ending after ``job_end``."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "GET", f"/v1/jobs/{job_id}/events", headers={"Connection": "close"}
            )
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read()
                raise ServiceError(response.status, raw[:200].decode("utf-8", "replace"))
            for line in response:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    continue
                if isinstance(event, dict):
                    yield event
        finally:
            connection.close()


__all__ = ["ServiceClient", "ServiceError"]
