"""Single stuck-at fault model over circuit lines.

Fault sites follow the paper's Fig. 4 exactly: an edge of weight ``n`` is
divided into ``n + 1`` lines, and each line can be stuck-at-0 or stuck-at-1.
Because retiming changes edge weights, a circuit and its retimed version
have *different* fault universes over the *same* edges -- the growth in
fault count visible in Table III (#Faults columns) is precisely the growth
in line count caused by added flip-flops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.circuit.netlist import Circuit, LineRef
from repro.logic.three_valued import ONE, Trit, ZERO


@dataclass(frozen=True, order=True)
class StuckAtFault:
    """A single stuck-at fault on one line."""

    line: LineRef
    value: Trit

    def __post_init__(self) -> None:
        if self.value not in (ZERO, ONE):
            raise ValueError(f"stuck value must be 0 or 1, got {self.value!r}")

    def describe(self, circuit: Circuit) -> str:
        """Human-readable description, e.g. ``"g1->q.0 seg2 s-a-1"``."""
        edge = circuit.edge(self.line.edge_index)
        return (
            f"{edge.source}->{edge.sink}.{edge.sink_pin}"
            f" seg{self.line.segment}/{edge.num_lines} s-a-{self.value}"
        )


def full_fault_universe(circuit: Circuit) -> List[StuckAtFault]:
    """Both stuck-at faults on every line, in canonical order."""
    faults: List[StuckAtFault] = []
    for line in circuit.lines():
        faults.append(StuckAtFault(line, ZERO))
        faults.append(StuckAtFault(line, ONE))
    return faults


def faults_on_edge(circuit: Circuit, edge_index: int) -> List[StuckAtFault]:
    """All faults on the lines of one edge."""
    edge = circuit.edge(edge_index)
    faults: List[StuckAtFault] = []
    for segment in range(1, edge.num_lines + 1):
        faults.append(StuckAtFault(LineRef(edge_index, segment), ZERO))
        faults.append(StuckAtFault(LineRef(edge_index, segment), ONE))
    return faults


def check_fault(circuit: Circuit, fault: StuckAtFault) -> None:
    """Raise :class:`ValueError` when the fault site does not exist."""
    if not 0 <= fault.line.edge_index < len(circuit.edges):
        raise ValueError(f"no edge {fault.line.edge_index} in {circuit.name}")
    edge = circuit.edge(fault.line.edge_index)
    if not 1 <= fault.line.segment <= edge.num_lines:
        raise ValueError(
            f"edge {edge.index} of weight {edge.weight} has no segment "
            f"{fault.line.segment}"
        )


__all__ = [
    "StuckAtFault",
    "full_fault_universe",
    "faults_on_edge",
    "check_fault",
]
