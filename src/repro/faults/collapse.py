"""Structural equivalence fault collapsing.

Two faults are structurally equivalent when every test for one is a test for
the other; simulating one representative per equivalence class is then
sufficient.  The classes used here are the classical gate-local rules,
applied through the graph model:

* the line directly feeding a gate (sink-side segment of an input edge) and
  the line directly driven by it (source-side segment of its output edge)
  collapse according to the gate function:

  - AND:  input s-a-0 == output s-a-0
  - NAND: input s-a-0 == output s-a-1
  - OR:   input s-a-1 == output s-a-1
  - NOR:  input s-a-1 == output s-a-0
  - NOT:  input s-a-v == output s-a-(1-v)
  - BUF:  input s-a-v == output s-a-v
  - XOR/XNOR: no collapsing

* no collapsing is performed across registers (a fault before and after a
  flip-flop differ in time behaviour and initialization) nor across fanout
  stems (a stem fault is a multiple fault of the branches).

These are exactly the situations the paper leans on in Section V.C when
explaining the Table III discrepancies: adding a register to a line splits
one collapsed fault into two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.circuit.netlist import Circuit, LineRef
from repro.circuit.types import GateType
from repro.faults.model import StuckAtFault, full_fault_universe
from repro.logic.three_valued import ONE, ZERO


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[StuckAtFault, StuckAtFault] = {}

    def find(self, item: StuckAtFault) -> StuckAtFault:
        parent = self._parent.setdefault(item, item)
        if parent != item:
            parent = self.find(parent)
            self._parent[item] = parent
        return parent

    def union(self, a: StuckAtFault, b: StuckAtFault) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Keep the smaller (canonical order) fault as representative so
            # collapsing is deterministic.
            if rb < ra:
                ra, rb = rb, ra
            self._parent[rb] = ra


@dataclass(frozen=True)
class CollapsedFaults:
    """Result of equivalence collapsing."""

    representatives: Tuple[StuckAtFault, ...]
    class_of: Dict[StuckAtFault, StuckAtFault]

    @property
    def num_collapsed(self) -> int:
        return len(self.representatives)

    @property
    def num_total(self) -> int:
        return len(self.class_of)

    def class_members(self, representative: StuckAtFault) -> List[StuckAtFault]:
        return sorted(
            fault for fault, rep in self.class_of.items() if rep == representative
        )


def _gate_local_pairs(circuit: Circuit, gate_name: str):
    """Yield (input fault, output fault) equivalent pairs across one gate."""
    node = circuit.node(gate_name)
    out_edges = circuit.out_edges(gate_name)
    if not out_edges:
        return  # dangling gate: nothing to collapse across
    out_edge = out_edges[0]
    out_line = LineRef(out_edge.index, 1)
    for in_edge in circuit.in_edges(gate_name):
        in_line = LineRef(in_edge.index, in_edge.num_lines)
        gate_type = node.gate_type
        if gate_type is GateType.AND:
            yield StuckAtFault(in_line, ZERO), StuckAtFault(out_line, ZERO)
        elif gate_type is GateType.NAND:
            yield StuckAtFault(in_line, ZERO), StuckAtFault(out_line, ONE)
        elif gate_type is GateType.OR:
            yield StuckAtFault(in_line, ONE), StuckAtFault(out_line, ONE)
        elif gate_type is GateType.NOR:
            yield StuckAtFault(in_line, ONE), StuckAtFault(out_line, ZERO)
        elif gate_type is GateType.NOT:
            yield StuckAtFault(in_line, ZERO), StuckAtFault(out_line, ONE)
            yield StuckAtFault(in_line, ONE), StuckAtFault(out_line, ZERO)
        elif gate_type is GateType.BUF:
            yield StuckAtFault(in_line, ZERO), StuckAtFault(out_line, ZERO)
            yield StuckAtFault(in_line, ONE), StuckAtFault(out_line, ONE)


def collapse_faults(
    circuit: Circuit, faults: Optional[List[StuckAtFault]] = None
) -> CollapsedFaults:
    """Collapse a fault list (default: the full universe) into classes.

    Equivalence pairs are only merged when *both* faults are inside the
    considered fault list.
    """
    if faults is None:
        faults = full_fault_universe(circuit)
    fault_set: Set[StuckAtFault] = set(faults)
    uf = _UnionFind()
    for fault in faults:
        uf.find(fault)
    for gate in circuit.gate_nodes():
        for fault_a, fault_b in _gate_local_pairs(circuit, gate.name):
            if fault_a in fault_set and fault_b in fault_set:
                uf.union(fault_a, fault_b)
    class_of = {fault: uf.find(fault) for fault in faults}
    representatives = tuple(sorted(set(class_of.values())))
    return CollapsedFaults(representatives, class_of)


__all__ = ["collapse_faults", "CollapsedFaults"]
