"""Single stuck-at fault machinery.

Fault sites are circuit *lines* (paper Fig. 4); the module provides the full
fault universe, structural equivalence collapsing, and the paper's
corresponding-fault relation between a circuit and its retimed versions
(Section IV-B).
"""

from repro.faults.collapse import CollapsedFaults, collapse_faults
from repro.faults.correspondence import (
    CorrespondenceError,
    FaultCorrespondence,
    check_same_structure,
)
from repro.faults.model import (
    StuckAtFault,
    check_fault,
    faults_on_edge,
    full_fault_universe,
)

__all__ = [
    "StuckAtFault",
    "full_fault_universe",
    "faults_on_edge",
    "check_fault",
    "collapse_faults",
    "CollapsedFaults",
    "FaultCorrespondence",
    "CorrespondenceError",
    "check_same_structure",
]
