"""Corresponding faults between a circuit and its retimed versions.

Section IV-B of the paper: let ``e`` be an edge of weight ``n``, divided into
lines ``e_1 .. e_{n+1}``.  Placing ``m`` flip-flops on line ``e_i`` divides it
into ``m + 1`` lines; a fault on ``e_i`` in ``K`` then *corresponds* to all
the faults (with the same stuck value) on those ``m + 1`` lines in ``K'``,
and removing flip-flops merges lines and faults symmetrically.

Retiming in this library never changes the vertex/edge structure -- only the
weights -- so corresponding faults always live on the *same edge*.  What
retiming does not record is *where on the edge* flip-flops were inserted or
removed; the exact line-by-line split depends on the order of atomic moves.
The correspondence used here is therefore the edge-level closure of the
paper's relation, which is what its guarantees need:

* every fault in the retimed circuit has **at least one** corresponding
  fault in the original circuit (paper, Section IV-B), and
* faults outside the modified region (edges whose weight is unchanged) are
  in **one-to-one** positional correspondence.

For edges whose weight changed we map segment ``i`` of the richer side onto
segment ``min(i, n+1)`` of the poorer side -- the canonical alignment that
keeps the source-side line fixed (it is driven by the same vertex in both
circuits) -- and expose the full fault set of the edge as the corresponding
*class*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.circuit.netlist import Circuit, LineRef
from repro.faults.model import StuckAtFault, check_fault


class CorrespondenceError(ValueError):
    """Raised when two circuits are not retiming-related structurally."""


def check_same_structure(original: Circuit, retimed: Circuit) -> None:
    """Verify the two circuits differ only in edge weights."""
    if set(original.nodes) != set(retimed.nodes):
        raise CorrespondenceError("circuits have different vertex sets")
    for name in original.nodes:
        if original.node(name) != retimed.node(name):
            raise CorrespondenceError(f"vertex {name!r} differs")
    if len(original.edges) != len(retimed.edges):
        raise CorrespondenceError("circuits have different edge counts")
    for edge_a, edge_b in zip(original.edges, retimed.edges):
        if (edge_a.source, edge_a.sink, edge_a.sink_pin) != (
            edge_b.source,
            edge_b.sink,
            edge_b.sink_pin,
        ):
            raise CorrespondenceError(f"edge {edge_a.index} differs structurally")


@dataclass(frozen=True)
class FaultCorrespondence:
    """Fault mapping between an original circuit and one retimed version."""

    original: Circuit
    retimed: Circuit

    def __post_init__(self) -> None:
        check_same_structure(self.original, self.retimed)

    # -- per-fault maps ------------------------------------------------------

    def to_original(self, fault: StuckAtFault) -> StuckAtFault:
        """The canonical corresponding fault in the original circuit."""
        check_fault(self.retimed, fault)
        return self._map(fault, self.original)

    def to_retimed(self, fault: StuckAtFault) -> StuckAtFault:
        """The canonical corresponding fault in the retimed circuit."""
        check_fault(self.original, fault)
        return self._map(fault, self.retimed)

    def originals_of(self, fault: StuckAtFault) -> List[StuckAtFault]:
        """All same-edge faults in the original corresponding to ``fault``.

        For unchanged edges this is the positional singleton; for modified
        edges it is the full same-value fault set of the edge (the
        correspondence class).
        """
        check_fault(self.retimed, fault)
        return self._class(fault, self.original, self.retimed)

    def retimed_of(self, fault: StuckAtFault) -> List[StuckAtFault]:
        """All same-edge faults in the retimed circuit corresponding to ``fault``."""
        check_fault(self.original, fault)
        return self._class(fault, self.retimed, self.original)

    # -- whole-universe views --------------------------------------------------

    def modified_edges(self) -> List[int]:
        """Indices of edges whose weight changed (the 'modified region')."""
        return [
            edge.index
            for edge, other in zip(self.original.edges, self.retimed.edges)
            if edge.weight != other.weight
        ]

    def is_one_to_one(self, fault: StuckAtFault) -> bool:
        """True when the (retimed-side) fault lies outside the modified region."""
        edge = self.original.edge(fault.line.edge_index)
        other = self.retimed.edge(fault.line.edge_index)
        return edge.weight == other.weight

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _map(fault: StuckAtFault, target: Circuit) -> StuckAtFault:
        edge = target.edge(fault.line.edge_index)
        segment = min(fault.line.segment, edge.num_lines)
        return StuckAtFault(LineRef(edge.index, segment), fault.value)

    @staticmethod
    def _class(
        fault: StuckAtFault, target: Circuit, source: Circuit
    ) -> List[StuckAtFault]:
        source_edge = source.edge(fault.line.edge_index)
        target_edge = target.edge(fault.line.edge_index)
        if source_edge.weight == target_edge.weight:
            return [StuckAtFault(fault.line, fault.value)]
        return [
            StuckAtFault(LineRef(target_edge.index, segment), fault.value)
            for segment in range(1, target_edge.num_lines + 1)
        ]


__all__ = ["FaultCorrespondence", "CorrespondenceError", "check_same_structure"]
