"""MCNC-profile benchmark FSMs (Table I substitution).

The paper's circuits were synthesized from six MCNC FSM benchmarks.  Those
KISS2 files are not redistributable here, so this module generates
*synthetic machines with the exact Table I characteristics* (primary
inputs, primary outputs, state counts) deterministically from a fixed seed:

==========  ====  ====  ========
FSM          PI    PO    States
==========  ====  ====  ========
dk16          3     3      27
pma           9     8      24
s510         20     7      47
s820         18    19      25
s832         18    19      25
scf          27    54     121
==========  ====  ====  ========

Why this substitution preserves the experiments: every theorem is machine
independent, and the paper's measurements only need synthesizable
sequential machines of controlled size.  The generator produces *modular
control machines* -- clusters of up to 8 states with identical local
transition structure plus sparse cross-cluster jumps -- the same shape as
real control FSMs (scf is a scan control machine), which keeps the
synthesized logic compact under two-level minimization while still
producing deep, hard-to-synchronize sequential behaviour.

The machines are fully deterministic (per state, the transition cubes
partition the input space over a small set of decision inputs).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.fsm.model import FSM, Transition

# name -> (PI, PO, states, which circuits in Table II use an explicit reset)
TABLE1_PROFILES: Dict[str, Tuple[int, int, int]] = {
    "dk16": (3, 3, 27),
    "pma": (9, 8, 24),
    "s510": (20, 7, 47),
    "s820": (18, 19, 25),
    "s832": (18, 19, 25),
    "scf": (27, 54, 121),
}

# Per the paper: "The versions of dk16, pma, s510, and scf used employ an
# explicit reset line."
EXPLICIT_RESET = {"dk16": True, "pma": True, "s510": True, "s820": False,
                  "s832": False, "scf": True}

CLUSTER_BITS = 3
CLUSTER_SIZE = 1 << CLUSTER_BITS


def _cube(num_inputs: int, assignments: Dict[int, int]) -> str:
    chars = ["-"] * num_inputs
    for position, value in assignments.items():
        chars[position] = "1" if value else "0"
    return "".join(chars)


def _output_cube(num_outputs: int, asserted: List[int]) -> str:
    chars = ["0"] * num_outputs
    for position in asserted:
        chars[position] = "1"
    return "".join(chars)


def mcnc_fsm(name: str, seed: int = 1995) -> FSM:
    """Generate the named Table I machine (deterministic in ``seed``)."""
    if name not in TABLE1_PROFILES:
        raise ValueError(
            f"unknown benchmark {name!r}; known: {sorted(TABLE1_PROFILES)}"
        )
    num_inputs, num_outputs, num_states = TABLE1_PROFILES[name]
    rng = random.Random(f"{name}:{seed}")

    states = [f"st{i}" for i in range(num_states)]
    num_clusters = (num_states + CLUSTER_SIZE - 1) // CLUSTER_SIZE

    def state_of(cluster: int, position: int) -> str:
        index = cluster * CLUSTER_SIZE + position
        return states[index % num_states]

    def cluster_size(cluster: int) -> int:
        start = cluster * CLUSTER_SIZE
        return min(CLUSTER_SIZE, num_states - start)

    # Machines synthesized without an explicit reset line (s820, s832)
    # instead carry an FSM-level synchronizing input: see below.  Decision
    # inputs never use it, so forcing it low on every ordinary transition
    # keeps the machine deterministic.
    reserved_sync = None if EXPLICIT_RESET[name] else 0
    decision_pool = [
        i for i in range(num_inputs) if i != reserved_sync
    ]

    # Shared per-position local behaviour: decision inputs, next positions
    # and asserted outputs are drawn once and reused by every cluster, so
    # the synthesized logic is largely independent of the cluster bits and
    # two-level minimization can collapse it.
    local_rules: List[List[Tuple[Dict[int, int], int, List[int]]]] = []
    for position in range(CLUSTER_SIZE):
        num_decisions = rng.choice((1, 1, 2))
        decision_inputs = rng.sample(decision_pool, num_decisions)
        rules = []
        for pattern in range(1 << num_decisions):
            assignments = {
                decision_inputs[k]: (pattern >> k) & 1
                for k in range(num_decisions)
            }
            if pattern == 0:
                # Guarantee an intra-cluster chain so every position is
                # reachable from the cluster entry state.
                next_position = (position + 1) % CLUSTER_SIZE
            else:
                next_position = rng.randrange(CLUSTER_SIZE)
            asserted = rng.sample(
                range(num_outputs), rng.randint(1, min(3, num_outputs))
            )
            rules.append((assignments, next_position, asserted))
        local_rules.append(rules)

    # Input bit 0 asserted sends every state to the reset state (the real
    # s820/s832 machines are likewise synchronizable); ordinary transitions
    # require bit 0 low.
    sync_input = reserved_sync

    transitions: List[Transition] = []
    for cluster in range(num_clusters):
        size = cluster_size(cluster)
        for position in range(size):
            src = state_of(cluster, position)
            if sync_input is not None:
                transitions.append(
                    Transition(
                        _cube(num_inputs, {sync_input: 1}),
                        src,
                        states[0],
                        _output_cube(num_outputs, []),
                    )
                )
            rules = local_rules[position]
            for rule_index, (assignments, next_position, asserted) in enumerate(
                rules
            ):
                if sync_input is not None:
                    assignments = dict(assignments)
                    assignments[sync_input] = 0
                # Sparse cross-cluster jumps: the last rule of the last
                # position hops to the next cluster's entry state, giving
                # the machine a long synchronizing backbone.  Jump
                # transitions also report the cluster id on the outputs --
                # they are per-cluster cubes anyway, and without this the
                # cluster bits would be (almost) unobservable, which no
                # real control machine is.
                if position == size - 1 and rule_index == len(rules) - 1:
                    dst = state_of((cluster + 1) % num_clusters, 0)
                    cluster_bits = [
                        j for j in range(min(num_outputs, 8)) if (cluster >> j) & 1
                    ]
                    outputs = sorted(set(asserted) | set(cluster_bits))
                else:
                    dst = state_of(cluster, next_position % size)
                    outputs = asserted
                transitions.append(
                    Transition(
                        _cube(num_inputs, assignments),
                        src,
                        dst,
                        _output_cube(num_outputs, outputs),
                    )
                )

    return FSM(
        name=name,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        states=states,
        transitions=transitions,
        reset_state=states[0],
    )


def mcnc_encoding(fsm: FSM, style: str, seed: int = 1995) -> "Encoding":
    """Cluster-aware jedi-like encoding for the generated machines.

    The generated machines are modular (clusters of up to 8 states with a
    shared local structure), and a good encoder discovers and exploits such
    structure.  jedi's simulated annealing would; our generic greedy
    embedding does not, so for the benchmark machines we build the
    cluster-aware embedding directly:

    * the low ``CLUSTER_BITS`` bits encode the within-cluster position,
      permuted by a style-specific permutation (different styles therefore
      produce genuinely different logic);
    * the high bits encode the cluster id, embedded greedily by
      cluster-level affinity (which clusters jump to which).

    The reset state (cluster 0, position 0) always receives the all-zero
    code, as the explicit-reset synthesis option requires.
    """
    from repro.fsm.encoding import Encoding, code_width

    if style not in ("ji", "jo", "jc", "natural"):
        raise ValueError(f"unknown encoding style {style!r}")
    num_states = fsm.num_states
    width = code_width(num_states)
    cluster_width = width - CLUSTER_BITS
    num_clusters = (num_states + CLUSTER_SIZE - 1) // CLUSTER_SIZE
    if cluster_width < 0 or num_clusters > (1 << max(cluster_width, 0)):
        # Machine too small for the clustered layout: fall back to generic.
        from repro.fsm.encoding import encode

        return encode(fsm, style if style != "natural" else "natural")

    rng = random.Random(f"{fsm.name}:{style}:{seed}")
    # Position permutation: identity for jc/natural, seeded for ji/jo --
    # always fixing position 0 so the reset state stays at code zero.
    positions = list(range(1, CLUSTER_SIZE))
    if style in ("ji", "jo"):
        rng.shuffle(positions)
    position_code = {0: 0}
    for index, position in enumerate(positions, start=1):
        position_code[position] = index

    # Cluster permutation: cluster 0 fixed at 0; others seeded by style.
    clusters = list(range(1, num_clusters))
    if style != "natural":
        rng.shuffle(clusters)
    cluster_code = {0: 0}
    for index, cluster in enumerate(clusters, start=1):
        cluster_code[cluster] = index

    code_of = {}
    for index, state in enumerate(fsm.states):
        cluster, position = divmod(index, CLUSTER_SIZE)
        code = (cluster_code[cluster] << CLUSTER_BITS) | position_code[position]
        code_of[state] = tuple(
            (code >> (width - 1 - bit)) & 1 for bit in range(width)
        )
    return Encoding(fsm.name, style, width, code_of)


def table1() -> List[Dict[str, int]]:
    """Regenerate Table I: the characteristics of the six machines."""
    rows = []
    for name in TABLE1_PROFILES:
        fsm = mcnc_fsm(name)
        row = {"FSM": name}
        row.update(fsm.characteristics())
        rows.append(row)
    return rows


def synthesize_benchmark(name: str, style: str, script: str, seed: int = 1995):
    """Synthesize one paper-style circuit variant, e.g. ``("s510","jo","rugged")``.

    Uses the cluster-aware encoding and the paper's explicit-reset choices.
    Returns a :class:`repro.fsm.synth.SynthesisResult` whose circuit is
    named ``<fsm>.<style>.<sd|sr>``.
    """
    from repro.fsm.synth import synthesize

    fsm = mcnc_fsm(name, seed=seed)
    encoding = mcnc_encoding(fsm, style, seed=seed)
    return synthesize(
        fsm,
        style=style,
        script=script,
        explicit_reset=EXPLICIT_RESET[name],
        encoding=encoding,
    )


__all__ = [
    "mcnc_fsm",
    "mcnc_encoding",
    "table1",
    "synthesize_benchmark",
    "TABLE1_PROFILES",
    "EXPLICIT_RESET",
]
