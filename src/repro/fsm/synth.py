"""FSM-to-netlist synthesis (the SIS stand-in).

Pipeline: encode states -> build per-function ON-set covers (next-state
bits + primary outputs over the input and state-bit literals) -> two-level
minimization -> gate construction under one of two *scripts* mirroring the
paper's ``script.delay`` / ``script.rugged``:

* ``delay`` (``.sd``): balanced trees of 2-input gates -- shallow logic,
  more gates (delay-oriented, like ``script.delay``);
* ``rugged`` (``.sr``): flat wide gates plus common-literal-pair extraction
  -- fewer gates, longer paths (area-oriented, like ``script.rugged``).

Shared structure: AND terms (cubes) are cached and shared across all
functions (multi-output sharing), literal inverters are shared, and the
optional explicit reset line gates every next-state function with
``NOT rst`` (the reset state must be encoded as all zeros, which
:func:`repro.fsm.encoding.encode` guarantees by default).

Circuit names follow the paper's convention: ``<fsm>.<enc>.<script>``,
e.g. ``dk16.ji.sd``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.fsm.encoding import Encoding, encode
from repro.fsm.model import FSM
from repro.fsm.twolevel import Cube, cube_from_string, minimize_cover

SCRIPT_CODES = {"delay": "sd", "rugged": "sr"}


class SynthesisError(ValueError):
    """Raised when synthesis cannot produce a reasonable circuit."""


@dataclass
class SynthesisResult:
    """A synthesized circuit plus the artifacts that produced it."""

    circuit: Circuit
    fsm: FSM
    encoding: Encoding
    script: str
    explicit_reset: bool
    cover_sizes: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        stats = self.circuit.stats()
        return (
            f"{self.circuit.name}: {stats['gates']} gates, {stats['dffs']} DFFs, "
            f"period {stats['clock_period']}"
        )

    def state_positions(self) -> List[int]:
        """Canonical register-order index of each state bit ``s{j}``.

        The circuit's state vector is ordered by (edge, position), not by
        declaration; this maps state bit ``j`` to its slot.
        """
        names = getattr(self.circuit, "register_names", {})
        by_name = {name: ref for ref, name in names.items()}
        refs = self.circuit.registers()
        return [
            refs.index(by_name[f"s{j}"]) for j in range(self.encoding.width)
        ]

    def circuit_state(self, symbolic_state: str) -> tuple:
        """The circuit's canonical state tuple encoding a symbolic state."""
        code = self.encoding.code_of[symbolic_state]
        state = [0] * self.circuit.num_registers()
        for j, position in enumerate(self.state_positions()):
            state[position] = code[j]
        return tuple(state)


class _NetBuilder:
    """Gate-construction helpers over a CircuitBuilder with a name allocator."""

    def __init__(self, builder: CircuitBuilder, script: str):
        self.builder = builder
        self.script = script
        self._counter = itertools.count()
        self._inverters: Dict[str, str] = {}
        self._const0: Optional[str] = None
        self._const1: Optional[str] = None

    def fresh(self, prefix: str) -> str:
        return f"{prefix}_{next(self._counter)}"

    def const0(self) -> str:
        if self._const0 is None:
            self._const0 = self.builder.const0("const0")
        return self._const0

    def const1(self) -> str:
        if self._const1 is None:
            self._const1 = self.builder.const1("const1")
        return self._const1

    def inverter(self, signal: str) -> str:
        if signal not in self._inverters:
            name = self.builder.not_(f"{signal}_n", signal)
            self._inverters[signal] = name
        return self._inverters[signal]

    def and_gate(self, operands: Sequence[str], prefix: str = "a") -> str:
        return self._tree("and", operands, prefix)

    def or_gate(self, operands: Sequence[str], prefix: str = "o") -> str:
        return self._tree("or", operands, prefix)

    def _tree(self, op: str, operands: Sequence[str], prefix: str) -> str:
        operands = list(operands)
        if not operands:
            raise SynthesisError(f"empty {op} gate")
        if len(operands) == 1:
            return operands[0]
        if self.script == "rugged":
            # Flat wide gates (area-oriented), chunked so very large covers
            # become a shallow tree of wide gates.  OR planes use a smaller
            # chunk: their roots sit at the register boundary and narrow
            # roots keep retiming's register growth in a realistic range.
            chunk_size = 8 if op == "or" else 16
            level = operands
            while len(level) > 1:
                next_level = []
                for index in range(0, len(level), chunk_size):
                    chunk = level[index : index + chunk_size]
                    if len(chunk) == 1:
                        next_level.append(chunk[0])
                        continue
                    name = self.fresh(prefix)
                    self.builder.gate(name, _AND if op == "and" else _OR, chunk)
                    next_level.append(name)
                level = next_level
            return level[0]
        # delay script: balanced 2-input tree.
        level = operands
        while len(level) > 1:
            next_level = []
            for index in range(0, len(level) - 1, 2):
                name = self.fresh(prefix)
                if op == "and":
                    self.builder.and_(name, level[index], level[index + 1])
                else:
                    self.builder.or_(name, level[index], level[index + 1])
                next_level.append(name)
            if len(level) % 2:
                next_level.append(level[-1])
            level = next_level
        return level[0]


from repro.circuit.types import GateType as _GT  # noqa: E402

_AND = _GT.AND
_OR = _GT.OR


def _build_covers(
    fsm: FSM, encoding: Encoding
) -> Tuple[Dict[str, List[Cube]], int]:
    """ON-set covers for every next-state bit and primary output.

    Cube variable order: FSM inputs first (bits 0 .. i-1), then state bits.
    """
    width = fsm.num_inputs + encoding.width
    covers: Dict[str, List[Cube]] = {
        **{f"ns{j}": [] for j in range(encoding.width)},
        **{f"out{k}": [] for k in range(fsm.num_outputs)},
    }
    for transition in fsm.transitions:
        base = transition.input_cube + encoding.code_string(transition.src)
        cube = cube_from_string(base)
        dst_code = encoding.code_of[transition.dst]
        for j, bit in enumerate(dst_code):
            if bit:
                covers[f"ns{j}"].append(cube)
        for k, literal in enumerate(transition.output_cube):
            if literal == "1":
                covers[f"out{k}"].append(cube)
    return covers, width


def synthesize(
    fsm: FSM,
    style: str = "jc",
    script: str = "delay",
    explicit_reset: bool = False,
    encoding: Optional[Encoding] = None,
    max_gates: int = 6000,
) -> SynthesisResult:
    """Synthesize an FSM into a gate-level sequential circuit."""
    if script not in SCRIPT_CODES:
        raise SynthesisError(f"unknown script {script!r}")
    if encoding is None:
        encoding = encode(fsm, style, reset_zero=True)
    covers, cube_width = _build_covers(fsm, encoding)
    minimized = {name: minimize_cover(cubes) for name, cubes in covers.items()}

    name = f"{fsm.name}.{encoding.style}.{SCRIPT_CODES[script]}"
    builder = CircuitBuilder(name)
    nets = _NetBuilder(builder, script)

    input_signals = [builder.input(f"x{i}") for i in range(fsm.num_inputs)]
    if explicit_reset:
        reset = builder.input("rst")
    state_signals = [f"s{j}" for j in range(encoding.width)]

    def literal_signal(position: int, positive: bool) -> str:
        if position < fsm.num_inputs:
            base = input_signals[position]
        else:
            base = state_signals[position - fsm.num_inputs]
        return base if positive else nets.inverter(base)

    # Shared cube gates across all functions.
    cube_signal: Dict[Cube, str] = {}
    pair_signals: Dict[Tuple[str, str], str] = {}

    def literals_of(cube: Cube) -> List[str]:
        care, value = cube
        literals = []
        for position in range(cube_width):
            bit = 1 << position
            if care & bit:
                literals.append(literal_signal(position, bool(value & bit)))
        return literals

    all_cubes = sorted({cube for cubes in minimized.values() for cube in cubes})

    if script == "rugged":
        _extract_common_pairs(all_cubes, literals_of, pair_signals, nets)

    def build_cube(cube: Cube) -> str:
        if cube in cube_signal:
            return cube_signal[cube]
        literals = literals_of(cube)
        if not literals:
            signal = nets.const1()
        elif script == "rugged" and pair_signals:
            signal = nets.and_gate(_apply_pairs(literals, pair_signals), "c")
        else:
            signal = nets.and_gate(literals, "c")
        cube_signal[cube] = signal
        return signal

    function_signal: Dict[str, str] = {}
    for function_name, cubes in minimized.items():
        if not cubes:
            function_signal[function_name] = nets.const0()
            continue
        terms = [build_cube(cube) for cube in cubes]
        function_signal[function_name] = nets.or_gate(terms, f"f_{function_name}")

    # Registers (with optional explicit reset gating the next-state logic).
    if explicit_reset:
        reset_n = nets.inverter(reset)
    for j in range(encoding.width):
        source = function_signal[f"ns{j}"]
        if explicit_reset:
            gated = builder.and_(f"nsr{j}", reset_n, source)
            source = gated
        builder.dff(state_signals[j], source)

    for k in range(fsm.num_outputs):
        builder.output(f"z{k}", function_signal[f"out{k}"])

    circuit = builder.build(allow_dangling=True)
    if circuit.num_gates() > max_gates:
        raise SynthesisError(
            f"{name}: {circuit.num_gates()} gates exceeds the cap {max_gates}"
        )
    return SynthesisResult(
        circuit=circuit,
        fsm=fsm,
        encoding=encoding,
        script=script,
        explicit_reset=explicit_reset,
        cover_sizes={k: len(v) for k, v in minimized.items()},
    )


def _extract_common_pairs(
    cubes: Sequence[Cube],
    literals_of,
    pair_signals: Dict[Tuple[str, str], str],
    nets: _NetBuilder,
    min_count: int = 3,
    max_pairs: int = 64,
) -> None:
    """Area optimization: share AND2 gates for frequent literal pairs.

    Candidate pairs are selected by frequency, then a dry run of the
    greedy replacement determines which are actually used; only those get
    gates, so no dead logic is created.
    """
    from collections import Counter

    counts: Counter = Counter()
    for cube in cubes:
        literals = sorted(literals_of(cube))
        for pair in itertools.combinations(literals, 2):
            counts[pair] += 1
    candidates: Dict[Tuple[str, str], str] = {}
    for pair, count in counts.most_common(max_pairs):
        if count < min_count:
            break
        if pair[0] == pair[1]:
            continue
        candidates[pair] = ""  # placeholder: presence is what matters
    used: set = set()
    for cube in cubes:
        terms = _apply_pairs(literals_of(cube), candidates, record=used)
        del terms
    for pair in sorted(used):
        name = nets.fresh("p")
        nets.builder.and_(name, pair[0], pair[1])
        pair_signals[pair] = name


def _apply_pairs(
    literals: List[str],
    pair_signals: Dict[Tuple[str, str], str],
    record: Optional[set] = None,
) -> List[str]:
    """Greedily replace literal pairs with their shared AND2 signals.

    With ``record`` given, only notes which pairs would be used (dry run);
    otherwise substitutes the pair gates' output signals.
    """
    remaining = sorted(literals)
    terms: List[str] = []
    changed = True
    while changed and len(remaining) >= 2:
        changed = False
        for a, b in itertools.combinations(remaining, 2):
            key = (a, b) if a < b else (b, a)
            if key in pair_signals:
                if record is not None:
                    record.add(key)
                    terms.append(a)  # dry run: keep literals
                    terms.append(b)
                else:
                    terms.append(pair_signals[key])
                remaining.remove(a)
                remaining.remove(b)
                changed = True
                break
    return terms + remaining


__all__ = ["synthesize", "SynthesisResult", "SynthesisError", "SCRIPT_CODES"]
