"""State encoding: jedi-like affinity-driven embedding.

The paper synthesizes each FSM with three jedi options -- input dominant
(``ji``), output dominant (``jo``) and a combination (``jc``) -- plus we
provide ``natural`` (declaration order) for reference.  This module
implements the same *family* of algorithms jedi belongs to: build a
state-pair affinity graph, then greedily embed states into a minimal-width
Boolean hypercube so high-affinity pairs receive close (small Hamming
distance) codes.

Affinity definitions (jedi-like):

* input dominant: state pairs that are successors of a common predecessor
  state (they are "reached alike");
* output dominant: state pairs asserting similar outputs, plus pairs with a
  common successor (they "behave alike");
* combination: the sum of both.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fsm.model import FSM

STYLES = ("natural", "ji", "jo", "jc")


@dataclass(frozen=True)
class Encoding:
    """An assignment of binary codes to symbolic states."""

    fsm_name: str
    style: str
    width: int
    code_of: Dict[str, Tuple[int, ...]]

    def code_string(self, state: str) -> str:
        return "".join(str(bit) for bit in self.code_of[state])

    def decode(self, bits: Tuple[int, ...]) -> Optional[str]:
        for state, code in self.code_of.items():
            if code == bits:
                return state
        return None


def code_width(num_states: int) -> int:
    """Minimal number of state bits."""
    return max(1, math.ceil(math.log2(max(1, num_states))))


def _affinity(fsm: FSM, style: str) -> Dict[Tuple[str, str], float]:
    affinity: Dict[Tuple[str, str], float] = {}

    def bump(a: str, b: str, amount: float) -> None:
        if a == b:
            return
        key = (a, b) if a < b else (b, a)
        affinity[key] = affinity.get(key, 0.0) + amount

    if style in ("ji", "jc"):
        # Successors of a common predecessor attract.
        for state in fsm.states:
            successors = [t.dst for t in fsm.transitions_from(state)]
            for a, b in itertools.combinations(set(successors), 2):
                bump(a, b, 1.0)
    if style in ("jo", "jc"):
        # Pairs with a common successor attract.
        by_dst: Dict[str, set] = {}
        for transition in fsm.transitions:
            by_dst.setdefault(transition.dst, set()).add(transition.src)
        for sources in by_dst.values():
            for a, b in itertools.combinations(sorted(sources), 2):
                bump(a, b, 1.0)
        # Output similarity: fraction of asserted outputs shared.
        asserted: Dict[str, set] = {
            state: set() for state in fsm.states
        }
        for transition in fsm.transitions:
            for position, literal in enumerate(transition.output_cube):
                if literal == "1":
                    asserted[transition.src].add(position)
        for a, b in itertools.combinations(fsm.states, 2):
            common = asserted[a] & asserted[b]
            if common:
                union = asserted[a] | asserted[b]
                bump(a, b, len(common) / len(union))
    return affinity


def encode(fsm: FSM, style: str = "jc", reset_zero: bool = True) -> Encoding:
    """Encode the FSM's states into ``ceil(log2 n)`` bits.

    With ``reset_zero`` (default) the reset state receives the all-zero
    code, which the explicit-reset synthesis option relies on.
    """
    if style not in STYLES:
        raise ValueError(f"unknown encoding style {style!r} (pick from {STYLES})")
    width = code_width(fsm.num_states)
    all_codes = [
        tuple(int(b) for b in format(i, f"0{width}b")) for i in range(2 ** width)
    ]
    reset = fsm.reset_state or fsm.states[0]

    if style == "natural":
        order = [reset] + [s for s in fsm.states if s != reset]
        code_of = dict(zip(order, all_codes))
        if not reset_zero:
            code_of = dict(zip(fsm.states, all_codes))
        return Encoding(fsm.name, style, width, code_of)

    affinity = _affinity(fsm, style)

    def pair_affinity(a: str, b: str) -> float:
        key = (a, b) if a < b else (b, a)
        return affinity.get(key, 0.0)

    total: Dict[str, float] = {state: 0.0 for state in fsm.states}
    for (a, b), value in affinity.items():
        total[a] += value
        total[b] += value
    # Place the reset state first (code 0), then states by affinity mass.
    order = sorted(fsm.states, key=lambda s: (-total[s], s))
    if reset_zero:
        order = [reset] + [s for s in order if s != reset]

    code_of: Dict[str, Tuple[int, ...]] = {}
    free = list(all_codes)
    for state in order:
        if not code_of:
            chosen = free[0]
        else:
            def cost(code: Tuple[int, ...]) -> float:
                return sum(
                    pair_affinity(state, placed)
                    * sum(x != y for x, y in zip(code, placed_code))
                    for placed, placed_code in code_of.items()
                )

            chosen = min(free, key=lambda code: (cost(code), code))
        code_of[state] = chosen
        free.remove(chosen)
    return Encoding(fsm.name, style, width, code_of)


__all__ = ["Encoding", "encode", "code_width", "STYLES"]
