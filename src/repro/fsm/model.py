"""Symbolic finite-state machine model (KISS2 semantics).

An :class:`FSM` is a Mealy machine described by symbolic transitions: an
input *cube* (string over ``0 1 -``), a present state, a next state and an
output cube.  This matches the MCNC benchmark format the paper's circuits
were synthesized from.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


def cube_matches(cube: str, bits: Sequence[int]) -> bool:
    """True when a binary vector lies inside a cube."""
    if len(cube) != len(bits):
        raise ValueError(f"cube {cube!r} vs vector of length {len(bits)}")
    for literal, bit in zip(cube, bits):
        if literal == "0" and bit != 0:
            return False
        if literal == "1" and bit != 1:
            return False
        if literal not in "01-":
            raise ValueError(f"bad cube literal {literal!r}")
    return True


def cubes_intersect(a: str, b: str) -> bool:
    """True when two cubes share at least one minterm."""
    if len(a) != len(b):
        raise ValueError("cube length mismatch")
    for la, lb in zip(a, b):
        if (la == "0" and lb == "1") or (la == "1" and lb == "0"):
            return False
    return True


@dataclass(frozen=True)
class Transition:
    """One symbolic transition."""

    input_cube: str
    src: str
    dst: str
    output_cube: str


@dataclass
class FSM:
    """A symbolic Mealy machine."""

    name: str
    num_inputs: int
    num_outputs: int
    states: List[str]
    transitions: List[Transition]
    reset_state: Optional[str] = None

    def __post_init__(self) -> None:
        known = set(self.states)
        for transition in self.transitions:
            if len(transition.input_cube) != self.num_inputs:
                raise ValueError(
                    f"{self.name}: input cube {transition.input_cube!r} has "
                    f"wrong width"
                )
            if len(transition.output_cube) != self.num_outputs:
                raise ValueError(
                    f"{self.name}: output cube {transition.output_cube!r} has "
                    f"wrong width"
                )
            if transition.src not in known or transition.dst not in known:
                raise ValueError(
                    f"{self.name}: transition references unknown state "
                    f"{transition.src!r} or {transition.dst!r}"
                )
        if self.reset_state is not None and self.reset_state not in known:
            raise ValueError(f"{self.name}: unknown reset state {self.reset_state!r}")

    @property
    def num_states(self) -> int:
        return len(self.states)

    def transitions_from(self, state: str) -> List[Transition]:
        return [t for t in self.transitions if t.src == state]

    def is_deterministic(self) -> bool:
        """No two transitions from the same state have overlapping cubes."""
        by_state: Dict[str, List[Transition]] = {}
        for transition in self.transitions:
            by_state.setdefault(transition.src, []).append(transition)
        for group in by_state.values():
            for a, b in itertools.combinations(group, 2):
                if cubes_intersect(a.input_cube, b.input_cube):
                    return False
        return True

    def step(
        self, state: str, vector: Sequence[int]
    ) -> Tuple[Optional[str], Optional[str]]:
        """(next state, output cube) for a binary input vector.

        Returns ``(None, None)`` when no transition matches (incompletely
        specified machine).
        """
        for transition in self.transitions_from(state):
            if cube_matches(transition.input_cube, vector):
                return transition.dst, transition.output_cube
        return None, None

    def reachable_states(self, start: Optional[str] = None) -> Set[str]:
        """States reachable from ``start`` (default: the reset state or the
        first state) through any transition."""
        if start is None:
            start = self.reset_state or self.states[0]
        seen = {start}
        frontier = [start]
        adjacency: Dict[str, Set[str]] = {}
        for transition in self.transitions:
            adjacency.setdefault(transition.src, set()).add(transition.dst)
        while frontier:
            state = frontier.pop()
            for successor in adjacency.get(state, ()):  # noqa: B905
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen

    def characteristics(self) -> Dict[str, int]:
        """The Table I row: PI / PO / #states."""
        return {
            "PI": self.num_inputs,
            "PO": self.num_outputs,
            "States": self.num_states,
        }


__all__ = ["FSM", "Transition", "cube_matches", "cubes_intersect"]
