"""KISS2 format reader and writer (the MCNC FSM benchmark format).

Format::

    .i 3
    .o 3
    .p 108
    .s 27
    .r st0
    0-- st0 st1 001
    ...
    .e
"""

from __future__ import annotations

from typing import List, Optional, TextIO, Union

from repro.fsm.model import FSM, Transition


class KissError(ValueError):
    """Raised on malformed KISS2 input."""


def parse_kiss(text: str, name: str = "fsm") -> FSM:
    """Parse KISS2 source text."""
    num_inputs: Optional[int] = None
    num_outputs: Optional[int] = None
    reset_state: Optional[str] = None
    declared_products: Optional[int] = None
    declared_states: Optional[int] = None
    transitions: List[Transition] = []
    states: List[str] = []
    seen_states = set()

    def note_state(state: str) -> None:
        if state not in seen_states:
            seen_states.add(state)
            states.append(state)

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".i":
                num_inputs = int(parts[1])
            elif directive == ".o":
                num_outputs = int(parts[1])
            elif directive == ".p":
                declared_products = int(parts[1])
            elif directive == ".s":
                declared_states = int(parts[1])
            elif directive == ".r":
                reset_state = parts[1]
            elif directive == ".e":
                break
            else:
                raise KissError(f"line {line_number}: unknown directive {directive}")
            continue
        parts = line.split()
        if len(parts) != 4:
            raise KissError(f"line {line_number}: expected 4 fields, got {line!r}")
        input_cube, src, dst, output_cube = parts
        note_state(src)
        note_state(dst)
        transitions.append(Transition(input_cube, src, dst, output_cube))

    if num_inputs is None or num_outputs is None:
        raise KissError("missing .i or .o directive")
    if declared_products is not None and declared_products != len(transitions):
        # Benchmarks are occasionally sloppy here; tolerate but keep parsing.
        pass
    if declared_states is not None and declared_states != len(states):
        raise KissError(
            f"declared {declared_states} states but found {len(states)}"
        )
    return FSM(
        name=name,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        states=states,
        transitions=transitions,
        reset_state=reset_state,
    )


def read_kiss(path_or_file: Union[str, TextIO], name: Optional[str] = None) -> FSM:
    """Read a KISS2 file from a path or open file object."""
    if isinstance(path_or_file, str):
        with open(path_or_file) as handle:
            text = handle.read()
        default = path_or_file.rsplit("/", 1)[-1].split(".", 1)[0]
    else:
        text = path_or_file.read()
        default = "fsm"
    return parse_kiss(text, name or default)


def write_kiss(fsm: FSM) -> str:
    """Serialize an FSM to KISS2 text."""
    lines = [
        f"# {fsm.name}",
        f".i {fsm.num_inputs}",
        f".o {fsm.num_outputs}",
        f".p {len(fsm.transitions)}",
        f".s {fsm.num_states}",
    ]
    if fsm.reset_state is not None:
        lines.append(f".r {fsm.reset_state}")
    for transition in fsm.transitions:
        lines.append(
            f"{transition.input_cube} {transition.src} "
            f"{transition.dst} {transition.output_cube}"
        )
    lines.append(".e")
    return "\n".join(lines) + "\n"


__all__ = ["parse_kiss", "read_kiss", "write_kiss", "KissError"]
