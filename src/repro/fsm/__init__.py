"""FSM synthesis substrate: the SIS/jedi stand-in.

KISS2 parsing, symbolic FSM model, jedi-like state encodings, two-level
minimization, gate-level synthesis with delay/rugged scripts, and the
Table I benchmark machine generator.
"""

from repro.fsm.encoding import STYLES, Encoding, code_width, encode
from repro.fsm.kiss import KissError, parse_kiss, read_kiss, write_kiss
from repro.fsm.mcnc import EXPLICIT_RESET, TABLE1_PROFILES, mcnc_fsm, table1
from repro.fsm.model import FSM, Transition, cube_matches, cubes_intersect
from repro.fsm.synth import (
    SCRIPT_CODES,
    SynthesisError,
    SynthesisResult,
    synthesize,
)
from repro.fsm.twolevel import (
    Cube,
    cover_from_strings,
    cover_to_strings,
    cube_from_string,
    cube_to_string,
    eval_cover,
    minimize_cover,
)

__all__ = [
    "FSM",
    "Transition",
    "cube_matches",
    "cubes_intersect",
    "parse_kiss",
    "read_kiss",
    "write_kiss",
    "KissError",
    "encode",
    "Encoding",
    "code_width",
    "STYLES",
    "minimize_cover",
    "Cube",
    "cube_from_string",
    "cube_to_string",
    "cover_from_strings",
    "cover_to_strings",
    "eval_cover",
    "synthesize",
    "SynthesisResult",
    "SynthesisError",
    "SCRIPT_CODES",
    "mcnc_fsm",
    "table1",
    "TABLE1_PROFILES",
    "EXPLICIT_RESET",
]
