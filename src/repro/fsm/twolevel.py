"""Two-level (sum-of-products) logic minimization on cube covers.

A light-weight espresso-style loop sufficient for the modular control FSMs
this library synthesizes: iterated single-cube containment removal and
distance-1 merging until fixpoint.  Cubes are packed into integer pairs
``(care, value)`` -- bit *i* of ``care`` set when literal *i* is specified,
and ``value`` giving the specified bits -- so both operations are O(1) per
cube pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

Cube = Tuple[int, int]  # (care mask, value bits); value must satisfy value & ~care == 0


def cube_from_string(text: str) -> Cube:
    """Parse ``"01-"`` style cube text (leftmost character = bit 0)."""
    care = 0
    value = 0
    for position, literal in enumerate(text):
        if literal == "1":
            care |= 1 << position
            value |= 1 << position
        elif literal == "0":
            care |= 1 << position
        elif literal != "-":
            raise ValueError(f"bad cube literal {literal!r}")
    return care, value


def cube_to_string(cube: Cube, width: int) -> str:
    """Render a packed cube as ``"01-"`` text of the given width."""
    care, value = cube
    chars = []
    for position in range(width):
        bit = 1 << position
        if not care & bit:
            chars.append("-")
        elif value & bit:
            chars.append("1")
        else:
            chars.append("0")
    return "".join(chars)


def cube_contains(general: Cube, specific: Cube) -> bool:
    """True when every minterm of ``specific`` lies inside ``general``."""
    care_g, value_g = general
    care_s, value_s = specific
    if care_g & ~care_s:
        return False  # general specifies a literal the specific leaves free
    return (value_g ^ value_s) & care_g == 0


def cube_matches_vector(cube: Cube, bits: int) -> bool:
    """True when the binary assignment ``bits`` lies in the cube."""
    care, value = cube
    return (bits ^ value) & care == 0


def _merge(a: Cube, b: Cube) -> Tuple[int, int]:
    """Merge two distance-1 cubes (caller checks mergeability)."""
    care_a, value_a = a
    care_b, value_b = b
    differing = value_a ^ value_b
    return care_a & ~differing, value_a & ~differing


def _mergeable(a: Cube, b: Cube) -> bool:
    care_a, value_a = a
    care_b, value_b = b
    if care_a != care_b:
        return False
    differing = value_a ^ value_b
    return differing != 0 and differing & (differing - 1) == 0


def minimize_cover(cubes: Iterable[Cube], max_passes: int = 64) -> List[Cube]:
    """Iterated containment removal + distance-1 merging to fixpoint.

    The result covers exactly the same ON-set (both operations preserve the
    covered set), with typically far fewer cubes for structured covers.
    """
    current: List[Cube] = sorted(set(cubes))
    for _ in range(max_passes):
        merged = _merge_pass(current)
        pruned = _containment_pass(merged)
        if pruned == current:
            return current
        current = pruned
    return current


def _merge_pass(cubes: List[Cube]) -> List[Cube]:
    """One pass of distance-1 merging (hash-join on the reduced key)."""
    result: Set[Cube] = set(cubes)
    # Group by care mask; within a group, two cubes merge when their values
    # differ in exactly one care bit.
    by_care: dict = {}
    for cube in cubes:
        by_care.setdefault(cube[0], []).append(cube)
    for care, group in by_care.items():
        values = {value for _, value in group}
        bit = 1
        remaining_bits = care
        while remaining_bits:
            bit = remaining_bits & -remaining_bits
            remaining_bits &= remaining_bits - 1
            for _, value in group:
                partner = value ^ bit
                if partner in values and value < partner:
                    result.add((care & ~bit, value & ~bit))
    return sorted(result)


def _containment_pass(cubes: List[Cube]) -> List[Cube]:
    """Remove cubes single-cube-contained in another cube of the cover."""
    # Sort by ascending care popcount: more general cubes first.
    ordered = sorted(cubes, key=lambda c: (bin(c[0]).count("1"), c))
    kept: List[Cube] = []
    for cube in ordered:
        if not any(cube_contains(general, cube) for general in kept):
            kept.append(cube)
    return sorted(kept)


def cover_from_strings(texts: Sequence[str]) -> List[Cube]:
    """Parse a list of cube strings into packed cubes."""
    return [cube_from_string(t) for t in texts]


def cover_to_strings(cubes: Sequence[Cube], width: int) -> List[str]:
    """Render packed cubes back to ``"01-"`` strings."""
    return [cube_to_string(c, width) for c in cubes]


def eval_cover(cubes: Sequence[Cube], bits: int) -> bool:
    """Evaluate the SOP cover on a packed binary assignment."""
    return any(cube_matches_vector(cube, bits) for cube in cubes)


__all__ = [
    "Cube",
    "cube_from_string",
    "cube_to_string",
    "cube_contains",
    "cube_matches_vector",
    "minimize_cover",
    "cover_from_strings",
    "cover_to_strings",
    "eval_cover",
]
