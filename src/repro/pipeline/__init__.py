"""Resumable, store-backed execution of the paper's Fig. 6 flow.

The pipeline package turns the monolithic flow functions of
:mod:`repro.core` into explicit stages (synth -> retime -> collapse ->
atpg -> derive -> faultsim) with per-stage memoization against the
content-addressed artifact store, structured journaling, and mid-run ATPG
checkpointing.  See :mod:`repro.pipeline.flow`.
"""

from repro.pipeline.flow import (
    FlowCancelled,
    FlowPipeline,
    PipelineResult,
    StageRecord,
)

__all__ = ["FlowCancelled", "FlowPipeline", "PipelineResult", "StageRecord"]
