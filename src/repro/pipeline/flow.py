"""The Fig. 6 flow as an explicit, store-backed, journaled stage pipeline.

:class:`FlowPipeline` decomposes the retime-for-testability flow into the
stages a reader of the paper would draw on a whiteboard::

    synth -> retime -> collapse -> atpg -> derive -> faultsim

Each stage is **memoized against the artifact store** (when one is
attached): its inputs are folded into a content key, a valid record under
that key short-circuits the stage, and a recomputed result is written back.
A warm store therefore turns the expensive front of the flow -- synthesis,
min-register retiming, ATPG -- into reads, while the always-cheap stages
(test-set derivation) simply recompute.  Every stage emits ``stage_start``
/ ``stage_end`` events into the run journal with wall seconds, CPU
seconds, its cache disposition and store key, and every record the stage
reads or writes is pinned via ``artifact_ref`` so the GC cannot evict
evidence out from under a journal.

The ATPG stage additionally threads an :class:`~repro.store.checkpoint.
AtpgCheckpoint` (kept under the store's checkpoint directory, keyed like
the stage) through :func:`~repro.atpg.engine.run_atpg`, so a killed run
resumes from its surviving fault queue instead of restarting; the
checkpoint is discarded once the stage's result is safely in the store.

With no store attached the pipeline degrades to exactly the plain flow:
every stage computes, every cache disposition reads ``off``.

Two properties matter to the job service (:mod:`repro.service`), which
runs many pipelines against one shared store:

* **atomic read-and-pin** -- stage loads pass the journal's
  ``artifact_ref`` into :meth:`ArtifactStore.get`/``put`` as the ``pin``
  callback, so the journal pin is recorded inside the store's shard lock
  and a concurrent GC can never evict a record between the read and the
  pin landing;
* **cancellation** -- a ``cancel_event`` (any object with ``is_set()``)
  is checked at every stage boundary; a set event raises
  :class:`FlowCancelled` before the next stage starts, which is how the
  server aborts a queued-then-unwanted job without killing the process.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


class FlowCancelled(RuntimeError):
    """Raised at a stage boundary when the pipeline's cancel event is set."""

from repro.atpg.budget import AtpgBudget
from repro.atpg.engine import AtpgResult, run_atpg
from repro.atpg.guidance import GUIDANCE_MODES, log_training_rows, make_policy
from repro.circuit.digest import circuit_digest, structural_identity
from repro.circuit.netlist import Circuit
from repro.core.flow import FlowResult
from repro.faults.collapse import collapse_faults
from repro.faults.model import StuckAtFault
from repro.faultsim import FaultSimResult, fault_simulate
from repro.retiming.core import Retiming
from repro.retiming.minregister import min_register_retiming
from repro.store.artifacts import (
    atpg_result_from_payload,
    atpg_result_payload,
    budget_fingerprint,
    faults_fingerprint,
    faults_from_payload,
    faults_payload,
    faultsim_from_payload,
    faultsim_payload,
    retiming_from_payload,
    retiming_payload,
)
from repro.store.checkpoint import AtpgCheckpoint
from repro.store.core import ArtifactStore
from repro.store.journal import RunJournal
from repro.testset.model import TestSet
from repro.testset.transform import derive_retimed_test_set


@dataclass
class StageRecord:
    """One executed pipeline stage, as the journal reports it."""

    name: str
    seconds: float
    cpu_seconds: float
    cache: str  # "hit" | "miss" | "off"
    store_key: Optional[str] = None
    detail: Dict[str, object] = field(default_factory=dict)


@dataclass
class PipelineResult:
    """A flow outcome plus the stage-by-stage account of producing it."""

    flow: FlowResult
    stages: List[StageRecord]
    journal_path: Optional[str] = None

    def stage(self, name: str) -> Optional[StageRecord]:
        for record in self.stages:
            if record.name == name:
                return record
        return None


class FlowPipeline:
    """Stage-structured executor for the Fig. 6 flow.

    Args:
        store: artifact store backing stage memoization (``None`` = compute
            everything, the behaviour of the plain flow functions).
        journal: run journal receiving stage events and artifact pins.
        workers / engine / kernel: forwarded to
            :func:`~repro.atpg.engine.run_atpg`.
        backend: word implementation for the bit-parallel kernels
            (``"bigint"``, ``"numpy"``, or ``"auto"``; see
            :mod:`repro.simulation.backends`), forwarded to ATPG and fault
            simulation.  Results are bit-identical across backends, so
            stage memoization keys deliberately ignore it.
        guidance: ATPG search guidance (``"off"``/``"scoap"``/
            ``"learned"``/``"auto"``, see :mod:`repro.atpg.guidance`).
            Unlike ``backend``, guided runs may emit a *different (equally
            valid) test set*, so the ATPG stage key includes the
            **resolved** mode (``auto`` becomes whichever tier actually
            ran) -- guided and unguided results never alias.  Every
            store-backed ATPG stage, guided or not, also folds its
            per-fault effort telemetry into the store's shared
            ``guidance-data`` training dataset.
        resume: let the ATPG stage restore a surviving checkpoint for its
            exact (circuit, faults, budget) key before targeting faults.
        checkpoint_path: override the checkpoint location (defaults to the
            store's checkpoint directory; no checkpointing without either).
        verify: run a ``verify`` stage after retiming -- the Lemma 2
            behavioural check (``K ==Nt K'`` on the explicit state space)
            between the hard circuit and its easy retiming.
        stg_engine: STG extraction engine for the verify stage
            (``"bitset"``/``"reference"``/``"reach"``/``"auto"``; default
            ``"auto"``, which escalates past-the-bitset-wall machines to
            the reachability-bounded ``reach`` tier instead of skipping).
        cancel_event: an object with ``is_set()`` (e.g. a
            ``threading.Event``) polled at every stage boundary; once set,
            the next stage raises :class:`FlowCancelled` instead of
            starting.  One pipeline instance runs one flow at a time; for
            concurrent flows, create one pipeline per run.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        journal: Optional[RunJournal] = None,
        *,
        workers: Optional[int] = None,
        engine: Optional[str] = None,
        kernel: str = "dual",
        backend: str = "auto",
        guidance: str = "off",
        resume: bool = False,
        checkpoint_path: Optional[str] = None,
        verify: bool = False,
        stg_engine: Optional[str] = "auto",
        cancel_event=None,
    ):
        if guidance not in GUIDANCE_MODES:
            raise ValueError(
                f"unknown guidance {guidance!r} (expected one of {GUIDANCE_MODES})"
            )
        self.store = store
        self.journal = journal
        self.workers = workers
        self.engine = engine
        self.kernel = kernel
        self.backend = backend
        self.guidance = guidance
        self.resume = resume
        self.checkpoint_path = checkpoint_path
        self.verify = verify
        self.stg_engine = stg_engine
        self.cancel_event = cancel_event
        self.stages: List[StageRecord] = []

    # -- stage bookkeeping ---------------------------------------------------

    def _pin(self) -> Optional[Callable[[str], None]]:
        """The journal's pin callback, for in-lock pinning by the store."""
        if self.journal is None:
            return None
        return self.journal.artifact_ref

    def _stage_start(self, name: str) -> Tuple[float, float]:
        if self.cancel_event is not None and self.cancel_event.is_set():
            if self.journal is not None:
                self.journal.event("cancelled", stage=name)
            raise FlowCancelled(f"flow cancelled before stage {name!r}")
        if self.journal is not None:
            self.journal.event("stage_start", stage=name)
        return (time.perf_counter(), time.process_time())

    def _stage_end(
        self,
        name: str,
        started: Tuple[float, float],
        cache: str,
        key: Optional[str],
        **detail: object,
    ) -> StageRecord:
        seconds = time.perf_counter() - started[0]
        cpu_seconds = time.process_time() - started[1]
        record = StageRecord(name, seconds, cpu_seconds, cache, key, dict(detail))
        self.stages.append(record)
        if self.journal is not None:
            self.journal.event(
                "stage_end",
                stage=name,
                seconds=round(seconds, 6),
                cpu_seconds=round(cpu_seconds, 6),
                cache=cache,
                store_key=key,
                **detail,
            )
        return record

    def _load(self, kind: str, key: Optional[str], decode: Callable):
        """``(value, cache)`` from the store; pins the record when hit.

        The pin is recorded by the store *inside its shard lock*, so a
        concurrent GC re-reading pins under the same lock either sees the
        reference or has already evicted the record (a plain miss here) --
        never the old in-between where a freshly read artifact vanished
        before its journal reference landed.
        """
        if self.store is None or key is None:
            return None, "off"
        payload = self.store.get(kind, key, pin=self._pin())
        value = decode(payload) if payload is not None else None
        if value is None:
            return None, "miss"
        return value, "hit"

    def _save(self, kind: str, key: Optional[str], payload: Dict[str, object]) -> None:
        if self.store is None or key is None:
            return
        try:
            self.store.put(kind, key, payload, pin=self._pin())
        except OSError:
            return  # an unwritable store only loses memoization

    # -- stages --------------------------------------------------------------

    def stage_synth(self, spec) -> Circuit:
        """Synthesize one Table II variant (store-backed)."""
        from repro.core.experiments import synthesize_original

        started = self._stage_start("synth")
        circuit, cache, key = synthesize_original(
            spec, store=self.store, pin=self._pin()
        )
        self._stage_end(
            "synth",
            started,
            cache,
            key,
            circuit=circuit.name,
            gates=circuit.num_gates(),
            dffs=circuit.num_registers(),
        )
        return circuit

    def stage_pair_retime(self, spec, original: Circuit):
        """Performance-retime a synthesized variant (store-backed)."""
        from repro.core.experiments import CircuitPair, retime_pair

        started = self._stage_start("retime")
        retimed, retiming, cache, key = retime_pair(
            spec, original, store=self.store, pin=self._pin()
        )
        self._stage_end(
            "retime",
            started,
            cache,
            key,
            circuit=retimed.name,
            dffs=retimed.num_registers(),
        )
        return CircuitPair(
            spec=spec, original=original, retimed=retimed, retiming=retiming
        )

    def stage_easy_retiming(self, hard_circuit: Circuit) -> Retiming:
        started = self._stage_start("retime")
        key = None
        if self.store is not None:
            key = self.store.key(
                "easy-retime",
                circuit_digest(hard_circuit),
                structural_identity(hard_circuit),
            )
        retiming, cache = self._load(
            "retiming", key, lambda p: retiming_from_payload(p, hard_circuit)
        )
        if retiming is None:
            retiming = min_register_retiming(hard_circuit).retiming
            self._save("retiming", key, retiming_payload(retiming))
        self._stage_end(
            "retime",
            started,
            cache,
            key,
            circuit=hard_circuit.name,
            registers_saved=hard_circuit.num_registers()
            - retiming.apply("scratch").num_registers(),
        )
        return retiming

    def stage_verify(
        self,
        hard_circuit: Circuit,
        easy_retiming: Retiming,
        easy_circuit: Circuit,
    ) -> StageRecord:
        """Lemma 2 behavioural check between the hard/easy pair.

        Extracts both STGs with the pipeline's ``stg_engine`` and asserts
        ``K ==Nt K'`` with the retiming's bound.  Machines beyond the
        engine's limits record ``skipped`` detail instead of failing; a
        bound violation raises :class:`ValueError`.  Never store-memoized:
        the check *is* the evidence, recomputing it is the point.
        """
        from repro.equivalence import (
            ReachableSTG,
            StateSpaceTooLarge,
            extract_stg,
            resolved_engine_name,
            time_equivalence_bound,
        )

        started = self._stage_start("verify")
        bound = easy_retiming.time_equivalence_bound()
        detail: Dict[str, object] = {
            "circuit": hard_circuit.name,
            "bound": bound,
            "checked": False,
        }
        try:
            stg_hard = extract_stg(hard_circuit, engine=self.stg_engine)
            stg_easy = extract_stg(easy_circuit, engine=self.stg_engine)
        except StateSpaceTooLarge as error:
            detail["skipped"] = str(error)
            return self._stage_end("verify", started, "off", None, **detail)
        found = time_equivalence_bound(stg_hard, stg_easy, max_steps=bound)
        if found is None:
            raise ValueError(
                f"{hard_circuit.name} and {easy_circuit.name} are not "
                f"{bound}-time-equivalent: Lemma 2 violated"
            )
        detail["checked"] = True
        detail["found"] = found
        detail["engine"] = resolved_engine_name(self.stg_engine, stg_hard, stg_easy)
        if isinstance(stg_hard, ReachableSTG):
            detail["visited_hard"] = stg_hard.visited_states
        if isinstance(stg_easy, ReachableSTG):
            detail["visited_easy"] = stg_easy.visited_states
        return self._stage_end("verify", started, "off", None, **detail)

    def stage_collapse(self, circuit: Circuit) -> List[StuckAtFault]:
        started = self._stage_start("collapse")
        key = None
        if self.store is not None:
            key = self.store.key(
                "faults", circuit_digest(circuit), structural_identity(circuit)
            )
        faults, cache = self._load(
            "faults", key, lambda p: faults_from_payload(p, circuit)
        )
        if faults is None:
            faults = collapse_faults(circuit).representatives
            self._save("faults", key, faults_payload(circuit, faults))
        self._stage_end(
            "collapse", started, cache, key, circuit=circuit.name, faults=len(faults)
        )
        return faults

    def stage_atpg(
        self,
        circuit: Circuit,
        faults: Sequence[StuckAtFault],
        budget: AtpgBudget,
    ) -> AtpgResult:
        started = self._stage_start("atpg")
        # Resolve the guidance knob *before* keying the stage: "auto" may
        # land on "scoap" or "learned" depending on what the store holds,
        # and results under different resolved modes are interchangeable
        # but not interchangeable-in-place -- they must not alias.
        policy = make_policy(
            circuit, self.guidance, store=self.store, pin=self._pin()
        )
        resolved = policy.mode if policy is not None else "off"
        key = None
        if self.store is not None:
            key_parts = [
                "atpg",
                circuit_digest(circuit),
                structural_identity(circuit),
                faults_fingerprint(faults),
                budget_fingerprint(budget),
            ]
            if resolved != "off":
                # Unguided keys keep their historical shape so warm
                # stores stay warm across this feature landing.
                key_parts.append({"guidance": resolved})
            key = self.store.key(*key_parts)
        result, cache = self._load("atpg", key, atpg_result_from_payload)
        if result is None:
            checkpoint = None
            path = self.checkpoint_path
            if path is None and self.store is not None and key is not None:
                path = self.store.checkpoint_path(key)
            if path is not None:
                checkpoint = AtpgCheckpoint(path)
            result = run_atpg(
                circuit,
                faults,
                budget,
                workers=self.workers,
                engine=self.engine,
                kernel=self.kernel,
                backend=self.backend,
                guidance=policy if policy is not None else "off",
                checkpoint=checkpoint,
                resume=self.resume,
            )
            self._save("atpg", key, atpg_result_payload(result))
            if checkpoint is not None and self.store is not None and key is not None:
                # The result is durable now; the crash-recovery file has
                # nothing left to recover.
                checkpoint.discard()
            if self.store is not None and result.fault_rows:
                # Every computed stage feeds the shared training dataset,
                # whatever mode it ran under; cache hits carry no fresh
                # effort telemetry and are skipped.
                log_training_rows(
                    self.store, circuit, result.fault_rows, pin=self._pin()
                )
        self._stage_end(
            "atpg",
            started,
            cache,
            key,
            circuit=circuit.name,
            workers=result.workers,
            engine=result.engine,
            kernel=result.kernel,
            guidance=result.guidance,
            objective_choices=result.objective_choices,
            fault_coverage=round(result.fault_coverage, 3),
            fault_efficiency=round(result.fault_efficiency, 3),
            sequences=result.test_set.num_sequences,
        )
        return result

    def stage_derive(
        self, test_set: TestSet, easy_retiming: Retiming, easy_circuit: Circuit
    ) -> Tuple[TestSet, int]:
        """Prefix the easy test set for the hard circuit (Theorem 4).

        Always computed: derivation is linear in the test set and cheaper
        than a store round trip.
        """
        started = self._stage_start("derive")
        inverse = easy_retiming.inverse(easy_circuit)
        derived = derive_retimed_test_set(test_set, inverse)
        prefix_length = inverse.max_forward_moves()
        self._stage_end(
            "derive",
            started,
            "off",
            None,
            prefix=prefix_length,
            sequences=derived.num_sequences,
        )
        return derived, prefix_length

    def stage_faultsim(
        self,
        circuit: Circuit,
        test_set: TestSet,
        faults: Sequence[StuckAtFault],
    ) -> FaultSimResult:
        started = self._stage_start("faultsim")
        key = None
        if self.store is not None:
            key = self.store.key(
                "faultsim",
                circuit_digest(circuit),
                structural_identity(circuit),
                self.store.key("testset", test_set.to_text()),
                faults_fingerprint(faults),
            )
        result, cache = self._load(
            "faultsim", key, lambda p: faultsim_from_payload(p, circuit)
        )
        if result is None:
            result = fault_simulate(
                circuit, test_set.as_lists(), faults, backend=self.backend
            )
            self._save("faultsim", key, faultsim_payload(circuit, result))
        self._stage_end(
            "faultsim",
            started,
            cache,
            key,
            circuit=circuit.name,
            fault_coverage=round(result.fault_coverage, 3),
        )
        return result

    # -- whole flows ---------------------------------------------------------

    def run(
        self,
        hard_circuit: Circuit,
        budget: Optional[AtpgBudget] = None,
        easy_retiming: Optional[Retiming] = None,
    ) -> FlowResult:
        """The Fig. 6 flow on a hard circuit (same contract as
        :func:`repro.core.flow.retime_for_testability_flow`)."""
        if budget is None:
            budget = AtpgBudget()
        if easy_retiming is None:
            easy_retiming = self.stage_easy_retiming(hard_circuit)
        easy_circuit = easy_retiming.apply(f"{hard_circuit.name}.easy")
        if self.verify:
            self.stage_verify(hard_circuit, easy_retiming, easy_circuit)

        easy_faults = self.stage_collapse(easy_circuit)
        atpg_result = self.stage_atpg(easy_circuit, easy_faults, budget)
        derived, prefix_length = self.stage_derive(
            atpg_result.test_set, easy_retiming, easy_circuit
        )
        hard_faults = self.stage_collapse(hard_circuit)
        hard_fault_sim = self.stage_faultsim(hard_circuit, derived, hard_faults)

        return FlowResult(
            hard_circuit=hard_circuit,
            easy_circuit=easy_circuit,
            easy_retiming=easy_retiming,
            prefix_length=prefix_length,
            atpg_result=atpg_result,
            derived_test_set=derived,
            hard_fault_sim=hard_fault_sim,
        )

    def run_spec(self, spec, budget: Optional[AtpgBudget] = None) -> PipelineResult:
        """Synthesize a Table II variant, retime it, and run the flow on
        the retimed (hard) circuit -- the ``python -m repro flow`` path."""
        original = self.stage_synth(spec)
        pair = self.stage_pair_retime(spec, original)
        flow = self.run(pair.retimed, budget=budget)
        journal_path = self.journal.path if self.journal is not None else None
        return PipelineResult(flow=flow, stages=list(self.stages), journal_path=journal_path)


__all__ = ["FlowCancelled", "FlowPipeline", "PipelineResult", "StageRecord"]
