"""Dual-rail bit-parallel three-valued logic.

A :class:`BitVec` packs ``width`` independent ternary values into two Python
integers using the classic dual-rail encoding:

* ``ones``  -- bit *i* set when pattern *i* carries logic ``1``;
* ``zeros`` -- bit *i* set when pattern *i* carries logic ``0``.

A bit position with neither rail set is ``X``.  Both rails set is illegal and
rejected on construction.  Python integers are arbitrary precision, so a
single :class:`BitVec` can carry as many parallel patterns as needed -- this
is the engine behind the PROOFS-style parallel fault simulator, which packs
one fault machine (or one test pattern) per bit.

The gate operations below are the standard dual-rail formulations; each is a
handful of bitwise integer operations regardless of width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.logic.three_valued import ONE, Trit, X, ZERO


@dataclass(frozen=True)
class BitVec:
    """An immutable vector of ``width`` ternary values."""

    ones: int
    zeros: int
    width: int

    def __post_init__(self) -> None:
        mask = (1 << self.width) - 1
        if self.ones & ~mask or self.zeros & ~mask:
            raise ValueError("rail bits outside declared width")
        if self.ones & self.zeros:
            raise ValueError("a bit position cannot be both 0 and 1")

    # -- constructors -----------------------------------------------------

    @classmethod
    def filled(cls, value: Trit, width: int) -> "BitVec":
        """A vector with every position equal to ``value``."""
        mask = (1 << width) - 1
        if value == ONE:
            return cls(mask, 0, width)
        if value == ZERO:
            return cls(0, mask, width)
        if value == X:
            return cls(0, 0, width)
        raise ValueError(f"not a trit: {value!r}")

    @classmethod
    def from_trits(cls, values: Iterable[Trit], width: Optional[int] = None) -> "BitVec":
        """Pack an iterable of trits, first item in bit 0.

        With an explicit ``width``, the iterable may be shorter (the
        remaining positions are X) but not longer; without one, the width
        is the number of items consumed.
        """
        ones = 0
        zeros = 0
        count = 0
        for index, value in enumerate(values):
            if value == ONE:
                ones |= 1 << index
            elif value == ZERO:
                zeros |= 1 << index
            elif value != X:
                raise ValueError(f"not a trit: {value!r}")
            count = index + 1
        if width is None:
            width = count
        elif count > width:
            raise ValueError(f"got {count} trits for declared width {width}")
        return cls(ones, zeros, width)

    # -- element access ---------------------------------------------------

    def get(self, index: int) -> Trit:
        """The ternary value at bit position ``index``."""
        if not 0 <= index < self.width:
            raise IndexError(index)
        bit = 1 << index
        if self.ones & bit:
            return ONE
        if self.zeros & bit:
            return ZERO
        return X

    def with_bit(self, index: int, value: Trit) -> "BitVec":
        """A copy with position ``index`` forced to ``value``."""
        if not 0 <= index < self.width:
            raise IndexError(index)
        bit = 1 << index
        ones = self.ones & ~bit
        zeros = self.zeros & ~bit
        if value == ONE:
            ones |= bit
        elif value == ZERO:
            zeros |= bit
        elif value != X:
            raise ValueError(f"not a trit: {value!r}")
        return BitVec(ones, zeros, self.width)

    def trits(self) -> Iterator[Trit]:
        """Iterate the ternary values, bit 0 first."""
        for index in range(self.width):
            yield self.get(index)

    # -- gate operations --------------------------------------------------

    def __invert__(self) -> "BitVec":
        return BitVec(self.zeros, self.ones, self.width)

    def __and__(self, other: "BitVec") -> "BitVec":
        self._check(other)
        return BitVec(self.ones & other.ones, self.zeros | other.zeros, self.width)

    def __or__(self, other: "BitVec") -> "BitVec":
        self._check(other)
        return BitVec(self.ones | other.ones, self.zeros & other.zeros, self.width)

    def __xor__(self, other: "BitVec") -> "BitVec":
        self._check(other)
        ones = (self.ones & other.zeros) | (self.zeros & other.ones)
        zeros = (self.ones & other.ones) | (self.zeros & other.zeros)
        return BitVec(ones, zeros, self.width)

    def _check(self, other: "BitVec") -> None:
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")

    # -- queries ----------------------------------------------------------

    def known_mask(self) -> int:
        """Bitmask of positions carrying a binary (non-X) value."""
        return self.ones | self.zeros

    def diff_mask(self, other: "BitVec") -> int:
        """Bitmask of positions where both are binary and differ.

        This is the detection condition of fault simulation: a fault is
        observed at an output position only when the fault-free and faulty
        values are *both known* and different.
        """
        self._check(other)
        return (self.ones & other.zeros) | (self.zeros & other.ones)

    def __str__(self) -> str:
        chars = []
        for value in self.trits():
            chars.append("1" if value == ONE else "0" if value == ZERO else "x")
        return "".join(chars)
