"""Multi-valued logic algebra used throughout the library.

Two representations are provided:

* :mod:`repro.logic.three_valued` -- scalar three-valued logic (0, 1, X)
  matching the ternary simulation model used by structural ATPG and fault
  simulation in the paper (Section II).
* :mod:`repro.logic.bitparallel` -- a dual-rail bit-parallel encoding of the
  same algebra, packing arbitrarily many patterns into Python integers, used
  by the PROOFS-style parallel fault simulator.
"""

from repro.logic.three_valued import (
    ONE,
    Trit,
    X,
    ZERO,
    t_and,
    t_buf,
    t_nand,
    t_nor,
    t_not,
    t_or,
    t_xnor,
    t_xor,
    trit_from_char,
    trit_to_char,
)
from repro.logic.bitparallel import BitVec

__all__ = [
    "ZERO",
    "ONE",
    "X",
    "Trit",
    "t_and",
    "t_or",
    "t_not",
    "t_buf",
    "t_nand",
    "t_nor",
    "t_xor",
    "t_xnor",
    "trit_from_char",
    "trit_to_char",
    "BitVec",
]
