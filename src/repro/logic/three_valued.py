"""Scalar three-valued (ternary) logic.

The paper's simulation model (Section II) uses the classic three-valued
algebra over ``{0, 1, X}`` where ``X`` denotes the *unknown* initial value of
a memory element.  Three-valued simulation is conservative: whenever a gate
output cannot be determined without knowing an ``X`` input, the output is
``X``.  This loss of information is exactly what distinguishes
*structural-based* synchronizing sequences and tests from *functional-based*
ones in the paper.

Values are plain ints: ``0``, ``1`` and ``X`` (represented as ``2``).  Using
small ints keeps the simulators allocation-free and allows table lookups.
"""

from __future__ import annotations

from typing import Iterable

Trit = int

ZERO: Trit = 0
ONE: Trit = 1
X: Trit = 2

_VALID = (ZERO, ONE, X)

_CHAR_TO_TRIT = {"0": ZERO, "1": ONE, "x": X, "X": X, "u": X, "U": X, "-": X}
_TRIT_TO_CHAR = {ZERO: "0", ONE: "1", X: "x"}

# Lookup tables indexed as TABLE[a][b].  The ternary AND/OR follow the
# Kleene strong-logic truth tables: 0 dominates AND, 1 dominates OR.
_AND_TABLE = (
    (0, 0, 0),
    (0, 1, 2),
    (0, 2, 2),
)
_OR_TABLE = (
    (0, 1, 2),
    (1, 1, 1),
    (2, 1, 2),
)
_XOR_TABLE = (
    (0, 1, 2),
    (1, 0, 2),
    (2, 2, 2),
)
_NOT_TABLE = (1, 0, 2)


def trit_from_char(char: str) -> Trit:
    """Parse a single character (``0``, ``1``, ``x``/``X``/``u``/``-``)."""
    try:
        return _CHAR_TO_TRIT[char]
    except KeyError:
        raise ValueError(f"not a ternary logic character: {char!r}") from None


def trit_to_char(value: Trit) -> str:
    """Render a trit as ``0``, ``1`` or ``x``."""
    try:
        return _TRIT_TO_CHAR[value]
    except KeyError:
        raise ValueError(f"not a trit: {value!r}") from None


def trits_from_string(text: str) -> tuple:
    """Parse a vector such as ``"01x1"`` into a tuple of trits."""
    return tuple(trit_from_char(char) for char in text)


def trits_to_string(values: Iterable[Trit]) -> str:
    """Render an iterable of trits as a compact string such as ``"01x1"``."""
    return "".join(trit_to_char(value) for value in values)


def t_not(a: Trit) -> Trit:
    """Ternary NOT."""
    return _NOT_TABLE[a]


def t_buf(a: Trit) -> Trit:
    """Ternary buffer (identity)."""
    if a not in _VALID:
        raise ValueError(f"not a trit: {a!r}")
    return a


def t_and(*inputs: Trit) -> Trit:
    """Ternary AND over one or more inputs."""
    result = ONE
    for value in inputs:
        result = _AND_TABLE[result][value]
        if result == ZERO:
            return ZERO
    return result


def t_or(*inputs: Trit) -> Trit:
    """Ternary OR over one or more inputs."""
    result = ZERO
    for value in inputs:
        result = _OR_TABLE[result][value]
        if result == ONE:
            return ONE
    return result


def t_nand(*inputs: Trit) -> Trit:
    """Ternary NAND over one or more inputs."""
    return _NOT_TABLE[t_and(*inputs)]


def t_nor(*inputs: Trit) -> Trit:
    """Ternary NOR over one or more inputs."""
    return _NOT_TABLE[t_or(*inputs)]


def t_xor(*inputs: Trit) -> Trit:
    """Ternary XOR over one or more inputs."""
    result = ZERO
    for value in inputs:
        result = _XOR_TABLE[result][value]
    return result


def t_xnor(*inputs: Trit) -> Trit:
    """Ternary XNOR over one or more inputs."""
    return _NOT_TABLE[t_xor(*inputs)]


def is_known(a: Trit) -> bool:
    """True when the value is binary (``0`` or ``1``), not ``X``."""
    return a != X


def merge(a: Trit, b: Trit) -> Trit:
    """Combine two observations of the same signal.

    Identical known values merge to themselves; disagreement or any ``X``
    merges to ``X``.  Used when folding sets of states into a single ternary
    state vector.
    """
    return a if a == b else X


def covers(general: Trit, specific: Trit) -> bool:
    """True when ``general`` subsumes ``specific`` (``X`` covers anything)."""
    return general == X or general == specific
