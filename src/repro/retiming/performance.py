"""Performance-style retiming for the Table II experiments.

The paper's retimed circuits (``.re``) were produced by SIS ``retime`` for
performance and show the characteristic structure measured in Table II:
a 2-5x growth in flip-flop count (5 -> 19, 6 -> 28, ...), registers pushed
from the state rank into the combinational logic, and at most one forward
move (Section V.C: a single forward move on three of the sixteen circuits,
none on the rest).

On FSM-style circuits, exact min-period retiming (available as
:func:`repro.retiming.minperiod.min_period_retiming`) improves little or
nothing: the state-feedback loop carries one register and essentially the
full logic depth, and no retiming can beat the cycle delay/weight bound --
a structural property of synthesized FSMs.  The paper's *effects* come
from where the registers end up, not from the clock period itself, so this
module reproduces the transformation structurally:

* :func:`backward_cut_retiming` -- move the register rank ``depth`` logic
  levels backward: label ``r = +1`` every vertex whose zero-weight fanout
  reaches registers within ``depth`` edges (so every edge leaving the
  labelled set carries a register and the move is legal).  Each pass
  multiplies registers across the cut boundary, exactly the paper's DFF
  growth;
* an optional **forward stem move**: one forward move across a state-bit
  fanout stem (``F = 1``), which models the three paper circuits
  (pma.jo.sd, s510.jc.sd, scf.jo.sd) that require a one-vector prefix;
* :func:`performance_retiming` composes these (labels add -- the graph is
  shared), returning a single :class:`Retiming` from the original circuit
  whose move counts feed the prefix theorems.

This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.circuit.netlist import Circuit
from repro.retiming.core import FIXED_KINDS, Retiming, RetimingError
from repro.retiming.minperiod import min_period_retiming


def register_fanin_cone(
    circuit: Circuit,
    depth: Optional[int] = None,
    blocked: Optional[Set[str]] = None,
) -> Set[str]:
    """Movable vertices whose zero-weight fanout ends in registers.

    With ``depth = None`` the full cone is returned; with a positive depth
    the cone is truncated: a vertex joins only if all its zero-weight
    successors joined at a strictly smaller depth budget.  ``blocked``
    vertices never join (used to protect forward-moved stems from being
    re-labelled, which would cancel the forward move).  Every edge leaving
    the returned set carries at least one register, so labelling the whole
    set ``+1`` is a legal retiming.
    """
    blocked = blocked or set()
    level: Dict[str, int] = {}
    for name in reversed(circuit.topo_order()):
        node = circuit.node(name)
        if node.kind in FIXED_KINDS or name in blocked:
            continue
        out_edges = circuit.out_edges(name)
        if not out_edges:
            continue  # dangling vertex: moving it is pointless
        worst = 0
        ok = True
        for edge in out_edges:
            if edge.weight >= 1:
                continue
            if edge.sink in level:
                worst = max(worst, level[edge.sink] + 1)
            else:
                ok = False
                break
        if ok:
            level[name] = worst
    if depth is None:
        return set(level)
    return {name for name, value in level.items() if value < depth}


def backward_cut_retiming(
    circuit: Circuit, depth: int = 1, blocked: Optional[Set[str]] = None
) -> Retiming:
    """One backward redistribution pass across a depth-``depth`` cut."""
    cone = register_fanin_cone(circuit, depth, blocked)
    return Retiming(circuit, {name: 1 for name in cone})


def state_stems(circuit: Circuit) -> List[str]:
    """Fanout stems whose input edge carries at least one register,
    ordered by ascending fanout (candidates for a forward stem move --
    small fanout keeps the register growth of the move realistic)."""
    stems = []
    for stem in circuit.fanout_stems():
        in_edge = circuit.in_edges(stem.name)[0]
        if in_edge.weight >= 1:
            stems.append((len(circuit.out_edges(stem.name)), stem.name))
    return [name for _, name in sorted(stems)]


@dataclass(frozen=True)
class PerformanceRetimingResult:
    """Outcome of the combined performance-style retiming."""

    retiming: Retiming  # mapping the original circuit to the retimed one
    period_before: int
    period_after: int
    backward_passes: int
    forward_stem_moves: int

    @property
    def retimed_circuit(self) -> Circuit:
        return self.retiming.apply()


def performance_retiming(
    circuit: Circuit,
    backward_passes: int = 2,
    cut_depth: int = 1,
    forward_stem_moves: int = 0,
    use_min_period: bool = False,
    name: Optional[str] = None,
) -> PerformanceRetimingResult:
    """Produce a register-rich retimed circuit in the paper's style.

    Args:
        circuit: circuit to retime.
        backward_passes: how many backward cut passes to compose.
        cut_depth: logic levels each pass moves the register rank back.
        forward_stem_moves: forward moves to apply across one state stem
            first (``F`` of the result; the paper's circuits have 0 or 1).
        use_min_period: run the exact min-period optimizer first and
            compose the redistribution on its result.
        name: name for the retimed circuit (default ``<name>.re``).
    """
    labels: Dict[str, int] = {}
    current = circuit

    def compose(step: Retiming, new_name: str) -> Circuit:
        nonlocal labels
        for vertex, value in step.labels.items():
            if value:
                labels[vertex] = labels.get(vertex, 0) + value
        return step.apply(new_name)

    if use_min_period:
        current = compose(min_period_retiming(current).retiming, circuit.name)

    applied_forward = 0
    forward_targets: Set[str] = set()
    for _ in range(max(0, forward_stem_moves)):
        candidates = [s for s in state_stems(current) if s not in forward_targets]
        if not candidates:
            break
        current = compose(
            Retiming(current, {candidates[0]: -1}), circuit.name
        )
        forward_targets.add(candidates[0])
        applied_forward += 1

    applied_backward = 0
    for _ in range(max(0, backward_passes)):
        step = backward_cut_retiming(current, cut_depth, blocked=forward_targets)
        if step.is_identity():
            break
        current = compose(step, circuit.name)
        applied_backward += 1

    combined = Retiming(circuit, {v: r for v, r in labels.items() if r != 0})
    if not combined.is_legal():
        raise RetimingError("internal error: composed retiming illegal")
    retimed = combined.apply(name or f"{circuit.name}.re")
    return PerformanceRetimingResult(
        retiming=combined,
        period_before=circuit.clock_period(),
        period_after=retimed.clock_period(),
        backward_passes=applied_backward,
        forward_stem_moves=applied_forward,
    )


__all__ = [
    "register_fanin_cone",
    "backward_cut_retiming",
    "state_stems",
    "performance_retiming",
    "PerformanceRetimingResult",
]
