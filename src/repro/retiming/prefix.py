"""Prefix-length calculation for the paper's preservation theorems.

Given a retiming from ``K`` to ``K'``, the paper prescribes prefixing test
sets and synchronizing sequences with a pre-determined number of
**arbitrary** input vectors:

* Theorem 2 (fault-free functional synchronizing sequences): prefix length
  = maximum number of forward retiming moves across any **fanout stem**.
* Theorems 3 and 4 (faulty-circuit synchronization / test sets): prefix
  length = maximum number of forward retiming moves across **any node**.

Structural-based sequences need no prefix in the fault-free case
(Theorem 1), but the faulty-circuit result (and hence test-set
preservation) always uses the any-node bound.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import random

from repro.logic.three_valued import Trit
from repro.retiming.core import Retiming


def prefix_length_for_sync(retiming: Retiming) -> int:
    """Theorem 2 bound: forward moves across fanout stems only."""
    return retiming.max_forward_moves_across_stems()


def prefix_length_for_tests(retiming: Retiming) -> int:
    """Theorems 3-4 bound: forward moves across any node."""
    return retiming.max_forward_moves()


def arbitrary_prefix(
    num_inputs: int,
    length: int,
    fill: Trit = 0,
    rng: Optional[random.Random] = None,
) -> List[Tuple[Trit, ...]]:
    """A prefix of ``length`` arbitrary vectors.

    The theorems hold for *any* choice; by default a constant fill is used
    so results are reproducible, or pass ``rng`` for random vectors (useful
    in tests to exercise the 'arbitrary' claim).
    """
    if length < 0:
        raise ValueError("prefix length cannot be negative")
    if rng is None:
        return [(fill,) * num_inputs for _ in range(length)]
    return [
        tuple(rng.randint(0, 1) for _ in range(num_inputs)) for _ in range(length)
    ]


__all__ = ["prefix_length_for_sync", "prefix_length_for_tests", "arbitrary_prefix"]
