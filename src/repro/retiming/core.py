"""Retiming labels: legality, application, and move counting.

A retiming of a circuit ``G = (V, E, W)`` is an integer labelling
``r : V -> Z`` with ``r = 0`` on primary inputs, primary outputs and
constants (no peripheral/pipelining moves, matching the SIS ``retime``
behaviour the paper's circuits were produced with).  The retimed weight of
an edge ``u -> v`` is::

    w'(e) = w(e) + r(v) - r(u)

and the retiming is legal when every ``w'(e) >= 0``.

Sign convention (Leiserson--Saxe): ``r(v) = k > 0`` means ``k`` *backward*
moves across ``v`` (registers move from the outputs of ``v`` to its inputs);
``r(v) = -k < 0`` means ``k`` *forward* moves.  These counts drive the
paper's prefix-length theorems:

* Theorem 2: prefix length = max forward moves across any **fanout stem**;
* Theorems 3 and 4: prefix length = max forward moves across **any node**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.types import NodeKind

FIXED_KINDS = (NodeKind.INPUT, NodeKind.OUTPUT, NodeKind.CONST0, NodeKind.CONST1)


class RetimingError(ValueError):
    """Raised for illegal or malformed retimings."""


@dataclass(frozen=True)
class Retiming:
    """An immutable retiming labelling for one circuit."""

    circuit: Circuit
    labels: Mapping[str, int]

    def __post_init__(self) -> None:
        unknown = set(self.labels) - set(self.circuit.nodes)
        if unknown:
            raise RetimingError(f"labels for unknown vertices: {sorted(unknown)[:5]}")
        for name, node in self.circuit.nodes.items():
            if node.kind in FIXED_KINDS and self.labels.get(name, 0) != 0:
                raise RetimingError(
                    f"vertex {name!r} ({node.kind.value}) must keep r = 0"
                )

    def label(self, name: str) -> int:
        return self.labels.get(name, 0)

    # -- legality -----------------------------------------------------------

    def retimed_weights(self) -> List[int]:
        """``w'(e) = w(e) + r(sink) - r(source)`` for every edge."""
        return [
            edge.weight + self.label(edge.sink) - self.label(edge.source)
            for edge in self.circuit.edges
        ]

    def is_legal(self) -> bool:
        return all(weight >= 0 for weight in self.retimed_weights())

    def illegal_edges(self) -> List[int]:
        return [
            edge.index
            for edge, weight in zip(self.circuit.edges, self.retimed_weights())
            if weight < 0
        ]

    def apply(self, name: Optional[str] = None) -> Circuit:
        """Materialize the retimed circuit (same structure, new weights)."""
        weights = self.retimed_weights()
        if any(weight < 0 for weight in weights):
            raise RetimingError(
                f"illegal retiming: negative weight on edges {self.illegal_edges()[:5]}"
            )
        return self.circuit.with_weights(
            weights, name or f"{self.circuit.name}.re"
        )

    # -- move counting (paper Section III / IV) -------------------------------

    def forward_moves(self, name: str) -> int:
        """Number of forward moves across one vertex."""
        return max(0, -self.label(name))

    def backward_moves(self, name: str) -> int:
        """Number of backward moves across one vertex."""
        return max(0, self.label(name))

    def max_forward_moves(self) -> int:
        """``F``: max forward moves across **any** node (Theorems 3-4)."""
        return max((self.forward_moves(n) for n in self.circuit.nodes), default=0)

    def max_backward_moves(self) -> int:
        """``B``: max backward moves across any node."""
        return max((self.backward_moves(n) for n in self.circuit.nodes), default=0)

    def max_forward_moves_across_stems(self) -> int:
        """``F_stem``: max forward moves across any fanout stem (Lemma 2, Theorem 2)."""
        return max(
            (self.forward_moves(s.name) for s in self.circuit.fanout_stems()),
            default=0,
        )

    def max_backward_moves_across_stems(self) -> int:
        """``B_stem``: max backward moves across any fanout stem (Lemma 2)."""
        return max(
            (self.backward_moves(s.name) for s in self.circuit.fanout_stems()),
            default=0,
        )

    def time_equivalence_bound(self) -> int:
        """``N = max(F, B)`` over fanout stems: ``K ==_Nt K'`` (Lemma 2)."""
        return max(
            self.max_forward_moves_across_stems(),
            self.max_backward_moves_across_stems(),
        )

    def is_identity(self) -> bool:
        return all(value == 0 for value in self.labels.values())

    def inverse(self, retimed: Optional[Circuit] = None) -> "Retiming":
        """The retiming mapping the retimed circuit back to the original."""
        target = retimed if retimed is not None else self.apply()
        return Retiming(target, {name: -value for name, value in self.labels.items()})

    def register_delta(self) -> int:
        """Change in total register count caused by this retiming."""
        return sum(self.retimed_weights()) - sum(self.circuit.weights())

    def summary(self) -> str:
        return (
            f"Retiming({self.circuit.name}: F={self.max_forward_moves()}, "
            f"B={self.max_backward_moves()}, "
            f"F_stem={self.max_forward_moves_across_stems()}, "
            f"registers {sum(self.circuit.weights())} -> "
            f"{sum(self.retimed_weights())})"
        )


def identity_retiming(circuit: Circuit) -> Retiming:
    """The trivial retiming (all labels zero)."""
    return Retiming(circuit, {})


def movable_nodes(circuit: Circuit) -> List[str]:
    """Vertices whose label may be nonzero (gates and stems)."""
    return [
        name
        for name, node in circuit.nodes.items()
        if node.kind not in FIXED_KINDS
    ]


__all__ = [
    "Retiming",
    "RetimingError",
    "identity_retiming",
    "movable_nodes",
    "FIXED_KINDS",
]
