"""Minimum-register retiming via min-cost-flow duality.

The register-minimization LP is::

    minimize    sum_e w'(e)  =  const + sum_v c_v r(v),
                c_v = indeg(v) - outdeg(v)
    subject to  r(u) - r(v) <= w(e)        for every edge u -> v
                r(v) = 0                   for interface vertices

Because fanout stems are explicit vertices in this library's circuit model,
``sum_e w'(e)`` *is* the physical flip-flop count with maximal sharing --
registers on a stem's input edge are shared by all branches -- so no mirror
-vertex construction is needed.

The LP is the dual of a min-cost flow problem: node demands ``c_v``
(interface vertices are tied to a host with zero-cost arcs in both
directions), one flow arc per constraint with cost = its bound.  We solve
the flow with :func:`networkx.network_simplex` and recover the optimal
labels as shortest-path potentials in the residual network (Bellman--Ford
from a virtual source): forward residual arcs have length ``w``, reverse
arcs of flow-carrying arcs have length ``-w``, which enforces complementary
slackness exactly.

Optionally, a ``max_period`` adds the Leiserson--Saxe period constraints
``r(u) - r(v) <= W(u,v) - 1`` for ``D(u,v) > max_period`` -- minimum
registers subject to a clock-period bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

try:  # numpy (the optional [perf] extra) is only needed for period bounds
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None  # type: ignore[assignment]

from repro.circuit.netlist import Circuit, Node
from repro.retiming.core import FIXED_KINDS, Retiming, RetimingError
from repro.retiming.minperiod import wd_matrices, _INF

_HOST = "__host__"


@dataclass(frozen=True)
class MinRegisterResult:
    """Outcome of min-register retiming."""

    retiming: Retiming
    registers_before: int
    registers_after: int

    @property
    def retimed_circuit(self) -> Circuit:
        return self.retiming.apply()

    @property
    def improved(self) -> bool:
        return self.registers_after < self.registers_before


def _constraint_arcs(
    circuit: Circuit,
    max_period: Optional[int],
    delay: Optional[Callable[[Node], int]],
) -> List[Tuple[str, str, int]]:
    """All difference-constraint arcs ``(u, v, bound)`` meaning r(u)-r(v) <= bound."""
    arcs: List[Tuple[str, str, int]] = []
    for edge in circuit.edges:
        arcs.append((edge.source, edge.sink, edge.weight))
    for name, node in circuit.nodes.items():
        if node.kind in FIXED_KINDS:
            arcs.append((name, _HOST, 0))
            arcs.append((_HOST, name, 0))
    if max_period is not None:
        wd = wd_matrices(circuit, delay)
        us, vs = np.nonzero((wd.W < _INF) & (wd.D > max_period))
        for u, v in zip(us, vs):
            if u == v:
                continue
            arcs.append((wd.names[u], wd.names[v], int(wd.W[u, v]) - 1))
    return arcs


def min_register_retiming(
    circuit: Circuit,
    max_period: Optional[int] = None,
    delay: Optional[Callable[[Node], int]] = None,
) -> MinRegisterResult:
    """Retime to the minimum total number of flip-flops.

    Args:
        circuit: circuit to retime.
        max_period: optional clock-period bound the retimed circuit must
            meet (default: unconstrained -- the pure register minimum).
        delay: delay model for the period bound (default: the paper's).
    """
    arcs = _constraint_arcs(circuit, max_period, delay)

    # Objective coefficients: c_v = indeg - outdeg over *circuit edges*.
    demand: Dict[str, int] = {name: 0 for name in circuit.nodes}
    demand[_HOST] = 0
    for edge in circuit.edges:
        demand[edge.sink] += 1
        demand[edge.source] -= 1

    flow_graph = nx.DiGraph()
    for name, value in demand.items():
        flow_graph.add_node(name, demand=value)
    for u, v, bound in arcs:
        if flow_graph.has_edge(u, v):
            if bound < flow_graph[u][v]["weight"]:
                flow_graph[u][v]["weight"] = bound
        else:
            flow_graph.add_edge(u, v, weight=bound)
    try:
        _cost, flow = nx.network_simplex(flow_graph)
    except (nx.NetworkXUnfeasible, nx.NetworkXUnbounded) as error:
        raise RetimingError(
            f"no legal retiming satisfies the constraints: {error}"
        ) from error

    labels = _recover_labels(circuit, flow_graph, flow)
    retiming = Retiming(circuit, labels)
    if not retiming.is_legal():
        raise RetimingError("internal error: flow dual produced illegal retiming")
    result = MinRegisterResult(
        retiming,
        registers_before=circuit.num_registers(),
        registers_after=sum(retiming.retimed_weights()),
    )
    if max_period is not None:
        achieved = result.retimed_circuit.clock_period(delay)
        if achieved > max_period:
            raise RetimingError(
                f"internal error: period bound {max_period} violated ({achieved})"
            )
    return result


def _recover_labels(
    circuit: Circuit, flow_graph: nx.DiGraph, flow: Dict[str, Dict[str, int]]
) -> Dict[str, int]:
    """Optimal potentials from the residual network (Bellman--Ford, virtual source)."""
    residual: List[Tuple[str, str, int]] = []
    for u, v, data in flow_graph.edges(data=True):
        residual.append((u, v, data["weight"]))
        if flow.get(u, {}).get(v, 0) > 0:
            residual.append((v, u, -data["weight"]))
    dist = {name: 0 for name in flow_graph.nodes}
    for _ in range(len(dist)):
        changed = False
        for u, v, length in residual:
            if dist[u] + length < dist[v]:
                dist[v] = dist[u] + length
                changed = True
        if not changed:
            break
    else:
        raise RetimingError("internal error: negative cycle in optimal residual")
    # Potentials pi = dist satisfy w + pi_u - pi_v >= 0 (all arcs) with
    # equality on flow-carrying arcs; r = -pi is then feasible for the
    # difference constraints r(u) - r(v) <= w and primal-optimal by
    # complementary slackness.  Normalize so the host (interface) is 0.
    host = dist[_HOST]
    return {
        name: host - dist[name]
        for name, node in circuit.nodes.items()
        if node.kind not in FIXED_KINDS
    }


__all__ = ["min_register_retiming", "MinRegisterResult"]
