"""Leiserson--Saxe retiming engine.

* :class:`Retiming` -- labellings, legality, application, move counting;
* :func:`min_period_retiming` -- exact minimum clock-period retiming
  (W/D matrices + difference constraints, forward moves allowed);
* :func:`min_register_retiming` -- minimum flip-flop count via min-cost
  flow duality, optionally under a period bound;
* :mod:`repro.retiming.moves` -- atomic move decomposition (paper Fig. 1);
* :mod:`repro.retiming.prefix` -- prefix lengths for Theorems 2-4.
"""

from repro.retiming.core import (
    FIXED_KINDS,
    Retiming,
    RetimingError,
    identity_retiming,
    movable_nodes,
)
from repro.retiming.minperiod import (
    MinPeriodResult,
    WDMatrices,
    feasible_retiming_for_period,
    min_period_retiming,
    wd_matrices,
)
from repro.retiming.minregister import MinRegisterResult, min_register_retiming
from repro.retiming.performance import (
    PerformanceRetimingResult,
    backward_cut_retiming,
    performance_retiming,
    register_fanin_cone,
    state_stems,
)
from repro.retiming.moves import AtomicMove, apply_move, can_move, decompose, replay
from repro.retiming.prefix import (
    arbitrary_prefix,
    prefix_length_for_sync,
    prefix_length_for_tests,
)
from repro.retiming.verify import (
    RetimingVerification,
    reconstruct_labels,
    verify_retiming,
)

__all__ = [
    "Retiming",
    "RetimingError",
    "identity_retiming",
    "movable_nodes",
    "FIXED_KINDS",
    "min_period_retiming",
    "MinPeriodResult",
    "feasible_retiming_for_period",
    "wd_matrices",
    "WDMatrices",
    "min_register_retiming",
    "MinRegisterResult",
    "performance_retiming",
    "PerformanceRetimingResult",
    "backward_cut_retiming",
    "register_fanin_cone",
    "state_stems",
    "AtomicMove",
    "apply_move",
    "can_move",
    "decompose",
    "replay",
    "arbitrary_prefix",
    "prefix_length_for_sync",
    "prefix_length_for_tests",
    "verify_retiming",
    "reconstruct_labels",
    "RetimingVerification",
]
