"""Minimum-period retiming (Leiserson--Saxe OPT algorithm).

Implements the classic exact algorithm:

1. compute the ``W`` and ``D`` matrices (min registers over u->v paths, and
   max delay among register-minimal paths), vectorized with numpy
   Floyd--Warshall on the lexicographic cost ``(w, -d)``;
2. binary-search the clock period ``c`` over the distinct values of ``D``;
3. for each candidate, solve the system of difference constraints

   - legality:  ``r(u) - r(v) <= w(e)``            for every edge ``u -> v``
   - period:    ``r(u) - r(v) <= W(u,v) - 1``      whenever ``D(u,v) > c``
   - interface: ``r(v) = 0``                        for PI/PO/constants

   by Bellman--Ford over the constraint graph (dense matrix iteration).

Unlike the simpler FEAS heuristic restricted to non-negative labels, this
formulation admits *negative* labels -- i.e. genuine **forward** retiming
moves -- which is essential here: the paper's prefix-length results
(Theorems 2-4) are non-trivial precisely when forward moves occur.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

try:  # numpy is the optional [perf] extra; retiming needs its dense solvers
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None  # type: ignore[assignment]

from repro.circuit.netlist import Circuit, Node
from repro.retiming.core import FIXED_KINDS, Retiming, RetimingError

# Plain int so the module imports without numpy; every use site either
# compares against int64 arrays (where it promotes losslessly) or fills
# int64 arrays (where the dtype clamps it back to int64).
_INF = 1 << 40


def _require_numpy() -> None:
    if np is None:
        raise RuntimeError(
            "min-period retiming requires the optional numpy dependency "
            "(install the [perf] extra)"
        )


@dataclass(frozen=True)
class WDMatrices:
    """All-pairs path summaries used by min-period retiming."""

    names: Tuple[str, ...]
    index: Dict[str, int]
    W: np.ndarray  # min registers on any u->v path (INF if none)
    D: np.ndarray  # max delay among register-minimal u->v paths

    def w_between(self, u: str, v: str) -> Optional[int]:
        value = self.W[self.index[u], self.index[v]]
        return None if value >= _INF else int(value)

    def d_between(self, u: str, v: str) -> Optional[int]:
        value = self.D[self.index[u], self.index[v]]
        if self.W[self.index[u], self.index[v]] >= _INF:
            return None
        return int(value)


def wd_matrices(
    circuit: Circuit, delay: Optional[Callable[[Node], int]] = None
) -> WDMatrices:
    """Compute the Leiserson--Saxe ``W``/``D`` matrices."""
    _require_numpy()
    if delay is None:
        delay = circuit.default_delay
    names = tuple(sorted(circuit.nodes))
    index = {name: i for i, name in enumerate(names)}
    n = len(names)
    delays = np.array([delay(circuit.node(name)) for name in names], dtype=np.int64)

    W = np.full((n, n), _INF, dtype=np.int64)
    D = np.full((n, n), np.iinfo(np.int64).min // 4, dtype=np.int64)
    for edge in circuit.edges:
        u, v = index[edge.source], index[edge.sink]
        d_edge = delays[u] + delays[v]
        if edge.weight < W[u, v] or (edge.weight == W[u, v] and d_edge > D[u, v]):
            W[u, v] = edge.weight
            D[u, v] = d_edge

    for k in range(n):
        w_through = W[:, k, None] + W[None, k, :]
        d_through = D[:, k, None] + D[None, k, :] - delays[k]
        better = (w_through < W) | ((w_through == W) & (d_through > D))
        np.copyto(W, w_through, where=better)
        np.copyto(D, d_through, where=better)
    # Clamp unreachable pairs so callers never see garbage D values.
    unreachable = W >= _INF
    W[unreachable] = _INF
    D[unreachable] = 0
    return WDMatrices(names, index, W, D)


def _constraint_matrix(
    circuit: Circuit,
    wd: WDMatrices,
    period: Optional[int],
) -> np.ndarray:
    """Dense bound matrix ``B`` with host row/column appended.

    ``B[a, b]`` is the tightest bound of constraints ``r(b) - r(a) <= B``
    ... encoded for the shortest-path solve as: ``x_b <= x_a + B[a, b]``
    where the underlying difference constraint is ``r(b) - r(a) <= B[a,b]``.
    """
    n = len(wd.names)
    B = np.full((n + 1, n + 1), _INF, dtype=np.int64)
    host = n
    # Legality: r(u) - r(v) <= w(e)  ->  x_u <= x_v + w(e): B[v, u] = w.
    for edge in circuit.edges:
        u, v = wd.index[edge.source], wd.index[edge.sink]
        B[v, u] = min(B[v, u], edge.weight)
    # Period constraints: r(u) - r(v) <= W(u,v) - 1 when D(u,v) > c.
    if period is not None:
        mask = (wd.W < _INF) & (wd.D > period)
        bounds = wd.W - 1
        # B[v, u] = min(B[v, u], W[u, v] - 1) for masked (u, v).
        candidate = np.where(mask, bounds, _INF).T
        B[:n, :n] = np.minimum(B[:n, :n], candidate)
    # Interface: fixed vertices tied to host in both directions with 0.
    for name, node in circuit.nodes.items():
        if node.kind in FIXED_KINDS:
            i = wd.index[name]
            B[i, host] = min(B[i, host], 0)
            B[host, i] = min(B[host, i], 0)
    np.fill_diagonal(B, 0)
    return B


def _solve_difference_constraints(B: np.ndarray) -> Optional[np.ndarray]:
    """Bellman--Ford over a dense bound matrix; None when infeasible.

    Solves ``x_b <= x_a + B[a, b]`` starting from all zeros, which detects
    negative cycles (infeasibility) within ``n`` sweeps.
    """
    n = B.shape[0]
    x = np.zeros(n, dtype=np.int64)
    capped = np.where(B >= _INF, _INF, B)
    for _ in range(n):
        candidate = (x[:, None] + capped).min(axis=0)
        new_x = np.minimum(x, candidate)
        if np.array_equal(new_x, x):
            return x
        x = new_x
    return None  # still relaxing after n sweeps: negative cycle


@dataclass(frozen=True)
class MinPeriodResult:
    """Outcome of min-period retiming."""

    retiming: Retiming
    period_before: int
    period_after: int

    @property
    def retimed_circuit(self) -> Circuit:
        return self.retiming.apply()

    @property
    def improved(self) -> bool:
        return self.period_after < self.period_before


def feasible_retiming_for_period(
    circuit: Circuit,
    period: int,
    delay: Optional[Callable[[Node], int]] = None,
    wd: Optional[WDMatrices] = None,
) -> Optional[Retiming]:
    """A legal retiming achieving clock period <= ``period``, or None."""
    _require_numpy()
    if wd is None:
        wd = wd_matrices(circuit, delay)
    B = _constraint_matrix(circuit, wd, period)
    solution = _solve_difference_constraints(B)
    if solution is None:
        return None
    host = solution[-1]
    labels = {
        name: int(solution[wd.index[name]] - host)
        for name in wd.names
        if circuit.node(name).kind not in FIXED_KINDS
    }
    retiming = Retiming(circuit, labels)
    if not retiming.is_legal():
        raise RetimingError("internal error: solver produced illegal retiming")
    return retiming


def min_period_retiming(
    circuit: Circuit, delay: Optional[Callable[[Node], int]] = None
) -> MinPeriodResult:
    """Exact minimum clock-period retiming with a fixed I/O interface."""
    _require_numpy()
    if delay is None:
        delay = circuit.default_delay
    wd = wd_matrices(circuit, delay)
    period_before = circuit.clock_period(delay)
    candidates = np.unique(wd.D[wd.W < _INF])
    candidates = [int(c) for c in candidates if 0 < c <= period_before]
    if not candidates:
        return MinPeriodResult(
            Retiming(circuit, {}), period_before, period_before
        )
    best: Optional[Retiming] = None
    best_period = period_before
    lo, hi = 0, len(candidates) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        candidate = candidates[mid]
        retiming = feasible_retiming_for_period(circuit, candidate, delay, wd)
        if retiming is not None:
            best = retiming
            best_period = candidate
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        best = Retiming(circuit, {})
        best_period = period_before
    achieved = best.apply().clock_period(delay)
    if achieved > best_period:
        raise RetimingError(
            f"internal error: requested period {best_period}, achieved {achieved}"
        )
    return MinPeriodResult(best, period_before, achieved)


__all__ = [
    "WDMatrices",
    "wd_matrices",
    "MinPeriodResult",
    "feasible_retiming_for_period",
    "min_period_retiming",
]
