"""Atomic retiming moves and decomposition of retimings into move sequences.

The paper (Fig. 1) views retiming as a sequence of atomic transformations:
moving one register forward or backward across a single-output combinational
gate or a fanout stem.  In label terms, one *backward* move across vertex
``v`` increments ``r(v)`` (one register leaves every output edge of ``v``
and enters every input edge); one *forward* move decrements ``r(v)``.

:func:`decompose` turns an arbitrary legal retiming into an explicit legal
sequence of such atomic moves -- every intermediate circuit is a
well-formed circuit.  This is used by the equivalence tests that check the
per-move Lemmas 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.circuit.netlist import Circuit
from repro.retiming.core import FIXED_KINDS, Retiming, RetimingError


@dataclass(frozen=True)
class AtomicMove:
    """One register moved across one vertex."""

    vertex: str
    direction: str  # "forward" | "backward"

    def __post_init__(self) -> None:
        if self.direction not in ("forward", "backward"):
            raise ValueError(f"bad direction {self.direction!r}")

    @property
    def label_delta(self) -> int:
        return -1 if self.direction == "forward" else 1


def can_move(circuit: Circuit, vertex: str, direction: str) -> bool:
    """True when one atomic move across ``vertex`` is legal right now.

    A backward move needs one register on *every* output edge; a forward
    move needs one on every input edge.  Interface vertices never move.
    """
    node = circuit.node(vertex)
    if node.kind in FIXED_KINDS:
        return False
    if direction == "backward":
        edges = circuit.out_edges(vertex)
    elif direction == "forward":
        edges = circuit.in_edges(vertex)
    else:
        raise ValueError(f"bad direction {direction!r}")
    return bool(edges) and all(edge.weight >= 1 for edge in edges)


def apply_move(circuit: Circuit, move: AtomicMove, name: Optional[str] = None) -> Circuit:
    """Apply one atomic move, returning the new circuit."""
    if not can_move(circuit, move.vertex, move.direction):
        raise RetimingError(
            f"illegal {move.direction} move across {move.vertex!r}"
        )
    labels = {move.vertex: move.label_delta}
    return Retiming(circuit, labels).apply(name or circuit.name)


def decompose(retiming: Retiming) -> List[AtomicMove]:
    """A legal sequence of atomic moves realizing ``retiming``.

    Greedy schedule: repeatedly apply any currently-legal move that brings
    some vertex closer to its target label.  For a legal retiming this
    always makes progress (a standard retiming argument: consider a vertex
    with extremal remaining label).
    """
    circuit = retiming.circuit
    remaining: Dict[str, int] = {
        name: retiming.label(name)
        for name in circuit.nodes
        if retiming.label(name) != 0
    }
    current = circuit
    moves: List[AtomicMove] = []
    total = sum(abs(value) for value in remaining.values())
    for _ in range(total):
        progressed = False
        for vertex in sorted(remaining):
            value = remaining[vertex]
            direction = "backward" if value > 0 else "forward"
            if can_move(current, vertex, direction):
                move = AtomicMove(vertex, direction)
                current = apply_move(current, move)
                moves.append(move)
                remaining[vertex] = value - move.label_delta
                if remaining[vertex] == 0:
                    del remaining[vertex]
                progressed = True
                break
        if not progressed:
            raise RetimingError(
                f"cannot decompose retiming; stuck with {dict(remaining)}"
            )
    if remaining:
        raise RetimingError("decomposition incomplete")
    return moves


def replay(circuit: Circuit, moves: List[AtomicMove]) -> List[Circuit]:
    """All intermediate circuits of a move sequence (excluding the start)."""
    stages: List[Circuit] = []
    current = circuit
    for move in moves:
        current = apply_move(current, move)
        stages.append(current)
    return stages


__all__ = ["AtomicMove", "can_move", "apply_move", "decompose", "replay"]
