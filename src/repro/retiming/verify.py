"""Independent verification that one circuit is a retiming of another.

A release-grade safety net around the retiming engines: given two circuits
(and optionally the labels that supposedly relate them), check

1. **structure** -- identical vertices and edges (retiming only moves
   registers);
2. **labels** -- a labelling reproducing the weight difference exists; when
   not supplied it is *reconstructed* from the weights (weight differences

   determine labels up to a constant on each weakly-connected component,
   pinned to 0 at interface vertices);
3. **legality** -- all retimed weights non-negative, interface labels 0;
4. optionally, for circuits small enough for explicit state-space
   analysis, **Lemma 2's behavioural guarantee**: ``K ≡Nt K'`` with
   ``N = max(F_stem, B_stem)``.

Returns the reconstructed :class:`Retiming`, so callers get the prefix
lengths of Theorems 2-4 for *any* retimed netlist pair, not only pairs
produced by this library's optimizers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.circuit.netlist import Circuit
from repro.faults.correspondence import check_same_structure
from repro.retiming.core import FIXED_KINDS, Retiming, RetimingError


@dataclass(frozen=True)
class RetimingVerification:
    """Outcome of :func:`verify_retiming`."""

    retiming: Retiming  # original -> retimed, reconstructed or validated
    time_equivalence_bound: int  # Lemma 2's N
    prefix_length_tests: int  # Theorems 3-4's |P|
    behaviour_checked: bool  # True when the STG-level check ran
    behaviour_engine: str = ""  # STG engine that ran the check ("" if skipped)


def reconstruct_labels(original: Circuit, retimed: Circuit) -> Dict[str, int]:
    """Recover the retiming labels from two structurally equal circuits.

    Propagates ``r(sink) = r(source) + (w'(e) - w(e))`` over the edge set
    from the interface vertices (pinned at 0); raises
    :class:`RetimingError` when the weight differences are inconsistent
    (i.e. the pair is *not* related by any retiming) or a component has no
    interface anchor.
    """
    check_same_structure(original, retimed)
    delta = {
        edge.index: retimed.edges[edge.index].weight - edge.weight
        for edge in original.edges
    }
    labels: Dict[str, int] = {}
    for name, node in original.nodes.items():
        if node.kind in FIXED_KINDS:
            labels[name] = 0
    frontier = list(labels)
    adjacency: Dict[str, list] = {name: [] for name in original.nodes}
    for edge in original.edges:
        # r(sink) - r(source) = delta(e)
        adjacency[edge.source].append((edge.sink, delta[edge.index]))
        adjacency[edge.sink].append((edge.source, -delta[edge.index]))
    while frontier:
        name = frontier.pop()
        for neighbour, difference in adjacency[name]:
            value = labels[name] + difference
            if neighbour in labels:
                if labels[neighbour] != value:
                    raise RetimingError(
                        f"weight differences are inconsistent at {neighbour!r}: "
                        "the circuits are not related by a retiming"
                    )
            else:
                labels[neighbour] = value
                frontier.append(neighbour)
    unanchored = set(original.nodes) - set(labels)
    if unanchored:
        # Isolated components without interface vertices: any constant
        # works; pick the one implied by an arbitrary member = 0 and
        # re-propagate for consistency.
        raise RetimingError(
            f"vertices {sorted(unanchored)[:4]} are not connected to the "
            "interface; cannot anchor their labels"
        )
    return {name: value for name, value in labels.items() if value != 0}


def verify_retiming(
    original: Circuit,
    retimed: Circuit,
    labels: Optional[Dict[str, int]] = None,
    check_behaviour: bool = False,
    max_state_bits: int = 10,
    engine: Optional[str] = None,
) -> RetimingVerification:
    """Verify that ``retimed`` is a legal retiming of ``original``.

    ``engine`` selects the STG extraction engine for the behavioural check
    (``"bitset"``/``"reference"``/``"reach"``/``"auto"``, default the
    package default).  Without an explicit engine the check only runs on
    machines within ``max_state_bits`` registers / 8 inputs; with one, the
    engine's own :data:`~repro.equivalence.ENGINE_LIMITS` govern, and a
    machine beyond them skips the check (``behaviour_checked`` stays
    False) rather than failing.  Note the ``reach`` engine validates the
    bound over the *reset-reachable* state sets only.

    Raises :class:`RetimingError` (structure/label/legality problems) or
    :class:`ValueError` on behavioural mismatch.
    """
    if labels is None:
        labels = reconstruct_labels(original, retimed)
    retiming = Retiming(original, labels)
    if retiming.retimed_weights() != retimed.weights():
        raise RetimingError("labels do not reproduce the retimed weights")
    if not retiming.is_legal():
        raise RetimingError(
            f"illegal weights on edges {retiming.illegal_edges()[:5]}"
        )
    bound = retiming.time_equivalence_bound()

    behaviour_checked = False
    behaviour_engine = ""
    small_enough = (
        original.num_registers() <= max_state_bits
        and retimed.num_registers() <= max_state_bits
        and len(original.input_names) <= 8
    )
    if check_behaviour and (engine is not None or small_enough):
        from repro.equivalence import (
            StateSpaceTooLarge,
            extract_stg,
            resolved_engine_name,
            time_equivalence_bound,
        )

        try:
            stg_original = extract_stg(original, engine=engine)
            stg_retimed = extract_stg(retimed, engine=engine)
        except StateSpaceTooLarge:
            pass  # beyond the chosen engine's limits: skip, don't fail
        else:
            found = time_equivalence_bound(
                stg_original, stg_retimed, max_steps=bound
            )
            if found is None:
                raise ValueError(
                    f"circuits are not {bound}-time-equivalent: Lemma 2 violated"
                )
            behaviour_checked = True
            behaviour_engine = resolved_engine_name(
                engine, stg_original, stg_retimed
            )

    return RetimingVerification(
        retiming=retiming,
        time_equivalence_bound=bound,
        prefix_length_tests=retiming.max_forward_moves(),
        behaviour_checked=behaviour_checked,
        behaviour_engine=behaviour_engine,
    )


__all__ = ["verify_retiming", "reconstruct_labels", "RetimingVerification"]
