"""Bit-packed state-space kernel: lane-parallel STG extraction and bitset ops.

The explicit state-transition-graph layer used to enumerate all
``2^r x 2^i`` (state, vector) pairs one scalar simulation at a time.  This
module packs **all ``2^r`` initial states as lanes** of the compiled
bit-parallel stepper (:class:`~repro.simulation.vector_codegen.
VectorFastStepper`): one ``step_clean``/``step_inject`` call per input
vector advances every state of the machine simultaneously, and the
resulting next-state/output rail planes are decoded into flat integer
arrays indexed ``[vector_idx][state_idx]``.

Lane numbering is the state index itself: lane ``s`` carries the state
whose register bits are the binary digits of ``s`` (register ``j`` holds
bit ``r - 1 - j``), which is exactly the lexicographic order of
:func:`repro.equivalence.explicit.all_vectors`.

The second half of the module is bitset arithmetic over state *sets*
represented as plain Python ints (bit ``s`` set <=> state index ``s`` in
the set): byte-table iteration over members and table-driven set images
(``image_bitset``), the primitives behind the functional synchronizing-
sequence searches.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.faults.model import StuckAtFault
from repro.simulation.cache import vector_fast_stepper

#: Offsets of the set bits of every byte value -- the work table for
#: C-speed iteration over bitset members via ``int.to_bytes``.
BYTE_BITS: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(bit for bit in range(8) if byte >> bit & 1) for byte in range(256)
)


# -- bitset primitives -------------------------------------------------------


def iter_bit_indices(bits: int, num_bits: int) -> Iterator[int]:
    """Indices of the set bits of ``bits``, ascending.

    Byte-table based: O(num_bits / 8) C-level iteration plus one small-int
    step per member, instead of O(popcount) big-int ``bits & -bits`` scans
    (quadratic for dense sets over large state spaces).
    """
    table = BYTE_BITS
    data = bits.to_bytes((num_bits + 7) // 8, "little")
    for base, byte in enumerate(data):
        if byte:
            base8 = base << 3
            for offset in table[byte]:
                yield base8 | offset


def bitset_from_indices(indices: Iterable[int]) -> int:
    bits = 0
    for index in indices:
        bits |= 1 << index
    return bits


def image_bitset(row: Sequence[int], bits: int, num_bits: int) -> int:
    """Image of the state set ``bits`` under the successor table ``row``.

    ``row[s]`` is the successor *index* of state ``s`` under one fixed
    input vector.  The image is accumulated in a bytearray (O(1) per
    member) rather than by OR-ing ``1 << row[s]`` big ints (O(words) per
    member), so dense images over large state spaces stay linear.
    """
    out = bytearray((num_bits + 7) // 8)
    table = BYTE_BITS
    data = bits.to_bytes(len(out), "little")
    for base, byte in enumerate(data):
        if byte:
            base8 = base << 3
            for offset in table[byte]:
                target = row[base8 | offset]
                out[target >> 3] |= 1 << (target & 7)
    return int.from_bytes(out, "little")


# -- lane packing ------------------------------------------------------------


def state_plane(register: int, num_registers: int) -> int:
    """The ones-rail of register ``register`` with all ``2^r`` states packed
    one per lane: bit ``s`` is set iff state ``s`` has that register at 1.

    Register ``j`` carries index bit ``p = r - 1 - j``, so the plane is the
    classic alternating mask (``...1100`` for ``p = 1``), built by doubling
    rather than per-lane loops.
    """
    position = num_registers - 1 - register
    half = 1 << position
    unit = ((1 << half) - 1) << half  # one period: 2^p zeros then 2^p ones
    width = half << 1
    total = 1 << num_registers
    while width < total:
        unit |= unit << width
        width <<= 1
    return unit


def all_state_lanes(num_registers: int) -> Tuple[Tuple[int, int], ...]:
    """Dual-rail packing of the full binary state space, one state per lane."""
    total = 1 << num_registers
    mask = (1 << total) - 1
    rails = []
    for register in range(num_registers):
        ones = state_plane(register, num_registers)
        rails.append((ones, mask ^ ones))
    return tuple(rails)


def decode_plane_into(
    indices: List[int], ones: int, weight: int, num_lanes: int
) -> None:
    """Add ``weight`` to ``indices[s]`` for every set lane of ``ones``."""
    table = BYTE_BITS
    data = ones.to_bytes((num_lanes + 7) // 8, "little")
    for base, byte in enumerate(data):
        if byte:
            base8 = base << 3
            for offset in table[byte]:
                indices[base8 | offset] += weight


# -- lane-parallel STG extraction -------------------------------------------


def extract_arrays_bitset(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    alphabet: Sequence[Tuple[int, ...]],
    backend: str = "auto",
) -> Tuple[Tuple[Tuple[int, ...], ...], Tuple[Tuple[int, ...], ...]]:
    """``(next_index, output_index)`` flat tables for the (faulty) machine.

    One compiled bit-parallel step per input vector, all ``2^r`` states in
    lanes; stuck-at faults are injected through the stepper's runtime
    ``sa1``/``sa0`` masks over the full lane width, so the same compiled
    function serves the fault-free and every faulty machine.

    ``backend`` picks the word implementation (see
    :mod:`repro.simulation.backends`): the bigint entry points, or the
    numpy word-plane runner whose plane decode is a vectorized
    ``unpackbits`` instead of the byte-table loop.  Both produce identical
    tables (the engine-parity suite asserts it).
    """
    from repro.simulation.backends import resolve_backend

    stepper = vector_fast_stepper(circuit)
    num_registers = stepper.compiled.num_registers
    num_lanes = 1 << num_registers
    mask = (1 << num_lanes) - 1

    sa1 = sa0 = None
    if faults:
        sa1, sa0 = stepper.blank_injection_masks()
        # Last fault wins per line, matching the reference simulator's
        # forced-value dict (a later s-a-1 on a line overrides an earlier
        # s-a-0 rather than producing a contradictory X).
        forced = {fault.line: fault.value for fault in faults}
        for line, value in forced.items():
            slot = stepper.line_slot[line]
            if value == 1:
                sa1[slot] = mask
            else:
                sa0[slot] = mask

    if resolve_backend(backend) == "numpy":
        return _extract_arrays_wordplane(circuit, stepper, alphabet, sa1, sa0)

    state_rails = all_state_lanes(num_registers)
    if faults:
        step = lambda vector: stepper.step_inject(  # noqa: E731
            state_rails, vector, mask, sa1, sa0
        )
    else:
        step = lambda vector: stepper.step_clean(  # noqa: E731
            state_rails, vector, mask
        )

    num_outputs = len(circuit.output_names)
    next_index: List[Tuple[int, ...]] = []
    output_index: List[Tuple[int, ...]] = []
    for vector in alphabet:
        packed = stepper.broadcast_vector(vector, num_lanes)
        out_rails, next_rails = step(packed)
        next_row = [0] * num_lanes
        for register, (ones, zeros) in enumerate(next_rails):
            _check_binary(circuit, ones, zeros, mask, "register", register)
            decode_plane_into(
                next_row, ones, 1 << (num_registers - 1 - register), num_lanes
            )
        out_row = [0] * num_lanes
        for position, (ones, zeros) in enumerate(out_rails):
            _check_binary(circuit, ones, zeros, mask, "output", position)
            decode_plane_into(
                out_row, ones, 1 << (num_outputs - 1 - position), num_lanes
            )
        next_index.append(tuple(next_row))
        output_index.append(tuple(out_row))
    return tuple(next_index), tuple(output_index)


def _extract_arrays_wordplane(
    circuit: Circuit,
    stepper,
    alphabet: Sequence[Tuple[int, ...]],
    sa1: Optional[Sequence[int]],
    sa0: Optional[Sequence[int]],
) -> Tuple[Tuple[Tuple[int, ...], ...], Tuple[Tuple[int, ...], ...]]:
    """The numpy word-plane leg of :func:`extract_arrays_bitset`.

    The per-plane decode -- add ``weight`` to every state index whose lane
    bit is set -- becomes one ``unpackbits`` plus a weighted accumulate per
    plane, replacing the per-member byte-table loop of
    :func:`decode_plane_into`.
    """
    import numpy as np

    from repro.simulation.wordplane import (
        width_mask_words,
        wordplane_plan,
        words_from_int,
    )

    num_registers = stepper.compiled.num_registers
    num_lanes = 1 << num_registers
    num_outputs = len(circuit.output_names)
    runner = wordplane_plan(stepper).runner(num_lanes)
    if sa1 is not None:
        runner.set_group(sa1, sa0)
    mask_words = width_mask_words(num_lanes, runner.words)
    state_words = np.zeros((2 * num_registers, runner.words), dtype=np.uint64)
    for register in range(num_registers):
        ones = words_from_int(
            state_plane(register, num_registers), runner.words
        )
        state_words[2 * register] = ones
        state_words[2 * register + 1] = mask_words & ~ones

    def lane_bits(words: "np.ndarray") -> "np.ndarray":
        return np.unpackbits(
            words.view(np.uint8), count=num_lanes, bitorder="little"
        )

    next_index: List[Tuple[int, ...]] = []
    output_index: List[Tuple[int, ...]] = []
    reg0 = runner.plan.reg0
    for vector in alphabet:
        # Every vector restarts from the full packed state space.
        runner.V[reg0 : reg0 + 2 * num_registers] = state_words
        runner.set_broadcast_vector(vector)
        runner.step()
        next_block = runner.next_state_view()
        next_row = np.zeros(num_lanes, dtype=np.int64)
        for register in range(num_registers):
            ones = next_block[2 * register]
            zeros = next_block[2 * register + 1]
            _check_binary_words(
                circuit, ones, zeros, mask_words, "register", register
            )
            next_row += lane_bits(ones).astype(np.int64) << (
                num_registers - 1 - register
            )
        out_block = runner.output_view()
        out_row = np.zeros(num_lanes, dtype=np.int64)
        for position in range(num_outputs):
            ones = out_block[2 * position]
            zeros = out_block[2 * position + 1]
            _check_binary_words(
                circuit, ones, zeros, mask_words, "output", position
            )
            out_row += lane_bits(ones).astype(np.int64) << (
                num_outputs - 1 - position
            )
        next_index.append(tuple(int(v) for v in next_row))
        output_index.append(tuple(int(v) for v in out_row))
    return tuple(next_index), tuple(output_index)


def _check_binary_words(
    circuit: Circuit, ones, zeros, mask_words, what: str, position: int
) -> None:
    if not ((ones ^ zeros) & mask_words == mask_words).all():
        raise ValueError(
            f"{circuit.name}: {what} {position} is not binary on every lane; "
            "the STG engines require binary states and input vectors"
        )


def _check_binary(
    circuit: Circuit, ones: int, zeros: int, mask: int, what: str, position: int
) -> None:
    if (ones ^ zeros) & mask != mask:
        raise ValueError(
            f"{circuit.name}: {what} {position} is not binary on every lane; "
            "the STG engines require binary states and input vectors"
        )


__all__ = [
    "BYTE_BITS",
    "all_state_lanes",
    "bitset_from_indices",
    "decode_plane_into",
    "extract_arrays_bitset",
    "image_bitset",
    "iter_bit_indices",
    "state_plane",
]
